"""In-process compiled-kernel cache: miniCUDA → executable artifact, once.

Every sweep point, remote worker chunk, and serve miss used to re-lex,
re-parse, re-transform, and re-transpile the benchmark's kernel sources
before simulating anything — a fixed per-point floor that dominates small
points. This cache memoizes the whole compile pipeline per

    (kernel source, transform config, cost model, code version)

— the ``function_cache`` idiom of JIT compilers — so repeated points only
pay artifact *instantiation* (``exec`` of a cached code object into a
fresh namespace), never recompilation. Instantiation keeps runs isolated:
two Modules built from one artifact share no mutable state, so the cache
is safe under the thread backend and the serve miss scheduler.

The key deliberately embeds the same version token as the on-disk result
cache (``repro.__version__`` plus ``harness.cache.CACHE_VERSION``): one
``CACHE_VERSION`` bump invalidates result entries *and* compiled kernels
together, so a stale compiled kernel can never serve new semantics (the
invalidation contract in ``docs/architecture.md``).

Hit/miss traffic is exported through the process metrics registry as
``repro_codegen_cache_lookups_total{outcome}`` (scraped via the query
service's ``GET /metrics``) and per-instance via :meth:`stats` — the
``BENCH_engine.json`` benchmark asserts against both.
"""

import hashlib
import threading
from collections import OrderedDict

from .module import Module, compile_artifact

__all__ = ["CompiledKernelCache", "KERNEL_CACHE", "compiled_module",
           "codegen_cache_key", "DEFAULT_CAPACITY"]

#: Entries kept per cache. A sweep touches one source per benchmark times
#: the distinct transform configs of its grid; 256 covers the dense
#: Fig. 11 threshold axes across all seven benchmarks with headroom.
DEFAULT_CAPACITY = 256

_LOOKUPS = None
_LOCK = threading.Lock()


def _lookup_counter():
    """The shared ``repro_codegen_cache_lookups_total`` counter.

    Resolved lazily: importing :mod:`repro.harness` at module import time
    would cycle (harness → sweep → benchmarks → engine.cache), and by
    first lookup the interpreter has long finished loading both packages.
    """
    global _LOOKUPS
    if _LOOKUPS is None:
        from ..harness.metrics import REGISTRY
        with _LOCK:
            if _LOOKUPS is None:
                _LOOKUPS = REGISTRY.counter(
                    "repro_codegen_cache_lookups_total",
                    "Compiled-kernel cache lookups by outcome",
                    ("outcome",))
    return _LOOKUPS


def _version_token():
    """(code version, result-cache version): the same pair the on-disk
    result cache keys by, read at call time so a ``CACHE_VERSION`` bump
    (or a test monkeypatching it) invalidates compiled kernels too."""
    from .. import __version__
    from ..harness import cache as result_cache
    return (__version__, result_cache.CACHE_VERSION)


def codegen_cache_key(source, config=None, cost_model=None):
    """Memo key for one compile: source digest + transform config +
    cost model + the shared version token.

    ``config`` is the :class:`~repro.transforms.OptConfig` applied before
    codegen (None for untransformed source); both it and
    :class:`~repro.sim.costmodel.CostModel` are frozen dataclasses, so
    the key is hashable and two effectively-identical compiles collide.
    """
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (digest, config, cost_model, _version_token())


class CompiledKernelCache:
    """Bounded LRU memo of :class:`~repro.engine.module.ModuleArtifact`.

    Thread-safe; a racing duplicate compile is wasted work but harmless
    (compilation is deterministic, and ``setdefault`` keeps one winner).
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self.capacity = max(1, int(capacity))
        self.hits = 0
        self.misses = 0
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def get_or_compile(self, source, config=None, cost_model=None):
        """The :class:`~repro.engine.module.ModuleArtifact` for *source*
        under *config*/*cost_model*, compiling (and transforming) on miss.
        """
        key = codegen_cache_key(source, config, cost_model)
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if artifact is not None:
            _lookup_counter().inc(outcome="hit")
            return artifact
        artifact = self._compile(source, config, cost_model)
        with self._lock:
            self.misses += 1
            artifact = self._entries.setdefault(key, artifact)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        _lookup_counter().inc(outcome="miss")
        return artifact

    @staticmethod
    def _compile(source, config, cost_model):
        if config is None:
            return compile_artifact(source, None, cost_model)
        from ..transforms import transform
        result = transform(source, config)
        return compile_artifact(result.program, result.meta, cost_model)

    def module(self, source, config=None, cost_model=None):
        """A fresh :class:`~repro.engine.module.Module` (private namespace,
        zeroed globals) over the cached artifact for *source*."""
        return Module.from_artifact(
            self.get_or_compile(source, config, cost_model))

    def clear(self):
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def stats(self):
        """JSON-able hit/miss/size snapshot (``BENCH_engine.json`` and the
        engine tests read this)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._entries),
                    "capacity": self.capacity}


#: Process-wide cache every benchmark compile routes through
#: (:meth:`repro.benchmarks.common.Benchmark.module_for`). Worker
#: processes each warm their own copy, exactly like the dataset memo.
KERNEL_CACHE = CompiledKernelCache()


def compiled_module(source, config=None, cost_model=None):
    """Compile *source* (with optional transform *config*) through the
    process-wide :data:`KERNEL_CACHE` and return a fresh Module."""
    return KERNEL_CACHE.module(source, config, cost_model)
