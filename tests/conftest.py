"""Shared fixtures: canonical kernel sources, small datasets, and the
in-process remote worker fleet."""

import contextlib

import pytest

#: The paper's Fig. 3(a) shape: a parent dynamically launching a child.
BFS_LIKE_SRC = """
__global__ void child(int *edges, int *dist, int level, int start, int degree) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int v = edges[start + tid];
        if (atomicCAS(&dist[v], -1, level) == -1) {
            dist[v] = level;
        }
    }
}

__global__ void parent(int *row, int *edges, int *dist, int n, int level) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        int start = row[tid];
        int degree = row[tid + 1] - start;
        if (degree > 0) {
            child<<<(degree + 255) / 256, 256>>>(edges, dist, level, start, degree);
        }
    }
}
"""

#: A child kernel thresholding must refuse (barrier + shared memory).
BARRIER_CHILD_SRC = """
__global__ void reduce_child(float *data, float *out, int n) {
    __shared__ float buf[256];
    int tid = threadIdx.x;
    buf[tid] = tid < n ? data[tid] : 0.0f;
    __syncthreads();
    for (int s = 128; s > 0; s = s / 2) {
        if (tid < s) {
            buf[tid] = buf[tid] + buf[tid + s];
        }
        __syncthreads();
    }
    if (tid == 0) {
        out[blockIdx.x] = buf[0];
    }
}

__global__ void parent(float *data, float *out, int *sizes, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        int size = sizes[tid];
        if (size > 0) {
            reduce_child<<<(size + 255) / 256, 256>>>(data, out, size);
        }
    }
}
"""


@pytest.fixture
def bfs_like_source():
    return BFS_LIKE_SRC


@pytest.fixture
def barrier_child_source():
    return BARRIER_CHILD_SRC


@pytest.fixture
def tiny_graph():
    from repro.datasets import uniform_random_graph
    return uniform_random_graph(n=120, avg_degree=8, seed=42)


@pytest.fixture
def skewed_graph():
    from repro.datasets import kron_graph
    return kron_graph(scale=7, edge_factor=6, seed=3)


@contextlib.contextmanager
def worker_fleet(count=2, **kwargs):
    """Start *count* in-process `repro worker` daemons; yields the
    WorkerServer objects and closes them on exit. Shared by the remote
    backend, sweep, and CLI test suites."""
    from repro.harness import WorkerServer

    servers = [WorkerServer(quiet=True, **kwargs) for _ in range(count)]
    for server in servers:
        server.start()
    try:
        yield servers
    finally:
        for server in servers:
            server.close()
