"""Remote backend tests: wire protocol, handshake version skew, parity
with the serial backend, chunk reassignment around dying workers, and
coordinator timeouts mapped onto the executor's failure semantics."""

import socket
import time

import pytest

from repro.harness import (BACKENDS, CACHE_VERSION, PointFailure,
                           RemoteBackend, RemoteHandshakeError,
                           RemoteWorkerError, SweepExecutor, SweepPointError,
                           TuningParams, WorkerServer, parse_workers,
                           sweep_grid, worker_ping, worker_stop)
from repro.harness import sweep as sweep_mod

from .conftest import worker_fleet

SCALE = 0.08

PAIRS = (("BFS", "KRON"), ("SSSP", "KRON"))
LABELS = ("CDP", "CDP+T")
PARAMS = TuningParams(threshold=16)


def small_grid():
    return sweep_grid(PAIRS, LABELS, scale=SCALE, params=PARAMS)


def free_port():
    """A port with no listener behind it."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def crash(points):
    """Stand-in for a worker whose process dies mid-chunk."""
    raise RuntimeError("injected worker crash")


@pytest.fixture(scope="module")
def serial_results():
    return SweepExecutor().run(small_grid())


@pytest.fixture
def fleet():
    """Function-scoped: several tests mutate a server's run_points."""
    with worker_fleet() as servers:
        yield servers


def addresses(servers):
    return [server.address for server in servers]


class TestProtocol:
    def test_remote_is_registered(self):
        assert "remote" in BACKENDS
        assert BACKENDS["remote"] is RemoteBackend

    def test_parse_workers_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad worker address"):
            parse_workers("nocolon")
        with pytest.raises(ValueError, match="bad worker address"):
            parse_workers("host:notaport")

    def test_remote_needs_workers(self):
        with pytest.raises(ValueError, match="worker addresses"):
            SweepExecutor(backend="remote")

    def test_workers_reject_local_backends(self):
        with pytest.raises(ValueError, match="remote"):
            SweepExecutor(backend="thread", workers=[("localhost", 1)])

    def test_remote_rejects_jobs(self):
        with pytest.raises(ValueError, match="repro worker serve --jobs"):
            SweepExecutor(jobs=4, backend="remote",
                          workers=[("localhost", 1)])

    def test_workers_reject_backend_instances(self):
        from repro.harness.sweep import SerialBackend

        with pytest.raises(ValueError, match="instance"):
            SweepExecutor(backend=SerialBackend(), workers=[("localhost", 1)])
        with pytest.raises(ValueError, match="instance"):
            SweepExecutor(backend=SerialBackend(), worker_timeout=5.0)

    def test_ping_reports_versions(self, fleet):
        pong = worker_ping(fleet[0].address)
        assert pong["cache_version"] == CACHE_VERSION
        assert pong["jobs"] == 1

    def test_stop_shuts_the_daemon_down(self):
        server = WorkerServer(quiet=True)
        address = server.start()
        worker_stop(address)
        server._thread.join(timeout=5.0)
        assert not server._thread.is_alive()
        server.close()


class TestParity:
    def test_bit_identical_to_serial(self, fleet, serial_results):
        with SweepExecutor(backend="remote",
                           workers=addresses(fleet)) as executor:
            assert executor.run(small_grid()) == serial_results
            assert executor.stats.simulated == len(serial_results)
            assert executor.backend.name == "remote"

    def test_every_point_served_by_the_fleet(self, fleet, serial_results):
        backend = RemoteBackend(addresses(fleet), chunk_size=1)
        with SweepExecutor(backend=backend) as executor:
            assert executor.run(small_grid()) == serial_results
        assert sum(server.points_served for server in fleet) \
            == len(serial_results)

    def test_results_merge_into_coordinator_cache(self, fleet, tmp_path,
                                                  serial_results):
        cache_dir = str(tmp_path / "cache")
        with SweepExecutor(backend="remote", workers=addresses(fleet),
                           cache=cache_dir) as executor:
            executor.run(small_grid())
        warm = SweepExecutor(cache=cache_dir)
        assert warm.run(small_grid()) == serial_results
        assert warm.stats.hits == len(serial_results)
        assert warm.stats.simulated == 0

    def test_connections_reused_across_batches(self, fleet, serial_results):
        with SweepExecutor(backend="remote",
                           workers=addresses(fleet)) as executor:
            half = len(small_grid()) // 2
            first = executor.run(small_grid()[:half])
            second = executor.run(small_grid()[half:])
        assert first + second == serial_results

    def test_simulator_failure_attributed_to_point(self, fleet, monkeypatch,
                                                   serial_results):
        """An exception inside the simulator travels back as an error
        outcome naming the point — not as a dead worker."""
        real = sweep_mod._simulate_point

        def fail_cdp(point):
            if point.label == "CDP":
                raise ValueError("injected failure")
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", fail_cdp)
        with SweepExecutor(backend="remote",
                           workers=addresses(fleet)) as executor:
            with pytest.raises(SweepPointError) as exc_info:
                executor.run(small_grid())
        assert exc_info.value.point.label == "CDP"
        assert "injected failure" in str(exc_info.value)
        # Both workers are still healthy: the fleet reruns the grid fine.
        monkeypatch.setattr(sweep_mod, "_simulate_point", real)
        with SweepExecutor(backend="remote",
                           workers=addresses(fleet)) as executor:
            assert executor.run(small_grid()) == serial_results


class TestFaultTolerance:
    def test_dead_worker_chunks_reassigned(self, fleet, serial_results):
        """A worker dying mid-chunk hands its chunks to the survivor and
        the sweep still completes bit-identically."""
        doomed, survivor = fleet
        doomed.run_points = crash
        backend = RemoteBackend(addresses(fleet), chunk_size=1)
        with SweepExecutor(backend=backend) as executor:
            assert executor.run(small_grid()) == serial_results
        assert survivor.points_served == len(serial_results)
        assert doomed.address in backend._dead

    def test_poison_chunk_becomes_point_failures(self, serial_results):
        """A chunk that kills every worker resolves to per-point failures
        instead of hanging or retrying forever."""
        servers = [WorkerServer(quiet=True) for _ in range(2)]
        for server in servers:
            server.start()
            server.run_points = crash
        try:
            backend = RemoteBackend(addresses(servers))
            executor = SweepExecutor(backend=backend, on_error="continue")
            results = executor.run(small_grid())
            assert len(results) == len(serial_results)
            assert all(isinstance(r, PointFailure) for r in results)
            assert all(r.error == "RemoteWorkerError" for r in results)
            assert executor.stats.failed == len(results)
            executor.close()
        finally:
            for server in servers:
                server.close()

    def test_raise_mode_names_the_point(self):
        server = WorkerServer(quiet=True)
        server.start()
        server.run_points = crash
        try:
            backend = RemoteBackend([server.address])
            with SweepExecutor(backend=backend) as executor:
                with pytest.raises(SweepPointError, match="BFS/KRON"):
                    executor.run(small_grid())
        finally:
            server.close()

    def test_timeout_with_continue(self):
        """A worker silent past the timeout is declared dead; with no
        survivors and on_error='continue' every point comes back as a
        PointFailure instead of aborting the run."""
        server = WorkerServer(quiet=True)
        server.start()
        real = server.run_points

        def stall(points):
            time.sleep(1.0)
            return real(points)

        server.run_points = stall
        try:
            backend = RemoteBackend([server.address], timeout=0.2)
            executor = SweepExecutor(backend=backend, on_error="continue")
            results = executor.run(small_grid())
            assert all(isinstance(r, PointFailure) for r in results)
            assert all(r.error == "RemoteWorkerError" for r in results)
            executor.close()
        finally:
            server.close()

    def test_timeout_reassigned_to_survivor(self, fleet, serial_results):
        staller, survivor = fleet
        real = staller.run_points

        def stall(points):
            time.sleep(1.0)
            return real(points)

        staller.run_points = stall
        backend = RemoteBackend(addresses(fleet), timeout=0.3, chunk_size=1)
        with SweepExecutor(backend=backend) as executor:
            assert executor.run(small_grid()) == serial_results

    def test_version_skew_rejected_in_handshake(self):
        server = WorkerServer(quiet=True, cache_version=CACHE_VERSION + 1)
        server.start()
        try:
            backend = RemoteBackend([server.address])
            with pytest.raises(RemoteHandshakeError,
                               match="cache_version mismatch"):
                backend.map(small_grid()[:1])
        finally:
            server.close()

    def test_code_version_skew_rejected(self):
        server = WorkerServer(quiet=True, code_version="0.0.0-skewed")
        server.start()
        try:
            backend = RemoteBackend([server.address])
            with pytest.raises(RemoteHandshakeError,
                               match="code_version mismatch"):
                backend.map(small_grid()[:1])
        finally:
            server.close()

    def test_empty_fleet_raises(self):
        backend = RemoteBackend([("127.0.0.1", free_port())],
                                connect_timeout=0.5)
        with pytest.raises(RemoteWorkerError, match="no live workers"):
            backend.map(small_grid()[:1])

    def test_unreachable_worker_skipped(self, serial_results):
        live = WorkerServer(quiet=True)
        live.start()
        try:
            backend = RemoteBackend([("127.0.0.1", free_port()),
                                     live.address], connect_timeout=0.5)
            with SweepExecutor(backend=backend) as executor:
                assert executor.run(small_grid()) == serial_results
        finally:
            live.close()

    def test_wedged_worker_skipped(self, serial_results):
        """A worker that accepts the TCP connection but never answers the
        handshake is skipped within connect_timeout — not treated as a
        handshake rejection, and not stalled on for the chunk timeout."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        live = WorkerServer(quiet=True)
        live.start()
        try:
            backend = RemoteBackend([listener.getsockname()[:2],
                                     live.address],
                                    connect_timeout=0.3, timeout=60.0)
            start = time.monotonic()
            with SweepExecutor(backend=backend) as executor:
                assert executor.run(small_grid()) == serial_results
            assert time.monotonic() - start < 30.0
        finally:
            listener.close()
            live.close()

    def test_worker_timeout_plumbs_through_executor(self, fleet):
        executor = SweepExecutor(backend="remote", workers=addresses(fleet),
                                 worker_timeout=7.5)
        assert executor.backend.timeout == 7.5
        executor.close()
        with pytest.raises(ValueError, match="remote"):
            SweepExecutor(backend="thread", worker_timeout=7.5)
