"""Pipeline / OptConfig tests (Sec. VI composition)."""

import pytest

from repro.minicuda import parse, print_source
from repro.minicuda.visitor import find_all
from repro.minicuda import ast
from repro.transforms import (OptConfig, TransformResult, transform)


class TestOptConfig:
    def test_labels(self):
        assert OptConfig().label == "CDP"
        assert OptConfig(threshold=1).label == "CDP+T"
        assert OptConfig(coarsen_factor=2).label == "CDP+C"
        assert OptConfig(aggregate="block").label == "CDP+A"
        assert OptConfig(threshold=1, coarsen_factor=2,
                         aggregate="grid").label == "CDP+T+C+A"

    def test_from_label(self):
        config = OptConfig.from_label("CDP+T+A", threshold=99,
                                      aggregate="warp")
        assert config.threshold == 99
        assert config.coarsen_factor is None
        assert config.aggregate == "warp"

    def test_from_label_requires_cdp(self):
        with pytest.raises(ValueError):
            OptConfig.from_label("T+C")

    def test_with_params(self):
        config = OptConfig(threshold=1).with_params(threshold=7)
        assert config.threshold == 7


class TestTransform:
    def test_input_program_not_mutated(self, bfs_like_source):
        program = parse(bfs_like_source)
        before = print_source(program)
        transform(program, OptConfig.from_label("CDP+T+C+A"))
        assert print_source(program) == before

    def test_all_three_metas_merged(self, bfs_like_source):
        result = transform(bfs_like_source,
                           OptConfig(threshold=32, coarsen_factor=4,
                                     aggregate="multiblock"))
        assert result.meta.macros["_THRESHOLD"] == 32
        assert result.meta.macros["_CFACTOR"] == 4
        assert result.meta.macros["_AGG_GRANULARITY"] == 8
        assert result.meta.serial_functions
        assert result.meta.coarsened_kernels
        assert result.meta.agg_specs

    def test_source_property(self, bfs_like_source):
        result = transform(bfs_like_source, OptConfig(threshold=1))
        assert isinstance(result, TransformResult)
        assert "_THRESHOLD" in result.source

    def test_empty_config_is_identity_modulo_format(self, bfs_like_source):
        result = transform(bfs_like_source, OptConfig())
        expected = print_source(parse(bfs_like_source))
        assert result.source == expected

    def test_t_then_c_serial_clone_is_uncoarsened(self, bfs_like_source):
        """Pipeline order: the serial clone must come from the original
        child, not the coarsened one."""
        result = transform(bfs_like_source,
                           OptConfig(threshold=8, coarsen_factor=4))
        serial = result.program.function("child_serial")
        names = {p.name for p in serial.params}
        # the coarsening _gDim param must not leak into the serial clone's
        # original parameter prefix (its own dim3 params are _gDim/_bDim
        # appended at the end)
        assert [p.name for p in serial.params[:-2]] == \
            [p.name for p in parse(bfs_like_source).function("child").params]

    def test_c_then_a_disagg_outside_coarsening_loop(self, bfs_like_source):
        result = transform(bfs_like_source,
                           OptConfig(coarsen_factor=4, aggregate="block"))
        agg = result.program.function("child_agg")
        # The binary search (disagg) precedes the coarsening For loop.
        stmts = agg.body.stmts
        first_loop_idx = next(i for i, s in enumerate(stmts)
                              if find_all(s, ast.For))
        assert any(isinstance(s, ast.While) or find_all(s, ast.While)
                   for s in stmts[:first_loop_idx])

    def test_alternative_order_supported(self, bfs_like_source):
        result = transform(bfs_like_source,
                           OptConfig(threshold=8, coarsen_factor=4,
                                     aggregate="block"),
                           order=("C", "T", "A"))
        text = result.source
        assert print_source(parse(text)) == text

    def test_thresholded_launch_aggregated(self, bfs_like_source):
        """T then A: the guarded launch becomes store code; the serial
        branch survives."""
        result = transform(bfs_like_source,
                           OptConfig(threshold=8, aggregate="block"))
        parent = result.program.function("parent")
        launch_kernels = {l.kernel for l in find_all(parent, ast.Launch)}
        assert launch_kernels == {"child_agg"}
        calls = {c.func.name for c in find_all(parent, ast.Call)
                 if isinstance(c.func, ast.Ident)}
        assert "child_serial" in calls
