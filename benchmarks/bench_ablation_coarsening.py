"""Ablation — coarsening-factor sensitivity (Sec. VIII-C: "performance is
not very sensitive to the coarsening factor provided it is sufficiently
large")."""

from repro.benchmarks import get_benchmark
from repro.harness import SweepExecutor, SweepPoint, TuningParams

from conftest import save

FACTORS = (1, 2, 4, 8, 16, 32, 64)


def _sweep(scale, executor):
    executor = executor or SweepExecutor()
    cdp, = executor.run([SweepPoint("MSTF", "KRON", "CDP", scale=scale)])
    points = [SweepPoint("MSTF", "KRON", "CDP+T+C+A",
                         TuningParams(threshold=32, coarsen_factor=factor,
                                      granularity="block"), scale=scale)
              for factor in FACTORS]
    results = executor.run(points)
    return [(factor, result.total_time,
             cdp.total_time / result.total_time)
            for factor, result in zip(FACTORS, results)]


def test_coarsening_factor_insensitivity(benchmark, repro_scale, out_dir,
                                         sweep_executor):
    rows = benchmark.pedantic(_sweep, args=(repro_scale, sweep_executor),
                              rounds=1, iterations=1)
    lines = ["Ablation: coarsening factor (MSTF/KRON, T=32, A=block)",
             "%-8s %12s %9s" % ("factor", "sim. cycles", "speedup")]
    for factor, time, speedup in rows:
        lines.append("%-8d %12d %8.2fx" % (factor, time, speedup))
    text = "\n".join(lines)
    save(out_dir, "ablation_coarsening.txt", text)
    print()
    print(text)

    # Factors >= 8 should sit within a narrow band of each other.
    large = [speedup for factor, _, speedup in rows if factor >= 8]
    assert max(large) / min(large) < 1.5


def test_transform_compile_speed(benchmark):
    """Compiler throughput: full T+C+A pipeline on the MSTF source."""
    from repro.transforms import OptConfig, transform
    bench = get_benchmark("MSTF")
    source = bench.cdp_source()
    config = OptConfig(threshold=32, coarsen_factor=8,
                       aggregate="multiblock")
    result = benchmark(transform, source, config)
    assert result.meta.agg_specs
