"""GPU timing simulation: device model, event-driven scheduler, metrics."""

from .config import DeviceConfig
from .costmodel import CostModel, call_cost
from .metrics import Breakdown, breakdown
from .scheduler import Simulator, TimingResult, simulate
from .trace import (DEVICE, HOST, HOST_AGG, BlockCost, GridRecord,
                    LaunchRecord, Trace)

__all__ = [
    "DeviceConfig", "CostModel", "call_cost", "Breakdown", "breakdown",
    "Simulator", "TimingResult", "simulate",
    "DEVICE", "HOST", "HOST_AGG", "BlockCost", "GridRecord", "LaunchRecord",
    "Trace",
]
