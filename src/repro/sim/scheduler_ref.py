"""Reference event-driven timing simulation (pre-vectorization).

This is the straightforward per-block/per-event implementation the
vectorized :mod:`repro.sim.scheduler` replaced. It is retained verbatim
as the golden oracle: the parity suite (``tests/test_scheduler_parity.py``)
asserts the production scheduler produces bit-identical
:class:`TimingResult`\\ s against this one across the full benchmark ×
variant corpus. It is not wired into any run path — use
:func:`repro.sim.scheduler.simulate`.

Replays a :class:`~repro.sim.trace.Trace` against a
:class:`~repro.sim.config.DeviceConfig`:

* blocks of ready grids are placed FIFO onto SMs with per-SM block-slot and
  thread capacities; excess blocks wait — small grids underutilize the
  device because they cannot fill the slots;
* each dynamic launch leaves its parent block at its recorded thread-cycle
  offset, then passes through a single launch processor with a fixed service
  interval — many concurrent launches queue up, reproducing the congestion
  the paper identifies as CDP's first-order cost;
* grid-granularity aggregated launches become ready only after the parent
  grid completes plus a host round-trip (Sec. V-A's CPU involvement);
* host events run sequentially; ``sync`` waits for every grid launched so
  far (and all transitively launched descendants).
"""

import heapq
from collections import deque

from ..errors import SimulationError
from .config import DeviceConfig
from .scheduler import GridTiming, TimingResult
from .trace import HOST_AGG


class _SM:
    __slots__ = ("free_blocks", "free_threads", "work_free")

    def __init__(self, config):
        self.free_blocks = config.max_blocks_per_sm
        self.free_threads = config.max_threads_per_sm
        self.work_free = 0      # when the SM's shared pipeline drains


class ReferenceSimulator:
    """One-shot oracle simulator; use :func:`simulate_reference`."""

    def __init__(self, trace, config):
        self.trace = trace
        self.config = config
        self.events = []
        self._seq = 0
        self.sms = [_SM(config) for _ in range(config.num_sms)]
        self.pending_blocks = deque()   # (grid, block_index)
        self.timings = {g.gid: GridTiming() for g in trace.grids}
        self.launch_server_free = 0
        self.launch_queue_wait = 0
        self.device_launches = 0
        self.host_agg_launches = 0
        self.outstanding = 0            # grids injected but not finished
        # Children index: dynamic launches fire when their parent *block*
        # starts (offset known then); host_agg fire at parent grid finish.
        self.block_launches = {}        # (parent gid, block) -> [LaunchRecord]
        self.finish_launches = {}       # parent gid -> [LaunchRecord]
        for grid in trace.grids:
            for rec in grid.children:
                key = (grid.gid, rec.parent_block)
                self.block_launches.setdefault(key, []).append(rec)
        for grid in trace.grids:
            launch = grid.launch
            if launch is not None and launch.kind == HOST_AGG:
                self.finish_launches.setdefault(
                    launch.parent_grid.gid, []).append(launch)

    # -- event machinery -------------------------------------------------------

    def _push(self, time, kind, payload):
        self._seq += 1
        heapq.heappush(self.events, (time, self._seq, kind, payload))

    def run(self):
        """Process host events; returns a :class:`TimingResult`."""
        host_time = 0
        for event in self.trace.host_events:
            if event[0] == "launch":
                grid = event[1]
                host_time += self.config.host_launch_latency
                self._inject(grid, host_time)
            elif event[0] == "sync":
                host_time = max(host_time, self._drain())
            else:
                raise SimulationError("unknown host event %r" % (event[0],))
        host_time = max(host_time, self._drain())
        return TimingResult(
            total_time=host_time,
            grid_timings=self.timings,
            launch_queue_wait=self.launch_queue_wait,
            device_launches=self.device_launches,
            host_agg_launches=self.host_agg_launches)

    def _inject(self, grid, ready_time):
        timing = self.timings[grid.gid]
        timing.ready = ready_time
        self.outstanding += 1
        if not grid.blocks:
            timing.finish = ready_time
            self.outstanding -= 1
            self._on_grid_finish(grid, ready_time)
            return
        self._push(ready_time, "grid_ready", grid)

    def _drain(self):
        """Run the event loop to exhaustion; returns the last finish time."""
        last = 0
        while self.events:
            time, _, kind, payload = heapq.heappop(self.events)
            last = max(last, time)
            if kind == "grid_ready":
                for index in range(len(payload.blocks)):
                    self.pending_blocks.append((payload, index))
                self._schedule(time)
            elif kind == "block_finish":
                self._on_block_finish(time, *payload)
            elif kind == "launch_ready":
                self._inject(payload.grid, time)
            else:
                raise SimulationError("unknown event %r" % kind)
        if self.outstanding != 0:
            raise SimulationError(
                "simulation drained with %d unfinished grids"
                % self.outstanding)
        return last

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, time):
        while self.pending_blocks:
            grid, index = self.pending_blocks[0]
            sm = self._find_sm(grid.block_dim)
            if sm is None:
                return
            self.pending_blocks.popleft()
            sm.free_blocks -= 1
            sm.free_threads -= min(grid.block_dim,
                                   self.config.max_threads_per_sm)
            timing = self.timings[grid.gid]
            if timing.first_start < 0:
                timing.first_start = time
            cost = grid.blocks[index]
            # Blocks resident on one SM share its issue pipeline: the block
            # completes when both its own slowest warp has retired and the
            # SM has pushed the block's summed work through the pipeline.
            sm.work_free = max(sm.work_free, time) \
                + self.config.block_service(cost.sum_warp)
            finish = max(time + self.config.block_latency(cost.max_warp),
                         sm.work_free)
            self._emit_block_launches(grid, index, time, finish - time)
            self._push(finish, "block_finish", (grid, index, sm))

    def _find_sm(self, block_threads):
        best = None
        for sm in self.sms:
            if sm.free_blocks <= 0:
                continue
            if sm.free_threads < min(block_threads,
                                     self.config.max_threads_per_sm):
                continue
            if best is None or sm.free_threads > best.free_threads:
                best = sm
        return best

    def _emit_block_launches(self, grid, index, start, duration):
        for rec in self.block_launches.get((grid.gid, index), ()):
            arrival = start + min(rec.issue_offset, duration)
            self.device_launches += 1
            ready = max(arrival, self.launch_server_free) \
                + self.config.launch_service_interval
            self.launch_queue_wait += ready - arrival \
                - self.config.launch_service_interval
            self.launch_server_free = ready
            self._push(ready + self.config.device_launch_latency,
                       "launch_ready", rec)

    def _on_block_finish(self, time, grid, index, sm):
        sm.free_blocks += 1
        sm.free_threads += min(grid.block_dim,
                               self.config.max_threads_per_sm)
        timing = self.timings[grid.gid]
        timing.blocks_done += 1
        if timing.blocks_done == len(grid.blocks):
            timing.finish = time
            self.outstanding -= 1
            self._on_grid_finish(grid, time)
        self._schedule(time)

    def _on_grid_finish(self, grid, time):
        for rec in self.finish_launches.get(grid.gid, ()):
            self.host_agg_launches += 1
            self._push(time + self.config.host_agg_overhead,
                       "launch_ready", rec)


def simulate_reference(trace, config=None):
    """Replay *trace* on *config* with the pre-vectorization oracle."""
    return ReferenceSimulator(trace, config or DeviceConfig()).run()
