"""Regenerate every table and figure of the paper's evaluation (Sec. VIII).

Each ``figure*``/``table1`` function returns a small result object carrying
the raw numbers plus a ``format()`` method that prints the same rows/series
the paper reports. Absolute numbers are simulator cycles, not V100 seconds;
the comparisons (who wins, by what factor, where crossovers fall) are the
reproduction target.
"""

import os
from dataclasses import asdict, dataclass, field

from ..benchmarks import FIG9_PAIRS, FIG12_BENCHMARKS, get_benchmark
from ..sim.config import DeviceConfig
from .cache import FigureArtifactCache
from .runner import geomean, run_variant
from .tuning import threshold_candidates, tune
from .variants import VARIANT_LABELS, TuningParams, mask_params


def _artifact_cache(artifacts):
    """Coerce an ``artifacts=`` argument (cache, directory, or None)."""
    if isinstance(artifacts, (str, os.PathLike)):
        return FigureArtifactCache(artifacts)
    return artifacts


def _spec_value(value):
    if isinstance(value, DeviceConfig):
        return asdict(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return [_spec_value(item) for item in value]
    return value


def _artifact_spec(**kwargs):
    """Canonical JSON-able spec of one figure invocation (the cache key)."""
    return {key: _spec_value(value) for key, value in kwargs.items()}


def _build_cached(artifacts, name, spec, build):
    """Serve *name* from the figure-level artifact cache, else build and
    store. A warm result cache makes the grid free but a figure run still
    rebuilds datasets and reference runs; this makes warm runs near-instant.
    """
    artifacts = _artifact_cache(artifacts)
    if artifacts is not None:
        cached = artifacts.get(name, spec)
        if cached is not None:
            return cached
    result = build()
    if artifacts is not None:
        artifacts.put(name, spec, result)
    return result


def _format_table(headers, rows, title=""):
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _run_point(bench, data, label, params, device_config, executor, scale,
               check_against=None):
    """One measurement — through the sweep engine when an executor is given
    (parallelizable, cacheable; skips the per-point output check, which the
    serial path still performs)."""
    if executor is not None and scale is not None:
        from .sweep import SweepPoint
        # Figures cannot represent a failed point: force it to raise.
        return executor.run_one(SweepPoint(
            bench.name, getattr(data, "name", "?"), label,
            params or TuningParams(), device_config or DeviceConfig(),
            scale), on_error="raise")
    return run_variant(bench, data, label, params, device_config,
                       check_against=check_against)


# -- Table I -----------------------------------------------------------------

@dataclass
class Table1Result:
    rows: list

    def to_dict(self):
        """Structured JSON form (the default ``GET /figure/table1``
        payload — see ``docs/serving.md``)."""
        return {"kind": "table1",
                "title": "Table I: benchmarks and datasets "
                         "(scaled reproduction)",
                "rows": [{"benchmark": bench, "dataset": dataset,
                          "size": size}
                         for bench, dataset, size in self.rows]}

    def format(self):
        return _format_table(
            ("Benchmark", "Dataset", "Size"), self.rows,
            "Table I: benchmarks and datasets (scaled reproduction)")


def table1(scale=1.0, artifacts=None):
    """The benchmark/dataset inventory with this reproduction's sizes."""
    def build():
        rows = []
        for bench_name, dataset_name in FIG9_PAIRS:
            bench = get_benchmark(bench_name)
            data = bench.build_dataset(dataset_name, scale)
            rows.append((bench.name, dataset_name, _dataset_size(data)))
        bench = get_benchmark("BFS")
        road = bench.build_dataset("ROAD-NY", scale)
        rows.append(("BFS/...", "ROAD-NY", _dataset_size(road)))
        return Table1Result(rows)
    return _build_cached(artifacts, "table1", _artifact_spec(scale=scale),
                         build)


def _dataset_size(data):
    if hasattr(data, "num_vertices"):
        return "%d vertices, %d edges" % (data.num_vertices, data.num_edges)
    if hasattr(data, "num_clauses"):
        return "%d vars, %d clauses, %d literals" % (
            data.num_vars, data.num_clauses, data.num_literals)
    return "%d lines, max tess %d" % (data.num_lines, data.max_tess)


# -- Figure 9 ------------------------------------------------------------------

@dataclass
class SpeedupFigure:
    """Speedup-over-CDP series (Figs. 9 and 12 share this shape)."""

    title: str
    pairs: list                       # [(benchmark, dataset), ...]
    speedups: dict                    # (bench, ds) -> {label: speedup}
    best_params: dict = field(default_factory=dict)
    # (bench, ds, label) -> TuningParams

    def to_dict(self):
        """Structured JSON form: per-pair speedup rows, the geomean
        summary, and the tuned parameters behind each cell (the default
        ``GET /figure/<name>`` payload — see ``docs/serving.md``)."""
        return {
            "kind": "speedup",
            "title": self.title,
            "rows": [{"benchmark": bench, "dataset": dataset,
                      "speedups": dict(self.speedups[(bench, dataset)])}
                     for bench, dataset in self.pairs],
            "geomeans": self.geomeans(),
            "best_params": [
                {"benchmark": bench, "dataset": dataset, "label": label,
                 "params": asdict(params)}
                for (bench, dataset, label), params
                in self.best_params.items()],
        }

    def geomeans(self):
        # Union of labels across every row (a label missing from the
        # first pair's row must still reach the geomean table), in first-
        # appearance order.
        labels = []
        for row in self.speedups.values():
            for label in row:
                if label not in labels:
                    labels.append(label)
        return {label: geomean([self.speedups[p][label]
                                for p in self.pairs
                                if label in self.speedups[p]])
                for label in labels}

    def format(self):
        labels = [l for l in VARIANT_LABELS
                  if any(l in row for row in self.speedups.values())]
        headers = ["Benchmark", "Dataset"] + labels
        rows = []
        for pair in self.pairs:
            row = [pair[0], pair[1]]
            for label in labels:
                value = self.speedups[pair].get(label)
                row.append("%.2f" % value if value is not None else "-")
            rows.append(row)
        gm = self.geomeans()
        rows.append(["Geomean", ""] +
                    ["%.2f" % gm[label] for label in labels])
        return _format_table(headers, rows,
                             self.title + " (speedup over CDP; higher is "
                             "better)")


def _speedup_figure(title, pairs, scale, strategy, device_config, labels,
                    dataset_override=None, uncapped_threshold=False,
                    executor=None):
    device_config = device_config or DeviceConfig()
    speedups = {}
    best_params = {}
    for bench_name, dataset_name in pairs:
        bench = get_benchmark(bench_name)
        data = bench.build_dataset(dataset_override or dataset_name, scale)
        reference = run_variant(bench, data, "No CDP",
                                device_config=device_config,
                                keep_outputs=True)
        cdp = run_variant(bench, data, "CDP", device_config=device_config,
                          check_against=reference.outputs)
        row = {"No CDP": cdp.total_time / max(reference.total_time, 1),
               "CDP": 1.0}
        for label in labels:
            if label in ("No CDP", "CDP"):
                continue
            outcome = tune(bench, data, label, strategy, device_config,
                           check_against=reference.outputs,
                           uncapped=uncapped_threshold,
                           executor=executor, scale=scale)
            row[label] = cdp.total_time / max(outcome.best_time, 1)
            best_params[(bench_name, dataset_name, label)] = outcome.best
        speedups[(bench_name, dataset_name)] = row
    return SpeedupFigure(title, list(pairs), speedups, best_params)


def figure9(scale=0.25, strategy="guided", device_config=None,
            pairs=FIG9_PAIRS, executor=None, artifacts=None):
    """Fig. 9: all optimization combinations on all benchmark/dataset pairs.

    An *executor* (:class:`~repro.harness.sweep.SweepExecutor`) runs every
    tuning grid through the parallel/cached sweep engine; *artifacts* (a
    :class:`~repro.harness.cache.FigureArtifactCache` or its directory)
    caches the finished figure object itself.
    """
    spec = _artifact_spec(scale=scale, strategy=strategy,
                          device_config=device_config or DeviceConfig(),
                          pairs=pairs)
    return _build_cached(
        artifacts, "figure9", spec,
        lambda: _speedup_figure("Figure 9", pairs, scale, strategy,
                                device_config, VARIANT_LABELS,
                                executor=executor))


# -- Figure 10 -----------------------------------------------------------------

@dataclass
class BreakdownFigure:
    title: str
    rows: dict        # (bench, ds) -> {label: {component: normalized value}}

    COMPONENTS = ("parent", "child", "launch", "agg", "disagg")
    LABELS = ("KLAP (CDP+A)", "CDP+T+A", "CDP+T+C+A")

    def to_dict(self):
        """Structured JSON form: one row per (pair, variant) with the
        normalized component breakdown (``docs/serving.md``)."""
        return {
            "kind": "breakdown",
            "title": self.title,
            "components": list(self.COMPONENTS),
            "rows": [{"benchmark": bench, "dataset": dataset,
                      "variant": label,
                      "normalized": dict(by_label[label]),
                      "total": sum(by_label[label].values())}
                     for (bench, dataset), by_label in self.rows.items()
                     for label in self.LABELS],
        }

    def format(self):
        headers = ["Benchmark", "Dataset", "Variant"] + list(self.COMPONENTS) \
            + ["total"]
        table_rows = []
        for (bench, ds), by_label in self.rows.items():
            for label in self.LABELS:
                comp = by_label[label]
                table_rows.append(
                    [bench, ds, label]
                    + ["%.3f" % comp[c] for c in self.COMPONENTS]
                    + ["%.3f" % sum(comp.values())])
        return _format_table(
            headers, table_rows,
            self.title + " (normalized to KLAP (CDP+A) total; lower is "
            "better)")


def figure10(scale=0.25, strategy="guided", device_config=None,
             pairs=FIG9_PAIRS, executor=None, artifacts=None):
    """Fig. 10: execution-time breakdown of KLAP vs +T vs +T+C."""
    device_config = device_config or DeviceConfig()
    spec = _artifact_spec(scale=scale, strategy=strategy,
                          device_config=device_config, pairs=pairs)
    return _build_cached(
        artifacts, "figure10", spec,
        lambda: _figure10(scale, strategy, device_config, pairs, executor))


def _figure10(scale, strategy, device_config, pairs, executor):
    rows = {}
    for bench_name, dataset_name in pairs:
        bench = get_benchmark(bench_name)
        data = bench.build_dataset(dataset_name, scale)
        by_label = {}
        klap_total = None
        for label in BreakdownFigure.LABELS:
            outcome = tune(bench, data, label, strategy, device_config,
                           executor=executor, scale=scale)
            result = _run_point(bench, data, label, outcome.best,
                                device_config, executor, scale)
            total = sum(result.breakdown.values())
            if klap_total is None:
                klap_total = max(total, 1)
            by_label[label] = {c: v / klap_total
                               for c, v in result.breakdown.items()}
        rows[(bench_name, dataset_name)] = by_label
    return BreakdownFigure("Figure 10", rows)


# -- Figure 11 -----------------------------------------------------------------

@dataclass
class SweepFigure:
    title: str
    benchmark: str
    dataset: str
    coarsen_factor: int
    thresholds: list
    series: dict      # granularity-label -> {threshold: speedup-over-CDP}

    def to_dict(self):
        """Structured JSON form: the threshold axis plus one series per
        granularity; the unthresholded cell keys as ``"none"`` (JSON
        object keys must be strings — ``docs/serving.md``)."""
        def key(threshold):
            return "none" if threshold is None else str(threshold)
        return {
            "kind": "threshold-sweep",
            "title": self.title,
            "benchmark": self.benchmark,
            "dataset": self.dataset,
            "coarsen_factor": self.coarsen_factor,
            "thresholds": [key(t) for t in self.thresholds],
            "series": {label: {key(t): value
                               for t, value in points.items()}
                       for label, points in self.series.items()},
        }

    def format(self):
        headers = ["Threshold"] + list(self.series.keys())
        rows = []
        for threshold in self.thresholds:
            row = ["none" if threshold is None else str(threshold)]
            for label in self.series:
                value = self.series[label].get(threshold)
                row.append("%.2f" % value if value is not None else "-")
            rows.append(row)
        return _format_table(
            headers, rows,
            "%s: %s (%s), coarsening factor = %d (speedup over CDP)"
            % (self.title, self.benchmark, self.dataset,
               self.coarsen_factor))


def figure11(bench_name, dataset_name, scale=0.25, coarsen_factor=8,
             device_config=None, group_blocks=8, executor=None,
             artifacts=None):
    """Fig. 11: speedup vs threshold for each aggregation granularity.

    The coarsening factor is held at a fixed (good) value like the paper.
    Granularity 'none' is thresholding+coarsening without aggregation.
    The (granularity × threshold) grid is a static sweep; with an
    *executor* it fans out through the sweep engine in one batch.
    """
    device_config = device_config or DeviceConfig()
    spec = _artifact_spec(benchmark=bench_name, dataset=dataset_name,
                          scale=scale, coarsen_factor=coarsen_factor,
                          device_config=device_config,
                          group_blocks=group_blocks)
    return _build_cached(
        artifacts, "figure11", spec,
        lambda: _figure11(bench_name, dataset_name, scale, coarsen_factor,
                          device_config, group_blocks, executor))


def _figure11(bench_name, dataset_name, scale, coarsen_factor,
              device_config, group_blocks, executor):
    bench = get_benchmark(bench_name)
    data = bench.build_dataset(dataset_name, scale)
    reference = run_variant(bench, data, "No CDP",
                            device_config=device_config, keep_outputs=True)
    cdp = run_variant(bench, data, "CDP", device_config=device_config)
    thresholds = [None] + threshold_candidates(bench, data,
                                               device_config=device_config)
    cells = []
    for granularity in ("grid", "multiblock", "block", "warp", "none"):
        for threshold in thresholds:
            label = _sweep_label(threshold, granularity)
            if label is None:
                continue
            # mask_params pins group_blocks to the default unless the
            # granularity is multi-block, so non-multi-block cells map to
            # one cache key whatever group_blocks= the caller passed.
            params = mask_params(label, TuningParams(
                threshold=threshold,
                coarsen_factor=coarsen_factor,
                granularity=None if granularity == "none" else granularity,
                group_blocks=group_blocks))
            cells.append((granularity, threshold, label, params))
    if executor is not None:
        from .sweep import SweepPoint
        # The figure has no representation for a failed cell: force
        # failures to raise (with point attribution).
        results = executor.run(
            [SweepPoint(bench_name, dataset_name, label, params,
                        device_config, scale)
             for _, _, label, params in cells], on_error="raise")
        # Workers return timings only, so re-verify the fastest point
        # against the reference outputs (the serial path checks them all).
        best_index = min(range(len(results)),
                         key=lambda i: results[i].total_time)
        _, _, best_label, best_params = cells[best_index]
        run_variant(bench, data, best_label, best_params, device_config,
                    check_against=reference.outputs)
    else:
        results = [run_variant(bench, data, label, params, device_config,
                               check_against=reference.outputs)
                   for _, _, label, params in cells]
    series = {}
    for (granularity, threshold, _, _), result in zip(cells, results):
        points = series.setdefault(granularity, {})
        points[threshold] = cdp.total_time / max(result.total_time, 1)
    return SweepFigure("Figure 11", bench_name, dataset_name, coarsen_factor,
                       thresholds, series)


def _sweep_label(threshold, granularity):
    has_t = threshold is not None
    has_a = granularity != "none"
    if has_t and has_a:
        return "CDP+T+C+A"
    if has_t:
        return "CDP+T+C"
    if has_a:
        return "CDP+C+A"
    return "CDP+C"


# -- Figure 12 -----------------------------------------------------------------

def figure12(scale=0.25, strategy="guided", device_config=None,
             executor=None, artifacts=None):
    """Fig. 12: graph benchmarks on a road graph (low nested parallelism).

    Per Sec. VIII-D the threshold is tuned *beyond* the largest launch size
    here, so CDP+T may degenerate to serializing every child like No CDP.
    """
    pairs = [(name, "ROAD-NY") for name in FIG12_BENCHMARKS]
    spec = _artifact_spec(scale=scale, strategy=strategy,
                          device_config=device_config or DeviceConfig(),
                          pairs=pairs)
    return _build_cached(
        artifacts, "figure12", spec,
        lambda: _speedup_figure("Figure 12", pairs, scale, strategy,
                                device_config, VARIANT_LABELS,
                                uncapped_threshold=True, executor=executor))


# -- Sec. VIII-C fixed-threshold study ---------------------------------------

@dataclass
class FixedThresholdResult:
    tuned_geomean: float
    fixed_geomean: float
    per_pair: dict

    def to_dict(self):
        """Structured JSON form: per-pair tuned-vs-fixed speedups plus
        the two geomeans (``docs/serving.md``)."""
        return {
            "kind": "fixed-threshold",
            "title": "Sec. VIII-C: CDP+T+C+A speedup over CDP+C+A, "
                     "tuned threshold vs fixed threshold 128",
            "rows": [{"benchmark": bench, "dataset": dataset,
                      "tuned": tuned, "fixed": fixed}
                     for (bench, dataset), (tuned, fixed)
                     in self.per_pair.items()],
            "geomeans": {"tuned": self.tuned_geomean,
                         "fixed": self.fixed_geomean},
        }

    def format(self):
        rows = [(b, d, "%.2f" % v[0], "%.2f" % v[1])
                for (b, d), v in self.per_pair.items()]
        rows.append(("Geomean", "", "%.2f" % self.tuned_geomean,
                     "%.2f" % self.fixed_geomean))
        return _format_table(
            ("Benchmark", "Dataset", "tuned T", "T=128"), rows,
            "Sec. VIII-C: CDP+T+C+A speedup over CDP+C+A, tuned threshold "
            "vs fixed threshold 128")


def fixed_threshold_study(scale=0.25, strategy="guided", device_config=None,
                          pairs=FIG9_PAIRS, fixed=128, executor=None,
                          artifacts=None):
    """Sec. VIII-C: a fixed threshold of 128 still yields most of the gain."""
    device_config = device_config or DeviceConfig()
    spec = _artifact_spec(scale=scale, strategy=strategy,
                          device_config=device_config, pairs=pairs,
                          fixed=fixed)
    return _build_cached(
        artifacts, "fixed_threshold", spec,
        lambda: _fixed_threshold_study(scale, strategy, device_config,
                                       pairs, fixed, executor))


def _fixed_threshold_study(scale, strategy, device_config, pairs, fixed,
                           executor):
    per_pair = {}
    for bench_name, dataset_name in pairs:
        bench = get_benchmark(bench_name)
        data = bench.build_dataset(dataset_name, scale)
        base = tune(bench, data, "CDP+C+A", strategy, device_config,
                    executor=executor, scale=scale)
        tuned = tune(bench, data, "CDP+T+C+A", strategy, device_config,
                     executor=executor, scale=scale)
        fixed_params = TuningParams(
            threshold=fixed,
            coarsen_factor=tuned.best.coarsen_factor,
            granularity=tuned.best.granularity,
            group_blocks=tuned.best.group_blocks)
        fixed_run = _run_point(bench, data, "CDP+T+C+A", fixed_params,
                               device_config, executor, scale)
        per_pair[(bench_name, dataset_name)] = (
            base.best_time / max(tuned.best_time, 1),
            base.best_time / max(fixed_run.total_time, 1))
    tuned_gm = geomean([v[0] for v in per_pair.values()])
    fixed_gm = geomean([v[1] for v in per_pair.values()])
    return FixedThresholdResult(tuned_gm, fixed_gm, per_pair)
