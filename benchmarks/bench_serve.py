"""Serving-path benchmark: the per-commit ``BENCH_serve.json`` artifact.

Runs a small pinned workload against an in-process ``repro serve``
instance — cold sweep, warm sweep, warm-point latency, a concurrent
same-spec dedup probe, a mixed-priority probe (a high-priority cold
point must finish ahead of queued low-priority work), and a shed probe
(an expired deadline must 504 without simulating) — and writes
wall-times plus the hit/miss/dedup/shed counters to a JSON artifact.
CI's ``bench-trend`` job uploads it on every push, so the serving perf
trajectory is recorded per commit (``docs/serving.md`` points operators
at the same numbers).

Standalone on purpose (no pytest-benchmark): the artifact must exist
even on runners without the benchmarking extras.

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json

Exit status is non-zero when the counters contradict the serving
contract (e.g. a warm sweep that simulated something, or a dedup probe
that ran twice) — a lying benchmark is worse than none.
"""

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
import urllib.request

#: The pinned workload: small enough for CI, big enough to show the
#: cold/warm cliff. Changing it breaks trend comparability — bump
#: ``schema`` if you must.
PAIRS = ["BFS:KRON", "SSSP:KRON"]
VARIANTS = ["CDP", "CDP+T"]
THRESHOLD = 16
SCALE = 0.08
DEDUP_QUERY = ("/point?benchmark=BFS&dataset=KRON&label=CDP%2BT"
               "&threshold=64&scale=" + str(SCALE))
#: Fresh cold specs for the priority/shed probes (distinct thresholds
#: keep them off every other segment's cache keys).
PRIORITY_THRESHOLD = 48
HIGH_QUERY = ("/point?benchmark=BFS&dataset=KRON&label=CDP%2BT"
              "&threshold=96&scale=" + str(SCALE))
SHED_QUERY = ("/point?benchmark=SSSP&dataset=KRON&label=CDP%2BT"
              "&threshold=96&scale=" + str(SCALE))
WARM_POINT_SAMPLES = 25


def request(address, path, data=None, timeout=300, headers=None):
    url = "http://%s:%d%s" % (*address, path)
    payload = json.dumps(data).encode() if data is not None else None
    with urllib.request.urlopen(
            urllib.request.Request(url, data=payload,
                                   headers=headers or {}),
            timeout=timeout) as resp:
        return json.loads(resp.read())


def request_status(address, path, headers=None, timeout=300):
    """(status, payload), treating HTTP errors as data (the shed probe
    *wants* the 504)."""
    import urllib.error
    try:
        return 200, request(address, path, headers=headers,
                            timeout=timeout)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def check(condition, message, failures):
    if not condition:
        failures.append(message)
        print("FAIL: %s" % message, file=sys.stderr)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="artifact path (default BENCH_serve.json)")
    parser.add_argument("--miss-workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro import __version__
    from repro.harness.cache import CACHE_VERSION
    from repro.harness.serve import ServeServer

    failures = []
    body = {"pairs": PAIRS, "variants": VARIANTS,
            "params": {"threshold": THRESHOLD}, "scale": SCALE}
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        server = ServeServer(cache_dir=cache_dir,
                             miss_workers=args.miss_workers)
        address = server.start()
        try:
            grid = len(PAIRS) * len(VARIANTS)
            cold_seconds, cold = timed(
                lambda: request(address, "/sweep", data=body))
            check(cold["stats"]["simulated"] == grid,
                  "cold sweep simulated %r, wanted %d"
                  % (cold["stats"], grid), failures)
            warm_seconds, warm = timed(
                lambda: request(address, "/sweep", data=body))
            check(warm["stats"] == {"points": grid, "hits": grid,
                                    "simulated": 0, "failed": 0,
                                    "shed": 0},
                  "warm sweep was not all-hits: %r" % (warm["stats"],),
                  failures)

            point_path = ("/point?benchmark=BFS&dataset=KRON"
                          "&label=CDP%2BT&threshold=16&scale=" + str(SCALE))
            latencies = []
            for _ in range(WARM_POINT_SAMPLES):
                seconds, payload = timed(
                    lambda: request(address, point_path))
                check(payload["cache"] == "hit",
                      "warm /point missed", failures)
                latencies.append(seconds)

            # Dedup probe: two concurrent cold requests for one fresh
            # masked spec must cost exactly one simulation.
            info_before = request(address, "/cache/info")
            results = []

            def cold_hit():
                results.append(request(address, DEDUP_QUERY))

            threads = [threading.Thread(target=cold_hit)
                       for _ in range(2)]
            dedup_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            dedup_seconds = time.perf_counter() - dedup_started
            info_after = request(address, "/cache/info")
            simulated_delta = (info_after["executor"]["simulated"]
                               - info_before["executor"]["simulated"])
            joins_delta = (info_after["queue"]["dedup_joins"]
                           - info_before["queue"]["dedup_joins"])
            check(simulated_delta == 1,
                  "dedup probe simulated %d times" % simulated_delta,
                  failures)
            check(len(results) == 2
                  and results[0]["result"] == results[1]["result"],
                  "dedup probe responses disagree", failures)

            # Mixed-priority probe: queue a low-priority cold sweep wide
            # enough to keep the workers busy, then verify a
            # high-priority cold point jumps the queued remainder and
            # answers while the sweep is still running.
            low_body = {"pairs": PAIRS,
                        "variants": ["CDP", "CDP+T", "CDP+C",
                                     "CDP+T+C", "CDP+T+C+A"],
                        "params": {"threshold": PRIORITY_THRESHOLD,
                                   "coarsen": 2, "aggregate": "block"},
                        "scale": SCALE, "priority": "low"}
            finished = {}

            def low_sweep():
                request(address, "/sweep", data=low_body)
                finished["low"] = time.perf_counter()

            low_thread = threading.Thread(target=low_sweep)
            low_thread.start()
            poll_deadline = time.time() + 60
            while request(address,
                          "/cache/info")["queue"]["depth"] < 1:
                if time.time() > poll_deadline or "low" in finished:
                    break               # sweep drained before we probed
                time.sleep(0.002)
            high_seconds, high = timed(lambda: request(
                address, HIGH_QUERY,
                headers={"X-Repro-Priority": "high"}))
            finished["high"] = time.perf_counter()
            low_thread.join()
            check(high["cache"] == "miss",
                  "priority probe point was unexpectedly warm", failures)
            check(finished["high"] < finished["low"],
                  "high-priority point (%.3fs) did not finish before the "
                  "queued low-priority sweep" % high_seconds, failures)

            # Shed probe: an already-expired deadline must 504 without
            # touching the simulator.
            shed_before = request(address, "/cache/info")["queue"]["shed"]
            shed_status, shed_payload = request_status(
                address, SHED_QUERY,
                headers={"X-Repro-Deadline-Ms": "0"})
            check(shed_status == 504
                  and shed_payload.get("error") == "DeadlineExceededError"
                  and shed_payload.get("retry") is True,
                  "shed probe got %d %r" % (shed_status, shed_payload),
                  failures)
            info_final = request(address, "/cache/info")
            shed_delta = info_final["queue"]["shed"] - shed_before
            check(shed_delta == 1,
                  "shed probe shed %d tasks, wanted 1" % shed_delta,
                  failures)

            metrics_seconds, metrics_text = timed(
                lambda: urllib.request.urlopen(
                    "http://%s:%d/metrics" % address,
                    timeout=60).read().decode())
            check("repro_queue_dedup_joins_total" in metrics_text,
                  "/metrics is missing queue series", failures)
            check("repro_queue_shed_total" in metrics_text,
                  "/metrics is missing the shed counter", failures)

            artifact = {
                "schema": 2,
                "versions": {"code": __version__,
                             "cache": CACHE_VERSION},
                "workload": {"pairs": PAIRS, "variants": VARIANTS,
                             "threshold": THRESHOLD, "scale": SCALE,
                             "miss_workers": args.miss_workers},
                "cold_sweep_seconds": round(cold_seconds, 6),
                "warm_sweep_seconds": round(warm_seconds, 6),
                "cold_over_warm": round(cold_seconds
                                        / max(warm_seconds, 1e-9), 2),
                "warm_point_seconds": {
                    "p50": round(statistics.median(latencies), 6),
                    "max": round(max(latencies), 6),
                    "samples": len(latencies)},
                "dedup_probe": {"wall_seconds": round(dedup_seconds, 6),
                                "simulated": simulated_delta,
                                "dedup_joins": joins_delta},
                "priority_probe": {
                    "high_point_seconds": round(high_seconds, 6),
                    "high_finished_first":
                        finished["high"] < finished["low"]},
                "shed_probe": {"status": shed_status,
                               "shed": shed_delta},
                "metrics_scrape": {"seconds": round(metrics_seconds, 6),
                                   "bytes": len(metrics_text)},
                "counters": {"executor": info_final["executor"],
                             "queue": info_final["queue"],
                             "results": info_final["results"]},
                "failures": failures,
            }
        finally:
            server.close()

    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)
    print("cold sweep  %.3fs   warm sweep %.4fs   warm point p50 %.4fs"
          % (artifact["cold_sweep_seconds"],
             artifact["warm_sweep_seconds"],
             artifact["warm_point_seconds"]["p50"]))
    print("dedup probe %.3fs   simulated=%d joins=%d"
          % (dedup_seconds, simulated_delta, joins_delta))
    print("priority probe %.3fs (high first: %s)   shed probe status=%d "
          "shed=%d" % (high_seconds,
                       artifact["priority_probe"]["high_finished_first"],
                       shed_status, shed_delta))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
