"""The stdlib metrics registry (repro.harness.metrics).

Counter/gauge/histogram semantics, label handling, registration
invariants, and the Prometheus text exposition the serve layer scrapes
through ``GET /metrics``.
"""

import re
import threading

import pytest

from repro.harness.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                                   REGISTRY)

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? '
    r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$')


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "hits")
        assert hits.value() == 0.0
        hits.inc()
        hits.inc(2.5)
        assert hits.value() == 3.5

    def test_labels_partition_samples(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", "x", ("kind",))
        c.inc(kind="a")
        c.inc(3, kind="b")
        assert c.value(kind="a") == 1.0
        assert c.value(kind="b") == 3.0

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total", "c").inc(-1)

    def test_wrong_labels_raise(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "c", ("kind",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.inc(kind="a", extra="b")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth", "queue depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0
        g.dec(10)
        assert g.value() == -4.0


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_seconds", "latency",
                               buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        text = registry.render()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="10"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_count 4" in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_needs_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", "h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "c", ("kind",))
        b = registry.counter("c_total", "different help", ("kind",))
        assert a is b

    def test_kind_and_label_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", ("kind",))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "c", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "c", ("other",))

    def test_series_count_and_reset(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "c", ("kind",))
        g = registry.gauge("g", "g")
        assert registry.series_count() == 1     # unlabeled gauge
        c.inc(kind="a")
        c.inc(kind="b")
        g.set(1)
        assert registry.series_count() == 3
        registry.reset()
        assert c.value(kind="a") == 0.0
        assert registry.names() == ["c_total", "g"]

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        c = registry.counter("c_total", "c")

        def spin():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert c.value() == 8000.0


class TestExposition:
    def test_render_is_valid_prometheus_text(self):
        registry = MetricsRegistry()
        c = registry.counter("req_total", "requests", ("route", "code"))
        c.inc(route="/point", code="200")
        c.inc(4, route='/weird"route\\', code="404")
        g = registry.gauge("depth", "queue depth")
        g.set(3)
        h = registry.histogram("lat_seconds", "latency", buckets=(1.0,))
        h.observe(0.5)
        text = registry.render()
        lines = text.splitlines()
        assert text.endswith("\n")
        for name, kind in (("req_total", "counter"), ("depth", "gauge"),
                           ("lat_seconds", "histogram")):
            assert "# HELP %s" % name in text
            assert "# TYPE %s %s" % (name, kind) in text
        for line in lines:
            if not line or line.startswith("#"):
                continue
            assert SAMPLE_RE.match(line), line
        # Label values are escaped, not mangled.
        assert 'route="/weird\\"route\\\\"' in text

    def test_unlabeled_metrics_render_zero_before_first_touch(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c")
        registry.gauge("g", "g")
        text = registry.render()
        assert "c_total 0" in text
        assert "g 0" in text

    def test_global_registry_exists(self):
        assert "repro_queue_submitted_total" in REGISTRY.names()
        assert "repro_sweep_points_total" in REGISTRY.names()
