"""Coarsening transformation (Sec. IV, Fig. 6).

The child kernel gains a trailing ``dim3 _gDim`` parameter carrying the
*original* grid dimension and a block-stride loop::

    __global__ void child(params, dim3 _gDim) {
        for (int _bx = blockIdx.x; _bx < _gDim.x; _bx += gridDim.x) {
            child body   // blockIdx.x -> _bx, gridDim -> _gDim
        }
    }

and every dynamic launch site is rewritten to launch the ceiling-divided
coarsened grid, passing the original grid dimension::

    dim3 _ogDim = gDim;
    dim3 _cgDim = _ogDim;
    _cgDim.x = (_ogDim.x + _CFACTOR - 1) / _CFACTOR;
    child<<<_cgDim, bDim>>>(args, _ogDim);

Coarsening is legal for kernels with barriers (all threads of a block share
the same loop trip count, so barriers stay convergent), which is why — unlike
thresholding — no barrier legality check is made. Thread-exit ``return``
statements inside the body would skip later loop iterations, so they are
rewritten to ``continue`` with the same nested-return restriction as the
thresholding serializer.
"""

from ..minicuda import ast
from ..minicuda import builders as b
from ..analysis import (NameAllocator, declared_names, find_launch_sites,
                        resolve_child)
from .base import ModuleMeta, rewrite_launches, substitute_reserved
from .thresholding import _ReturnToContinue

CFACTOR_MACRO = "_CFACTOR"

#: Default coarsening factor: Sec. VIII-C observes performance is insensitive
#: to the factor provided it is sufficiently large (> 8).
DEFAULT_CFACTOR = 16


class CoarseningPass:
    """Thread-block coarsening applied to dynamically launched kernels."""

    def __init__(self, factor=DEFAULT_CFACTOR):
        self.factor = factor

    def run(self, program, allocator=None):
        allocator = allocator or NameAllocator.for_program(program)
        meta = ModuleMeta(macros={CFACTOR_MACRO: self.factor})
        coarsened = {}
        for site in find_launch_sites(program):
            child = resolve_child(program, site)
            if child.name not in coarsened:
                reason = self._rejection_reason(program, child)
                if reason is not None:
                    meta.skipped_sites.append(
                        (site.parent.name, child.name, reason))
                    coarsened[child.name] = None
                    continue
                gdim_param = self._coarsen_kernel(child)
                if gdim_param is None:
                    meta.skipped_sites.append(
                        (site.parent.name, child.name, "return inside loop"))
                    coarsened[child.name] = None
                    continue
                coarsened[child.name] = gdim_param
                meta.coarsened_kernels[child.name] = {
                    "gdim_param": gdim_param,
                    "factor": self.factor,
                }
            if coarsened[child.name] is None:
                continue
            self._rewrite_site(site, allocator)
        return meta

    def _rejection_reason(self, program, child):
        # Coarsening is applied along the x dimension only; a
        # multi-dimensional child is still legal because blockIdx.y/z and
        # the y/z extents of the launch are left untouched — the coarsened
        # launch divides only _cgDim.x and ``_gDim`` carries the original
        # extents for every dimension.
        return None

    # -- kernel rewrite ----------------------------------------------------

    def _coarsen_kernel(self, child):
        """Mutate *child* in place; returns the new parameter's name."""
        taken = declared_names(child)

        def local(stem):
            name = stem
            while name in taken:
                name = "_" + name
            taken.add(name)
            return name

        gdim = local("_gDim")
        bx = local("_bx")

        body = child.body
        rewriter = _ReturnToContinue()
        body = rewriter.visit(body)
        if rewriter.nested_return:
            return None
        substitute_reserved(
            body,
            member_map={("blockIdx", "x"): b.ident(bx)},
            ident_map={"gridDim": b.ident(gdim)})
        loop = ast.For(
            b.decl_int(bx, b.member("blockIdx", "x")),
            b.lt(b.ident(bx), b.member(gdim, "x")),
            b.assign(bx, b.member("gridDim", "x"), op="+="),
            body)
        child.params.append(ast.Param(ast.DIM3.clone(), gdim))
        child.body = b.block(loop)
        return gdim

    # -- launch-site rewrite ------------------------------------------------

    def _rewrite_site(self, site, allocator):
        target_launch = site.launch

        def rewrite(launch):
            if launch is not target_launch:
                return None
            og = allocator.fresh("_ogDim")
            cg = allocator.fresh("_cgDim")
            stmts = [
                b.decl_dim3(og, launch.grid),
                b.decl_dim3(cg, b.ident(og)),
                b.expr_stmt(b.assign(
                    b.member(cg, "x"),
                    b.ceil_div(b.member(og, "x"), b.ident(CFACTOR_MACRO)))),
                b.expr_stmt(ast.Launch(
                    launch.kernel, b.ident(cg), launch.block,
                    list(launch.args) + [b.ident(og)],
                    launch.shmem, launch.stream)),
            ]
            return b.block(*stmts)

        rewrite_launches(site.parent, rewrite)
