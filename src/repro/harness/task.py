"""The Task record carried through the serving miss path.

PR 5's scheduler queued bare points in a FIFO ``deque``; nothing in the
pipeline could say *whose* work a queue slot was, how urgent it was, or
when it stopped being worth doing. This module makes the unit of
scheduling a first-class :class:`Task`: the sweep point plus its masked
cache key, an integer **priority class**, an absolute **deadline**, and
:class:`Provenance` (which client asked, under which request id, via
which path). ``harness/queue.py`` orders its heap by
``(priority, seq)`` — strict FIFO within a class — and sheds tasks whose
deadline has already passed instead of simulating them.

Priority classes are small ints, lower = more urgent. The named classes
cover the serving tier's needs (interactive ``high``, default
``normal``, background/prefetch ``low``), but any non-negative int is
accepted so future tiers can slot between them.

>>> from repro.harness.task import parse_priority, priority_label
>>> parse_priority("high"), parse_priority("2"), parse_priority(None)
(0, 2, 1)
>>> priority_label(0), priority_label(7)
('high', '7')
"""

import threading
import time

from ..errors import PriorityError

__all__ = [
    "METRIC_PRIORITY_OTHER",
    "PRIORITY_HIGH", "PRIORITY_NORMAL", "PRIORITY_LOW", "PRIORITY_NAMES",
    "Provenance", "Task", "metric_priority_label", "parse_priority",
    "priority_label",
]

PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: name -> class, the vocabulary accepted on the wire
PRIORITY_NAMES = {
    "high": PRIORITY_HIGH,
    "normal": PRIORITY_NORMAL,
    "low": PRIORITY_LOW,
}

_PRIORITY_LABELS = {value: name for name, value in PRIORITY_NAMES.items()}


def parse_priority(raw):
    """Normalize a wire-level priority (name, int, int-string, or None).

    Class names are case-insensitive (``"High"``, ``"LOW"``, and
    ``"normal"`` all resolve). Returns :data:`PRIORITY_NORMAL` for
    ``None`` (an absent header/body field). Raises
    :class:`~repro.errors.PriorityError` (a ``ReproError`` that is also
    a ``ValueError``) on anything that is not a named class or a
    non-negative integer — including empty and whitespace-only strings,
    which are a present-but-garbled value, not an omitted one.

    >>> parse_priority("High"), parse_priority("LOW")
    (0, 2)
    >>> parse_priority("")
    Traceback (most recent call last):
      ...
    repro.errors.PriorityError: invalid priority '' (empty; expected high|low|normal or a non-negative int)
    """
    if raw is None:
        return PRIORITY_NORMAL
    if isinstance(raw, bool):
        raise PriorityError("invalid priority: %r" % (raw,))
    if isinstance(raw, int):
        value = raw
    else:
        text = str(raw).strip().lower()
        if not text:
            raise PriorityError(
                "invalid priority %r (empty; expected %s or a "
                "non-negative int)"
                % (raw, "|".join(sorted(PRIORITY_NAMES))))
        if text in PRIORITY_NAMES:
            return PRIORITY_NAMES[text]
        try:
            value = int(text)
        except ValueError:
            raise PriorityError(
                "invalid priority %r (expected %s or a non-negative int)"
                % (raw, "|".join(sorted(PRIORITY_NAMES))))
    if value < 0:
        raise PriorityError("invalid priority %r (must be >= 0)" % (raw,))
    return value


def priority_label(priority):
    """Human-facing label for a priority class (``high|normal|low`` or
    the bare int for unnamed classes). For metric labels use
    :func:`metric_priority_label` instead — this one's vocabulary is
    unbounded."""
    return _PRIORITY_LABELS.get(priority, str(priority))


#: Metric label bucketing every unnamed priority class.
METRIC_PRIORITY_OTHER = "other"


def metric_priority_label(priority):
    """Bounded-cardinality label for metric series (``high|normal|low``
    or ``other``). Priority ints arrive from client-supplied headers, so
    labeling metrics with :func:`priority_label` would let external
    callers mint unbounded label values and grow the metrics registry
    without bound; every unnamed class buckets under
    :data:`METRIC_PRIORITY_OTHER` instead.

    >>> metric_priority_label(0), metric_priority_label(999999)
    ('high', 'other')
    """
    return _PRIORITY_LABELS.get(priority, METRIC_PRIORITY_OTHER)


class Provenance:
    """Who asked for a task and through which path.

    *source* is one of ``point`` (GET /point miss), ``sweep``
    (POST /sweep miss), or ``prefetch`` (background warmers, reserved
    for the fleet-cache tier). Free-form *client* / *request_id* strings
    come from the HTTP layer and are carried for logs, quotas, and
    future per-client accounting — the scheduler never keys on them.
    """

    __slots__ = ("client", "request_id", "source")

    def __init__(self, client=None, request_id=None, source="point"):
        self.client = client
        self.request_id = request_id
        self.source = source

    def to_dict(self):
        return {"client": self.client,
                "request_id": self.request_id,
                "source": self.source}

    def __repr__(self):
        return ("Provenance(client=%r, request_id=%r, source=%r)"
                % (self.client, self.request_id, self.source))


class Task:
    """One schedulable miss: point + key + priority + deadline + origin.

    Multiple requests may hold the same task (dedup joins); each calls
    :meth:`RequestScheduler.result` to block on the shared ``event``.
    *deadline* is absolute ``time.monotonic()`` seconds (or None); a
    join adopts the tightest deadline and highest priority of its
    joiners. *seq* is assigned by the scheduler and never changes — it
    is the FIFO tiebreaker inside a priority class, so a task upgraded
    to a higher class still sorts by its original arrival order there.
    """

    __slots__ = ("key", "point", "priority", "deadline", "provenance",
                 "seq", "entry", "started", "event", "result", "joins",
                 "submitted_at")

    def __init__(self, key, point, priority=PRIORITY_NORMAL, deadline=None,
                 provenance=None, seq=0):
        self.key = key
        self.point = point
        self.priority = priority
        self.deadline = deadline
        self.provenance = provenance if provenance is not None \
            else Provenance()
        self.seq = seq
        self.entry = None           # live heap entry, owned by the scheduler
        self.started = False
        self.event = threading.Event()
        self.result = None
        self.joins = 0
        self.submitted_at = time.perf_counter()

    def expired(self, now=None):
        """True when the deadline (if any) has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def __repr__(self):
        return ("Task(key=%s…, priority=%s, deadline=%r, source=%s)"
                % (self.key[:8], priority_label(self.priority),
                   self.deadline, self.provenance.source))
