"""Discovery of dynamic launch sites and the parent→child kernel relation."""

from dataclasses import dataclass

from ..errors import AnalysisError
from ..minicuda import ast
from ..minicuda.visitor import find_all


@dataclass
class LaunchSite:
    """One ``child<<<g, b>>>(args)`` occurrence inside a device-side parent."""

    parent: ast.FunctionDef
    launch: ast.Launch

    @property
    def child_name(self):
        return self.launch.kernel


def find_launch_sites(program, include_host=False):
    """All launch sites in the program.

    By default only *dynamic* launches are returned — launches written inside
    ``__global__`` or ``__device__`` functions. Host functions launch from the
    CPU and are not subject to the paper's optimizations.
    """
    sites = []
    for func in program.functions():
        if func.body is None:
            continue
        device_side = func.is_kernel or func.is_device
        if not device_side and not include_host:
            continue
        for launch in find_all(func, ast.Launch):
            sites.append(LaunchSite(func, launch))
    return sites


def child_kernels(program):
    """Names of kernels that are launched dynamically at least once."""
    return {site.child_name for site in find_launch_sites(program)}


def resolve_child(program, site):
    """The FunctionDef of the kernel a launch site targets."""
    try:
        child = program.function(site.child_name)
    except KeyError:
        raise AnalysisError(
            "launch of undefined kernel %r in %r"
            % (site.child_name, site.parent.name))
    if not child.is_kernel:
        raise AnalysisError(
            "launch target %r is not __global__" % site.child_name)
    return child


def parent_child_pairs(program):
    """List of (parent FunctionDef, child FunctionDef, Launch) triples."""
    pairs = []
    for site in find_launch_sites(program):
        pairs.append((site.parent, resolve_child(program, site), site.launch))
    return pairs


def is_recursive(program, kernel_name):
    """True if the kernel (transitively) launches itself.

    KLAP's *promotion* optimization targets this pattern; the paper's three
    optimizations do not apply to it (Sec. IX), so the pipeline skips
    recursive launch sites.
    """
    graph = {}
    for site in find_launch_sites(program):
        graph.setdefault(site.parent.name, set()).add(site.child_name)
    seen = set()
    stack = [kernel_name]
    while stack:
        name = stack.pop()
        for child in graph.get(name, ()):
            if child == kernel_name:
                return True
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return False
