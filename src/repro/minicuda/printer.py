"""Pretty-printer: miniCUDA AST back to compilable-looking source text.

The printer emits minimal parentheses based on C operator precedence, so a
parse → print → parse round trip yields a structurally identical AST (this
invariant is enforced by property-based tests).
"""

from . import ast

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_LEVEL = -1
_TERNARY_LEVEL = 0
_UNARY_LEVEL = 11
_POSTFIX_LEVEL = 12


class Printer:
    """Stateful printer; use :func:`print_source` / :func:`print_expr`."""

    def __init__(self, indent="    "):
        self.indent = indent

    # -- expressions -------------------------------------------------------

    def expr(self, node, parent_level=_ASSIGN_LEVEL):
        text, level = self._expr(node)
        if level < parent_level:
            return "(" + text + ")"
        return text

    def _expr(self, node):
        if isinstance(node, ast.IntLit):
            return node.text or str(node.value), _POSTFIX_LEVEL
        if isinstance(node, ast.FloatLit):
            return node.text or repr(node.value), _POSTFIX_LEVEL
        if isinstance(node, ast.BoolLit):
            return "true" if node.value else "false", _POSTFIX_LEVEL
        if isinstance(node, ast.StrLit):
            return '"%s"' % node.value, _POSTFIX_LEVEL
        if isinstance(node, ast.Ident):
            return node.name, _POSTFIX_LEVEL
        if isinstance(node, ast.Member):
            op = "->" if node.arrow else "."
            return self.expr(node.obj, _POSTFIX_LEVEL) + op + node.attr, \
                _POSTFIX_LEVEL
        if isinstance(node, ast.Index):
            return "%s[%s]" % (self.expr(node.base, _POSTFIX_LEVEL),
                               self.expr(node.index)), _POSTFIX_LEVEL
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a) for a in node.args)
            return "%s(%s)" % (self.expr(node.func, _POSTFIX_LEVEL), args), \
                _POSTFIX_LEVEL
        if isinstance(node, ast.Launch):
            config = [self.expr(node.grid), self.expr(node.block)]
            if node.shmem is not None:
                config.append(self.expr(node.shmem))
            if node.stream is not None:
                config.append(self.expr(node.stream))
            args = ", ".join(self.expr(a) for a in node.args)
            return "%s<<<%s>>>(%s)" % (node.kernel, ", ".join(config), args), \
                _POSTFIX_LEVEL
        if isinstance(node, ast.Unary):
            if node.postfix:
                return self.expr(node.operand, _POSTFIX_LEVEL) + node.op, \
                    _POSTFIX_LEVEL
            operand = self.expr(node.operand, _UNARY_LEVEL)
            # Avoid gluing "- -x" into "--x".
            if node.op in ("-", "+", "&", "*") and operand.startswith(node.op):
                operand = " " + operand
            return node.op + operand, _UNARY_LEVEL
        if isinstance(node, ast.Cast):
            return "(%s)%s" % (self.type_text(node.type),
                               self.expr(node.operand, _UNARY_LEVEL)), \
                _UNARY_LEVEL
        if isinstance(node, ast.Binary):
            level = _PRECEDENCE[node.op]
            lhs = self.expr(node.lhs, level)
            rhs = self.expr(node.rhs, level + 1)
            return "%s %s %s" % (lhs, node.op, rhs), level
        if isinstance(node, ast.Ternary):
            return "%s ? %s : %s" % (
                self.expr(node.cond, _TERNARY_LEVEL + 1),
                self.expr(node.then),
                self.expr(node.orelse)), _TERNARY_LEVEL
        if isinstance(node, ast.Assign):
            return "%s %s %s" % (
                self.expr(node.target, _UNARY_LEVEL),
                node.op,
                self.expr(node.value, _ASSIGN_LEVEL)), _ASSIGN_LEVEL
        raise TypeError("cannot print expression node %r" % type(node).__name__)

    # -- types ----------------------------------------------------------------

    def type_text(self, node):
        text = "const " + node.name if node.const else node.name
        if node.pointers:
            text += " " + "*" * node.pointers
        return text

    # -- statements -------------------------------------------------------

    def stmt(self, node, depth=0):
        pad = self.indent * depth
        if isinstance(node, ast.Compound):
            lines = [pad + "{"]
            for child in node.stmts:
                lines.append(self.stmt(child, depth + 1))
            lines.append(pad + "}")
            return "\n".join(lines)
        if isinstance(node, ast.ExprStmt):
            return pad + self.expr(node.expr) + ";"
        if isinstance(node, ast.DeclStmt):
            return pad + self.decl_text(node) + ";"
        if isinstance(node, ast.If):
            text = pad + "if (%s)" % self.expr(node.cond)
            text += "\n" + self._nested(node.then, depth)
            if node.orelse is not None:
                text += "\n" + pad + "else"
                text += "\n" + self._nested(node.orelse, depth)
            return text
        if isinstance(node, ast.For):
            init = ""
            if isinstance(node.init, ast.DeclStmt):
                init = self.decl_text(node.init)
            elif isinstance(node.init, ast.ExprStmt):
                init = self.expr(node.init.expr)
            cond = self.expr(node.cond) if node.cond is not None else ""
            step = self.expr(node.step) if node.step is not None else ""
            head = pad + "for (%s; %s; %s)" % (init, cond, step)
            return head + "\n" + self._nested(node.body, depth)
        if isinstance(node, ast.While):
            return (pad + "while (%s)\n" % self.expr(node.cond)
                    + self._nested(node.body, depth))
        if isinstance(node, ast.DoWhile):
            return (pad + "do\n" + self._nested(node.body, depth)
                    + "\n" + pad + "while (%s);" % self.expr(node.cond))
        if isinstance(node, ast.Return):
            if node.value is None:
                return pad + "return;"
            return pad + "return %s;" % self.expr(node.value)
        if isinstance(node, ast.Break):
            return pad + "break;"
        if isinstance(node, ast.Continue):
            return pad + "continue;"
        raise TypeError("cannot print statement node %r" % type(node).__name__)

    def _nested(self, node, depth):
        if isinstance(node, ast.Compound):
            return self.stmt(node, depth)
        return self.stmt(node, depth + 1)

    def decl_text(self, node):
        parts = []
        first = node.decls[0]
        prefix = " ".join(first.qualifiers)
        for decl in node.decls:
            text = "*" * decl.type.pointers + decl.name
            if decl.array_size is not None:
                text += "[%s]" % self.expr(decl.array_size)
            if decl.init is not None:
                text += " = " + self.expr(decl.init)
            parts.append(text)
        qual = (prefix + " ") if prefix else ""
        const = "const " if first.type.const else ""
        return qual + const + first.type.name + " " + ", ".join(parts)

    # -- declarations ------------------------------------------------------

    def function(self, node):
        qual = " ".join(node.qualifiers)
        params = ", ".join(
            "%s %s" % (self.type_text(p.type), p.name) for p in node.params)
        head = "%s%s %s(%s)" % (
            (qual + " ") if qual else "", self.type_text(node.ret_type),
            node.name, params)
        if node.body is None:
            return head + ";"
        return head + " " + self.stmt(node.body).lstrip()

    def program(self, node):
        chunks = []
        for decl in node.decls:
            if isinstance(decl, ast.FunctionDef):
                chunks.append(self.function(decl))
            elif isinstance(decl, ast.DeclStmt):
                chunks.append(self.decl_text(decl) + ";")
            else:
                raise TypeError(
                    "cannot print top-level node %r" % type(decl).__name__)
        return "\n\n".join(chunks) + "\n"


def print_source(program, indent="    "):
    """Render a full program AST to source text."""
    return Printer(indent).program(program)


def print_expr(expr):
    """Render a single expression AST to source text."""
    return Printer().expr(expr)


def print_stmt(stmt, depth=0):
    """Render a single statement AST to source text."""
    return Printer().stmt(stmt, depth)
