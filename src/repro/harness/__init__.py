"""Experiment harness: variants, runner, tuning, sweeps, and figures."""

from .autotune import (QuickTuneResult, hill_climb, predict_threshold,
                       quick_tune)
from .cache import (CACHE_VERSION, CacheInfo, FigureArtifactCache,
                    PruneReport, ResultCache, decode_result, encode_result,
                    figure_key, point_key)
from .figures import (BreakdownFigure, FixedThresholdResult, SpeedupFigure,
                      SweepFigure, Table1Result, figure9, figure10, figure11,
                      figure12, fixed_threshold_study, table1)
from .runner import (RunResult, child_launch_sizes, geomean, outputs_match,
                     run_variant)
from .sweep import (BACKENDS, Backend, PointFailure, SweepExecutor,
                    SweepPoint, SweepPointError, SweepStats, make_backend,
                    run_sweep, sweep_grid)
from .index import CacheIndex
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      REGISTRY)
from .queue import MissTask, RequestScheduler
from .quota import (ApiKey, ApiKeyAuth, ClientQuota, QuotaLease,
                    QuotaManager, load_api_keys)
from .task import (PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL,
                   Provenance, Task, parse_priority, priority_label)
from .remote import (RemoteBackend, RemoteError, RemoteHandshakeError,
                     RemoteProtocolError, RemoteWorkerError, WorkerServer,
                     parse_workers, worker_ping, worker_stop)
from .serve import ENDPOINTS, QueryService, ServeServer
from .tuning import (FULL_THRESHOLDS, TuneOutcome, threshold_candidates,
                     tune)
from .variants import (ALL_GRANULARITIES, KLAP_GRANULARITIES, VARIANT_LABELS,
                       TuningParams, mask_params, uses, variant_to_run)

__all__ = [
    "QuickTuneResult", "hill_climb", "predict_threshold", "quick_tune",
    "CACHE_VERSION", "CacheInfo", "FigureArtifactCache", "PruneReport",
    "ResultCache", "decode_result", "encode_result", "figure_key",
    "point_key",
    "BACKENDS", "Backend", "PointFailure", "SweepExecutor", "SweepPoint",
    "SweepPointError", "SweepStats", "make_backend", "run_sweep",
    "sweep_grid",
    "RemoteBackend", "RemoteError", "RemoteHandshakeError",
    "RemoteProtocolError", "RemoteWorkerError", "WorkerServer",
    "parse_workers", "worker_ping", "worker_stop",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "CacheIndex",
    "MissTask", "RequestScheduler",
    "ApiKey", "ApiKeyAuth", "ClientQuota", "QuotaLease", "QuotaManager",
    "load_api_keys",
    "PRIORITY_HIGH", "PRIORITY_LOW", "PRIORITY_NORMAL", "Provenance",
    "Task", "parse_priority", "priority_label",
    "ENDPOINTS", "QueryService", "ServeServer",
    "BreakdownFigure", "FixedThresholdResult", "SpeedupFigure", "SweepFigure",
    "Table1Result", "figure9", "figure10", "figure11", "figure12",
    "fixed_threshold_study", "table1",
    "RunResult", "child_launch_sizes", "geomean", "outputs_match",
    "run_variant",
    "FULL_THRESHOLDS", "TuneOutcome", "threshold_candidates", "tune",
    "ALL_GRANULARITIES", "KLAP_GRANULARITIES", "VARIANT_LABELS",
    "TuningParams", "mask_params", "uses", "variant_to_run",
]
