"""Compiled-kernel cache tests (repro.engine.cache).

Covers the memoization contract (same source+config+cost model → one
compile), instantiation isolation (cached artifacts never share mutable
state), key sensitivity (source, transform config, cost model, and the
shared version token all discriminate), the CACHE_VERSION invalidation
contract with the on-disk result cache, LRU bounding, and the metrics
counter the serve endpoint exports.
"""

import threading

import pytest

from repro.engine import (CompiledKernelCache, KERNEL_CACHE,
                          codegen_cache_key, compiled_module)
from repro.harness import ResultCache, SweepExecutor, TuningParams, point_key
from repro.harness import cache as result_cache_mod
from repro.harness.metrics import REGISTRY
from repro.harness.sweep import SweepPoint
from repro.sim.config import DeviceConfig
from repro.sim.costmodel import CostModel
from repro.transforms import OptConfig
from tests.conftest import BFS_LIKE_SRC

SIMPLE_SRC = """
__global__ void scale(int *data, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        data[tid] = data[tid] * 2;
    }
}
"""


class TestMemoization:
    def test_hit_returns_same_artifact(self):
        cache = CompiledKernelCache()
        first = cache.get_or_compile(SIMPLE_SRC)
        second = cache.get_or_compile(SIMPLE_SRC)
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1,
                                 "capacity": cache.capacity}

    def test_distinct_sources_do_not_collide(self):
        cache = CompiledKernelCache()
        a = cache.get_or_compile(SIMPLE_SRC)
        b = cache.get_or_compile(BFS_LIKE_SRC)
        assert a is not b
        assert len(cache) == 2

    def test_transform_config_discriminates(self):
        cache = CompiledKernelCache()
        plain = cache.get_or_compile(BFS_LIKE_SRC)
        thresholded = cache.get_or_compile(BFS_LIKE_SRC,
                                           OptConfig(threshold=64))
        aggregated = cache.get_or_compile(BFS_LIKE_SRC,
                                          OptConfig(aggregate="block"))
        assert plain is not thresholded
        assert thresholded is not aggregated
        assert cache.stats()["misses"] == 3
        # ... and the transform actually ran: the artifact carries meta.
        assert thresholded.meta is not None
        assert plain.meta is None

    def test_cost_model_discriminates(self):
        cache = CompiledKernelCache()
        default = cache.get_or_compile(SIMPLE_SRC)
        heavy = cache.get_or_compile(SIMPLE_SRC,
                                     cost_model=CostModel(mem=100))
        assert default is not heavy
        assert cache.stats()["misses"] == 2

    def test_modules_from_one_artifact_share_no_state(self):
        cache = CompiledKernelCache()
        m1 = cache.module(SIMPLE_SRC)
        m2 = cache.module(SIMPLE_SRC)
        assert m1.artifact is m2.artifact
        assert m1.namespace is not m2.namespace
        m1.namespace["_parity_probe"] = object()
        assert "_parity_probe" not in m2.namespace

    def test_lru_bound_evicts_oldest(self):
        cache = CompiledKernelCache(capacity=2)
        sources = [SIMPLE_SRC.replace("* 2", "* %d" % k) for k in (3, 5, 7)]
        for src in sources:
            cache.get_or_compile(src)
        assert len(cache) == 2
        # Oldest (k=3) was evicted: recompiling it is a miss.
        misses = cache.stats()["misses"]
        cache.get_or_compile(sources[0])
        assert cache.stats()["misses"] == misses + 1
        # Newest (k=7) survived.
        hits = cache.stats()["hits"]
        cache.get_or_compile(sources[2])
        assert cache.stats()["hits"] == hits + 1

    def test_thread_safety_single_entry(self):
        cache = CompiledKernelCache()
        artifacts = []

        def worker():
            artifacts.append(cache.get_or_compile(BFS_LIKE_SRC))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 1
        assert len({id(a) for a in artifacts}) == 1


class TestVersionToken:
    def test_key_embeds_config_and_versions(self, monkeypatch):
        config = OptConfig(threshold=32)
        key = codegen_cache_key(SIMPLE_SRC, config)
        assert config in key
        from repro import __version__
        assert (__version__, result_cache_mod.CACHE_VERSION) in key
        monkeypatch.setattr(result_cache_mod, "CACHE_VERSION",
                            result_cache_mod.CACHE_VERSION + 1)
        assert codegen_cache_key(SIMPLE_SRC, config) != key

    def test_cache_version_bump_invalidates_both_caches(self, tmp_path,
                                                        monkeypatch):
        """One CACHE_VERSION bump must drop result-cache entries AND
        compiled-kernel entries together (the invalidation contract)."""
        point = SweepPoint("BFS", "KRON", "CDP+T", TuningParams(threshold=16),
                           DeviceConfig(), 0.05)
        disk = ResultCache(str(tmp_path / "cache"))
        kernels = CompiledKernelCache()
        monkeypatch.setattr("repro.engine.cache.KERNEL_CACHE", kernels)
        old_key = point_key(point)

        SweepExecutor(cache=disk).run([point])
        assert disk.get(point) is not None
        compiles_before = kernels.stats()["misses"]
        assert compiles_before > 0

        monkeypatch.setattr(result_cache_mod, "CACHE_VERSION",
                            result_cache_mod.CACHE_VERSION + 1)
        # Result cache: the point now maps to a different key — stale
        # entries are unreachable.
        assert point_key(point) != old_key
        assert disk.get(point) is None
        # Compiled-kernel cache: same sources must recompile (miss), not
        # serve pre-bump artifacts.
        SweepExecutor(cache=disk).run([point])
        assert kernels.stats()["misses"] > compiles_before


class TestProcessWideWiring:
    def test_compiled_module_routes_through_global_cache(self):
        before = KERNEL_CACHE.stats()
        compiled_module(SIMPLE_SRC)
        compiled_module(SIMPLE_SRC)
        after = KERNEL_CACHE.stats()
        assert after["misses"] >= before["misses"]
        assert after["hits"] > before["hits"]

    def test_lookup_counter_exported_to_registry(self):
        compiled_module(SIMPLE_SRC)     # ensures at least one lookup
        assert "repro_codegen_cache_lookups_total" in REGISTRY.names()
        rendered = REGISTRY.render()
        assert 'repro_codegen_cache_lookups_total{outcome="hit"}' in rendered \
            or 'repro_codegen_cache_lookups_total{outcome="miss"}' in rendered

    def test_run_variant_cold_then_warm(self, monkeypatch):
        """The harness path (run_variant → bench.run → module_for) hits
        the codegen cache on the second identical point."""
        from repro.benchmarks import get_benchmark
        from repro.harness import run_variant

        kernels = CompiledKernelCache()
        monkeypatch.setattr("repro.engine.cache.KERNEL_CACHE", kernels)
        bench = get_benchmark("BFS")
        data = bench.build_dataset("KRON", 0.05)
        run_variant(bench, data, "CDP+T", TuningParams(threshold=16))
        stats_cold = kernels.stats()
        assert stats_cold["misses"] > 0
        run_variant(bench, data, "CDP+T", TuningParams(threshold=16))
        stats_warm = kernels.stats()
        assert stats_warm["misses"] == stats_cold["misses"]
        assert stats_warm["hits"] > stats_cold["hits"]
