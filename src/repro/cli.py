"""Command-line interface.

Mirrors the paper's artifact workflow (Appendix E): transform CUDA sources,
inspect the analyses, run benchmark variants, and regenerate the evaluation
figures.

Usage::

    python -m repro transform kernel.cu --threshold 128 --coarsen 8 \\
        --aggregate multiblock -o kernel_opt.cu
    python -m repro analyze kernel.cu
    python -m repro bench BFS KRON --variant CDP+T+C+A --threshold 32
    python -m repro figure fig9 --scale 0.25
"""

import argparse
import json
import sys

from .analysis import analyze_program, find_launch_sites, find_thread_count
from .benchmarks import get_benchmark
from .harness import (TuningParams, figure9, figure10, figure11, figure12,
                      fixed_threshold_study, run_variant, table1)
from .minicuda import parse
from .minicuda.printer import print_expr
from .transforms import GRANULARITIES, OptConfig, transform
from .transforms.base import meta_to_dict


def _add_opt_flags(parser):
    parser.add_argument("--threshold", type=int, default=None,
                        help="launch threshold (enables thresholding)")
    parser.add_argument("--coarsen", type=int, default=None,
                        help="coarsening factor (enables coarsening)")
    parser.add_argument("--aggregate", choices=GRANULARITIES, default=None,
                        help="aggregation granularity (enables aggregation)")
    parser.add_argument("--group-blocks", type=int, default=8,
                        help="blocks per group for multi-block aggregation")
    parser.add_argument("--agg-threshold", type=int, default=None,
                        help="aggregation threshold (warp/block only)")
    parser.add_argument("--promote", action="store_true",
                        help="apply KLAP promotion to single-block "
                             "self-recursive kernels first")


def _config_from(args):
    return OptConfig(threshold=args.threshold,
                     coarsen_factor=args.coarsen,
                     aggregate=args.aggregate,
                     group_blocks=args.group_blocks,
                     agg_threshold=args.agg_threshold)


def cmd_transform(args):
    with open(args.source) as handle:
        source = handle.read()
    if getattr(args, "promote", False):
        from .transforms import PromotionPass
        program = parse(source)
        promo_meta = PromotionPass().run(program)
        result = transform(program, _config_from(args))
        result.meta.merge(promo_meta)
    else:
        result = transform(source, _config_from(args))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.source)
        print("wrote %s" % args.output)
    else:
        print(result.source)
    if args.meta:
        with open(args.meta, "w") as handle:
            json.dump(meta_to_dict(result.meta), handle, indent=2)
        print("wrote %s" % args.meta)
    return 0


def cmd_analyze(args):
    with open(args.source) as handle:
        program = parse(handle.read())
    props = analyze_program(program)
    print("kernels:")
    for name, info in props.items():
        flags = []
        if info.uses_barrier:
            flags.append("barrier")
        if info.uses_shared_memory:
            flags.append("shared-memory")
        if info.uses_warp_primitives:
            flags.append("warp-primitives")
        print("  %-24s thresholdable=%-5s dims=%s %s" % (
            name, info.thresholdable,
            "".join(sorted(info.dims_used)) or "-",
            ("(" + ", ".join(flags) + ")") if flags else ""))
    sites = find_launch_sites(program)
    print("dynamic launch sites: %d" % len(sites))
    for site in sites:
        analysis = find_thread_count(site.launch.grid)
        count = (print_expr(analysis.count_expr)
                 if analysis.count_expr is not None else "<not found>")
        print("  %s -> %s   desired threads: %s (exact=%s)" % (
            site.parent.name, site.child_name, count, analysis.exact))
    return 0


def cmd_bench(args):
    bench = get_benchmark(args.benchmark)
    data = bench.build_dataset(args.dataset, args.scale)
    params = TuningParams(threshold=args.threshold,
                          coarsen_factor=args.coarsen,
                          granularity=args.aggregate,
                          group_blocks=args.group_blocks)
    result = run_variant(bench, data, args.variant, params)
    print("%s on %s (%s, params %s)" % (args.variant, bench.name,
                                        args.dataset, params.describe()))
    print("  simulated cycles : %d" % result.total_time)
    print("  dynamic launches : %d" % result.device_launches)
    print("  queue wait cycles: %d" % result.launch_queue_wait)
    total = max(sum(result.breakdown.values()), 1)
    for component, value in result.breakdown.items():
        print("  %-7s %10d cycles (%5.1f%%)"
              % (component, value, 100.0 * value / total))
    return 0


_FIGURES = {
    "table1": lambda args: table1(args.scale),
    "fig9": lambda args: figure9(scale=args.scale, strategy=args.strategy),
    "fig10": lambda args: figure10(scale=args.scale, strategy=args.strategy),
    "fig11": lambda args: figure11(args.benchmark or "BFS",
                                   args.dataset or "KRON",
                                   scale=args.scale),
    "fig12": lambda args: figure12(scale=args.scale, strategy=args.strategy),
    "fixed-threshold": lambda args: fixed_threshold_study(
        scale=args.scale, strategy=args.strategy),
}


def cmd_figure(args):
    result = _FIGURES[args.name](args)
    text = result.format()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print("wrote %s" % args.output)
    else:
        print(text)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CGO 2022 dynamic-parallelism compiler framework "
                    "(Python reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_transform = sub.add_parser(
        "transform", help="apply T/C/A passes to a miniCUDA source file")
    p_transform.add_argument("source")
    p_transform.add_argument("-o", "--output", default=None)
    p_transform.add_argument("--meta", default=None,
                             help="write runtime metadata JSON here")
    _add_opt_flags(p_transform)
    p_transform.set_defaults(func=cmd_transform)

    p_analyze = sub.add_parser(
        "analyze", help="report launch sites and kernel legality")
    p_analyze.add_argument("source")
    p_analyze.set_defaults(func=cmd_analyze)

    p_bench = sub.add_parser("bench", help="run one benchmark variant")
    p_bench.add_argument("benchmark")
    p_bench.add_argument("dataset")
    p_bench.add_argument("--variant", default="CDP+T+C+A")
    p_bench.add_argument("--scale", type=float, default=0.25)
    _add_opt_flags(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_figure = sub.add_parser(
        "figure", help="regenerate a table/figure of the evaluation")
    p_figure.add_argument("name", choices=sorted(_FIGURES))
    p_figure.add_argument("--scale", type=float, default=0.25)
    p_figure.add_argument("--strategy", choices=("guided", "exhaustive"),
                          default="guided")
    p_figure.add_argument("--benchmark", default=None,
                          help="fig11 panel benchmark")
    p_figure.add_argument("--dataset", default=None,
                          help="fig11 panel dataset")
    p_figure.add_argument("-o", "--output", default=None)
    p_figure.set_defaults(func=cmd_figure)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
