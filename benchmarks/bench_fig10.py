"""Figure 10 — execution-time breakdown of KLAP vs CDP+T+A vs CDP+T+C+A,
normalized to the KLAP total (Sec. VIII-B)."""

from repro.harness import figure10

from conftest import save

PAIRS = (("BFS", "KRON"), ("BFS", "CNR"), ("SSSP", "KRON"),
         ("MSTF", "KRON"), ("SP", "RAND-3"), ("BT", "T0032-C16"))


def test_figure10(benchmark, repro_scale, out_dir, sweep_executor):
    fig = benchmark.pedantic(
        figure10, kwargs={"scale": repro_scale, "pairs": PAIRS,
                          "executor": sweep_executor},
        rounds=1, iterations=1)
    text = fig.format()
    save(out_dir, "figure10.txt", text)
    print()
    print(text)

    for pair, by_label in fig.rows.items():
        klap = by_label["KLAP (CDP+A)"]
        t_a = by_label["CDP+T+A"]
        t_c_a = by_label["CDP+T+C+A"]
        # Observation 1: thresholding increases parent work, decreases child.
        assert t_a["parent"] >= klap["parent"], pair
        assert t_a["child"] <= klap["child"] + 0.05, pair
        # Observation 2: thresholding decreases agg/launch/disagg overheads.
        assert t_a["agg"] <= klap["agg"] + 1e-9, pair
        assert t_a["disagg"] <= klap["disagg"], pair
        # Observation 3+4: coarsening decreases disaggregation further.
        assert t_c_a["disagg"] <= t_a["disagg"] * 1.1, pair
