"""AST infrastructure tests: clone, walk, regions, visitors, builders."""

from repro.minicuda import ast, builders as b, parse, parse_expr, parse_stmt
from repro.minicuda.ast import region_of, set_region
from repro.minicuda.printer import print_expr, print_stmt
from repro.minicuda.visitor import Transformer, Visitor, any_match, find_all


class TestNodeBasics:
    def test_clone_is_deep(self):
        expr = parse_expr("a + b[i]")
        copy = expr.clone()
        copy.rhs.index.name = "j"
        assert expr.rhs.index.name == "i"

    def test_clone_preserves_region_tags(self):
        stmt = parse_stmt("x = 1;")
        set_region(stmt, "agg")
        assert region_of(stmt.clone()) == "agg"

    def test_walk_preorder(self):
        expr = parse_expr("a + b * c")
        kinds = [type(n).__name__ for n in expr.walk()]
        assert kinds == ["Binary", "Ident", "Binary", "Ident", "Ident"]

    def test_children_flatten_lists(self):
        stmt = parse_stmt("{ x = 1; y = 2; }")
        assert len(list(stmt.children())) == 2

    def test_set_region_recursive(self):
        stmt = parse_stmt("if (a) { x = y + 1; }")
        set_region(stmt, "disagg")
        tagged = [n for n in stmt.walk() if region_of(n) == "disagg"]
        assert len(tagged) > 3

    def test_region_default_none(self):
        assert region_of(parse_stmt("x = 1;")) is None


class TestVisitor:
    def test_dispatch_by_class(self):
        class CountIdents(Visitor):
            def __init__(self):
                self.count = 0

            def visit_Ident(self, node):
                self.count += 1

        visitor = CountIdents()
        visitor.visit(parse_expr("a + b * a"))
        assert visitor.count == 3

    def test_generic_visit_recurses(self):
        class Names(Visitor):
            def __init__(self):
                self.names = []

            def visit_Ident(self, node):
                self.names.append(node.name)

        visitor = Names()
        visitor.visit(parse_stmt("if (x) { y = z[w]; }"))
        assert visitor.names == ["x", "y", "z", "w"]

    def test_find_all_and_any_match(self):
        program = parse("__global__ void k(int *p) { p[0] = 1 + 2; }")
        assert len(find_all(program, ast.IntLit)) == 3
        assert any_match(program, lambda n: isinstance(n, ast.Index))


class TestTransformer:
    def test_replace_expression(self):
        class SwapIdent(Transformer):
            def visit_Ident(self, node):
                return ast.Ident("q") if node.name == "p" else node

        stmt = SwapIdent().visit(parse_stmt("p = p + r;"))
        assert print_stmt(stmt) == "q = q + r;"

    def test_statement_splice(self):
        class Duplicate(Transformer):
            def visit_ExprStmt(self, node):
                return [node, node.clone()]

        block = Duplicate().visit(parse_stmt("{ x = 1; }"))
        assert len(block.stmts) == 2

    def test_statement_delete(self):
        class DropAssigns(Transformer):
            def visit_ExprStmt(self, node):
                if isinstance(node.expr, ast.Assign):
                    return None
                return node

        block = DropAssigns().visit(parse_stmt("{ x = 1; f(x); }"))
        assert len(block.stmts) == 1

    def test_required_child_replaced_with_empty_block(self):
        class DropAll(Transformer):
            def visit_ExprStmt(self, node):
                return None

        loop = DropAll().visit(parse_stmt("while (x) y = 1;"))
        assert isinstance(loop.body, ast.Compound)
        assert loop.body.stmts == []


class TestBuilders:
    def test_ceil_div_shape(self):
        expr = b.ceil_div("n", 32)
        assert print_expr(expr) == "(n + 32 - 1) / 32"

    def test_literals(self):
        assert print_expr(b.lit(5)) == "5"
        assert print_expr(b.lit(True)) == "true"
        assert print_expr(b.lit(2.5)) == "2.5"

    def test_if_stmt_with_lists(self):
        stmt = b.if_stmt(b.lt("a", 3), [b.expr_stmt(b.assign("x", 1))],
                         [b.expr_stmt(b.assign("x", 2))])
        text = print_stmt(stmt)
        assert "if (a < 3)" in text and "else" in text

    def test_for_decl_range(self):
        stmt = b.for_decl_range("i", 0, "n", [b.expr_stmt(b.assign("s", "i",
                                                                   op="+="))])
        assert print_stmt(stmt).startswith(
            "for (int i = 0; i < n; i += 1)")

    def test_block_flattens_and_skips_none(self):
        block = b.block(None, [b.expr_stmt(b.lit(1)), None],
                        b.expr_stmt(b.lit(2)))
        assert len(block.stmts) == 2

    def test_call_and_address_of(self):
        expr = b.call("atomicAdd", b.address_of(b.index("c", 0)), 1)
        assert print_expr(expr) == "atomicAdd(&c[0], 1)"

    def test_member_chain(self):
        assert print_expr(b.member("g", "x")) == "g.x"


class TestProgramHelpers:
    def test_kernels_and_functions(self, bfs_like_source):
        program = parse(bfs_like_source)
        assert len(program.functions()) == 2
        assert all(f.is_kernel for f in program.kernels())

    def test_type_helpers(self):
        t = ast.Type("int", 1)
        assert t.is_pointer
        assert t.pointee().pointers == 0
        assert t.pointer_to().pointers == 2
        assert not ast.Type("float").is_pointer
        assert ast.Type("float").is_float
