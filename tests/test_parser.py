"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.minicuda import ast, parse, parse_expr, parse_stmt


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.rhs, ast.Binary) and expr.rhs.op == "*"

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.lhs.op == "+"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.lhs.op == "-"
        assert expr.lhs.rhs.name == "b"

    def test_comparison_below_logical(self):
        expr = parse_expr("a < b && c >= d")
        assert expr.op == "&&"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = c")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_compound_assignment(self):
        expr = parse_expr("x += 2")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_ternary(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_index_and_member(self):
        expr = parse_expr("p[i].x")
        assert isinstance(expr, ast.Member)
        assert isinstance(expr.obj, ast.Index)

    def test_reserved_member(self):
        expr = parse_expr("blockIdx.x * blockDim.x + threadIdx.x")
        assert expr.op == "+"

    def test_call_with_args(self):
        expr = parse_expr("atomicAdd(&count[0], 1)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2
        assert isinstance(expr.args[0], ast.Unary)
        assert expr.args[0].op == "&"

    def test_cast(self):
        expr = parse_expr("(float)n / b")
        assert expr.op == "/"
        assert isinstance(expr.lhs, ast.Cast)
        assert expr.lhs.type.name == "float"

    def test_prefix_and_postfix_incdec(self):
        pre = parse_expr("++i")
        post = parse_expr("i++")
        assert isinstance(pre, ast.Unary) and not pre.postfix
        assert isinstance(post, ast.Unary) and post.postfix

    def test_unary_deref_and_negate(self):
        expr = parse_expr("-*p")
        assert expr.op == "-"
        assert expr.operand.op == "*"

    def test_sizeof_becomes_four(self):
        expr = parse_expr("n * sizeof(int)")
        assert isinstance(expr.rhs, ast.IntLit)
        assert expr.rhs.value == 4

    def test_bool_literals(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a + b c")


class TestLaunch:
    def test_basic_launch(self):
        stmt = parse_stmt("kern<<<grid, block>>>(a, b);")
        launch = stmt.expr
        assert isinstance(launch, ast.Launch)
        assert launch.kernel == "kern"
        assert len(launch.args) == 2

    def test_launch_with_expression_config(self):
        stmt = parse_stmt("k<<<(n + 255) / 256, 256>>>(p);")
        assert isinstance(stmt.expr.grid, ast.Binary)

    def test_launch_with_shmem_and_stream(self):
        stmt = parse_stmt("k<<<g, b, 0, s>>>(p);")
        assert stmt.expr.shmem is not None
        assert stmt.expr.stream is not None

    def test_launch_no_args(self):
        stmt = parse_stmt("k<<<1, 1>>>();")
        assert stmt.expr.args == []


class TestStatements:
    def test_declaration_with_init(self):
        stmt = parse_stmt("int x = 5;")
        assert isinstance(stmt, ast.DeclStmt)
        assert stmt.decls[0].name == "x"
        assert stmt.decls[0].init.value == 5

    def test_multi_declarator(self):
        stmt = parse_stmt("int a = 1, b, *c;")
        assert [d.name for d in stmt.decls] == ["a", "b", "c"]
        assert stmt.decls[2].type.pointers == 1

    def test_shared_array_declaration(self):
        stmt = parse_stmt("__shared__ float buf[256];")
        decl = stmt.decls[0]
        assert decl.is_shared
        assert decl.array_size.value == 256

    def test_dim3_declaration(self):
        stmt = parse_stmt("dim3 g = dim3(4, 2, 1);")
        assert stmt.decls[0].type.name == "dim3"

    def test_if_else(self):
        stmt = parse_stmt("if (a) { x = 1; } else { x = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_dangling_else_binds_inner(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.orelse is None
        assert stmt.then.orelse is not None

    def test_for_loop(self):
        stmt = parse_stmt("for (int i = 0; i < n; ++i) { s += i; }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_with_empty_parts(self):
        stmt = parse_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while_and_do_while(self):
        assert isinstance(parse_stmt("while (x) { --x; }"), ast.While)
        assert isinstance(parse_stmt("do { --x; } while (x);"), ast.DoWhile)

    def test_return_break_continue(self):
        assert isinstance(parse_stmt("return;"), ast.Return)
        assert parse_stmt("return x;").value.name == "x"
        assert isinstance(parse_stmt("break;"), ast.Break)
        assert isinstance(parse_stmt("continue;"), ast.Continue)

    def test_empty_statement(self):
        stmt = parse_stmt(";")
        assert isinstance(stmt, ast.Compound)
        assert stmt.stmts == []

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("x = 1")


class TestProgram:
    def test_kernel_and_device_functions(self, bfs_like_source):
        program = parse(bfs_like_source)
        assert [f.name for f in program.kernels()] == ["child", "parent"]

    def test_qualifiers(self):
        program = parse("__device__ int helper(int x) { return x + 1; }")
        func = program.function("helper")
        assert func.is_device and not func.is_kernel

    def test_global_variable(self):
        program = parse("__device__ int counter = 0;")
        decl = program.decls[0]
        assert isinstance(decl, ast.DeclStmt)
        assert decl.decls[0].qualifiers == ("__device__",)

    def test_prototype_without_body(self):
        program = parse("__global__ void k(int *p);")
        assert program.function("k").body is None

    def test_const_pointer_param(self):
        program = parse("__global__ void k(const int *p) { p[0]; }")
        param = program.function("k").params[0]
        assert param.type.const and param.type.pointers == 1

    def test_unknown_function_lookup_raises(self, bfs_like_source):
        with pytest.raises(KeyError):
            parse(bfs_like_source).function("nope")

    def test_index_of(self, bfs_like_source):
        program = parse(bfs_like_source)
        assert program.index_of("child") == 0
        assert program.index_of("parent") == 1
