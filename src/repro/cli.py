"""Command-line interface.

Mirrors the paper's artifact workflow (Appendix E): transform CUDA sources,
inspect the analyses, run benchmark variants, and regenerate the evaluation
figures. ``docs/reproducing.md`` lists the exact command per table/figure;
``docs/sweep-engine.md`` documents the sweep backends, the cache lifecycle,
and the remote worker protocol.

Usage::

    python -m repro transform kernel.cu --threshold 128 --coarsen 8 \\
        --aggregate multiblock -o kernel_opt.cu
    python -m repro analyze kernel.cu
    python -m repro bench BFS KRON --variant CDP+T+C+A --threshold 32
    python -m repro figure fig9 --scale 0.25
    python -m repro sweep --pairs BFS:KRON SSSP:KRON --variants CDP CDP+T \\
        --threshold 32 --jobs 4 --backend process --cache-dir .repro-cache
    python -m repro worker serve --port 7070            # on each machine
    python -m repro sweep --grid fig9 --backend remote \\
        --workers hostA:7070,hostB:7070
    python -m repro cache info --cache-dir .repro-cache
    python -m repro cache prune --cache-dir .repro-cache --max-bytes 1000000
    python -m repro serve --port 8070 --cache-dir .repro-cache \\
        --workers hostA:7070,hostB:7070     # HTTP query service

``docs/serving.md`` documents the ``repro serve`` HTTP API.
"""

import argparse
import json
import os
import sys
import time

from .analysis import analyze_program, find_launch_sites, find_thread_count
from .benchmarks import FIG9_PAIRS, FIG12_BENCHMARKS, get_benchmark
from .errors import ReproError
from .harness import (BACKENDS, VARIANT_LABELS, FigureArtifactCache,
                      PointFailure, ResultCache, SweepExecutor, TuningParams,
                      figure9, figure10, figure11, figure12,
                      fixed_threshold_study, run_variant, sweep_grid, table1)
from .minicuda import parse
from .minicuda.printer import print_expr
from .transforms import GRANULARITIES, OptConfig, transform
from .transforms.base import meta_to_dict


def _add_opt_flags(parser):
    parser.add_argument("--threshold", type=int, default=None,
                        help="launch threshold (enables thresholding)")
    parser.add_argument("--coarsen", type=int, default=None,
                        help="coarsening factor (enables coarsening)")
    parser.add_argument("--aggregate", choices=GRANULARITIES, default=None,
                        help="aggregation granularity (enables aggregation)")
    parser.add_argument("--group-blocks", type=int, default=8,
                        help="blocks per group for multi-block aggregation")
    parser.add_argument("--agg-threshold", type=int, default=None,
                        help="aggregation threshold (warp/block only)")
    parser.add_argument("--promote", action="store_true",
                        help="apply KLAP promotion to single-block "
                             "self-recursive kernels first")


def _config_from(args):
    return OptConfig(threshold=args.threshold,
                     coarsen_factor=args.coarsen,
                     aggregate=args.aggregate,
                     group_blocks=args.group_blocks,
                     agg_threshold=args.agg_threshold)


def cmd_transform(args):
    with open(args.source) as handle:
        source = handle.read()
    if getattr(args, "promote", False):
        from .transforms import PromotionPass
        program = parse(source)
        promo_meta = PromotionPass().run(program)
        result = transform(program, _config_from(args))
        result.meta.merge(promo_meta)
    else:
        result = transform(source, _config_from(args))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.source)
        print("wrote %s" % args.output)
    else:
        print(result.source)
    if args.meta:
        with open(args.meta, "w") as handle:
            json.dump(meta_to_dict(result.meta), handle, indent=2)
        print("wrote %s" % args.meta)
    return 0


def cmd_analyze(args):
    with open(args.source) as handle:
        program = parse(handle.read())
    props = analyze_program(program)
    print("kernels:")
    for name, info in props.items():
        flags = []
        if info.uses_barrier:
            flags.append("barrier")
        if info.uses_shared_memory:
            flags.append("shared-memory")
        if info.uses_warp_primitives:
            flags.append("warp-primitives")
        print("  %-24s thresholdable=%-5s dims=%s %s" % (
            name, info.thresholdable,
            "".join(sorted(info.dims_used)) or "-",
            ("(" + ", ".join(flags) + ")") if flags else ""))
    sites = find_launch_sites(program)
    print("dynamic launch sites: %d" % len(sites))
    for site in sites:
        analysis = find_thread_count(site.launch.grid)
        count = (print_expr(analysis.count_expr)
                 if analysis.count_expr is not None else "<not found>")
        print("  %s -> %s   desired threads: %s (exact=%s)" % (
            site.parent.name, site.child_name, count, analysis.exact))
    return 0


def cmd_bench(args):
    bench = get_benchmark(args.benchmark)
    data = bench.build_dataset(args.dataset, args.scale)
    params = TuningParams(threshold=args.threshold,
                          coarsen_factor=args.coarsen,
                          granularity=args.aggregate,
                          group_blocks=args.group_blocks)
    result = run_variant(bench, data, args.variant, params)
    print("%s on %s (%s, params %s)" % (args.variant, bench.name,
                                        args.dataset, params.describe()))
    print("  simulated cycles : %d" % result.total_time)
    print("  dynamic launches : %d" % result.device_launches)
    print("  queue wait cycles: %d" % result.launch_queue_wait)
    total = max(sum(result.breakdown.values()), 1)
    for component, value in result.breakdown.items():
        print("  %-7s %10d cycles (%5.1f%%)"
              % (component, value, 100.0 * value / total))
    return 0


_FIGURES = {
    "table1": lambda args, executor, artifacts: table1(
        args.scale, artifacts=artifacts),
    "fig9": lambda args, executor, artifacts: figure9(
        scale=args.scale, strategy=args.strategy, executor=executor,
        artifacts=artifacts),
    "fig10": lambda args, executor, artifacts: figure10(
        scale=args.scale, strategy=args.strategy, executor=executor,
        artifacts=artifacts),
    "fig11": lambda args, executor, artifacts: figure11(
        args.benchmark or "BFS", args.dataset or "KRON",
        scale=args.scale, executor=executor, artifacts=artifacts),
    "fig12": lambda args, executor, artifacts: figure12(
        scale=args.scale, strategy=args.strategy, executor=executor,
        artifacts=artifacts),
    "fixed-threshold": lambda args, executor, artifacts:
        fixed_threshold_study(
            scale=args.scale, strategy=args.strategy, executor=executor,
            artifacts=artifacts),
}


def _add_sweep_flags(parser, default_cache=None):
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep engine")
    parser.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                        help="sweep execution backend (default: serial for "
                             "--jobs 1, process otherwise; remote needs "
                             "--workers)")
    parser.add_argument("--workers", default=None,
                        metavar="HOST:PORT[,HOST:PORT...]",
                        help="remote worker daemons to shard the sweep "
                             "across (implies --backend remote; start them "
                             "with 'repro worker serve')")
    parser.add_argument("--worker-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="seconds to wait for a remote worker's chunk "
                             "before declaring it dead and reassigning "
                             "(default 300)")
    parser.add_argument("--cache-dir", default=default_cache,
                        help="persistent result-cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")


def _executor_from(args, force=False, on_error="raise"):
    """Build a SweepExecutor from the --jobs/--backend/--workers/
    --cache-dir/--no-cache flags, or None when they ask for plain serial,
    uncached execution. Flag conflicts (validated by
    :func:`repro.harness.sweep.make_backend`) exit 2."""
    cache_dir = None if args.no_cache else args.cache_dir
    workers = getattr(args, "workers", None)
    worker_timeout = getattr(args, "worker_timeout", None)
    if (not force and args.jobs <= 1 and cache_dir is None
            and args.backend is None and not workers
            and worker_timeout is None):
        return None
    try:
        return SweepExecutor(jobs=args.jobs, backend=args.backend,
                             workers=workers,
                             worker_timeout=worker_timeout,
                             cache=ResultCache(cache_dir) if cache_dir
                             else None, on_error=on_error)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        raise SystemExit(2)


def cmd_figure(args):
    executor = _executor_from(args)
    cache_dir = None if args.no_cache else args.cache_dir
    artifacts = FigureArtifactCache(cache_dir) if cache_dir else None
    try:
        result = _FIGURES[args.name](args, executor, artifacts)
    finally:
        if executor is not None:
            executor.close()
    text = result.format()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print("wrote %s" % args.output)
    else:
        print(text)
    return 0


_SWEEP_GRIDS = {
    "fig9": FIG9_PAIRS,
    "fig12": tuple((name, "ROAD-NY") for name in FIG12_BENCHMARKS),
}


def cmd_sweep(args):
    if args.pairs:
        pairs = []
        for item in args.pairs:
            bench_name, _, dataset_name = item.partition(":")
            if not dataset_name:
                print("bad --pairs entry %r (want BENCH:DATASET)" % item,
                      file=sys.stderr)
                return 2
            pairs.append((bench_name, dataset_name))
    else:
        pairs = _SWEEP_GRIDS[args.grid]
    for bench_name, dataset_name in pairs:
        try:
            bench = get_benchmark(bench_name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        if dataset_name not in bench.dataset_names:
            print("unknown dataset %r for %s (have %s)"
                  % (dataset_name, bench.name,
                     ", ".join(bench.dataset_names)), file=sys.stderr)
            return 2
    for label in args.variants:
        if label not in VARIANT_LABELS:
            print("unknown variant %r (have %s)"
                  % (label, ", ".join(VARIANT_LABELS)), file=sys.stderr)
            return 2
    params = TuningParams(threshold=args.threshold,
                          coarsen_factor=args.coarsen,
                          granularity=args.aggregate,
                          group_blocks=args.group_blocks)
    points = sweep_grid(pairs, args.variants, scale=args.scale, params=params)
    started = time.time()
    on_error = "continue" if args.keep_going else "raise"
    with _executor_from(args, force=True, on_error=on_error) as executor:
        results = executor.run(points)
    elapsed = time.time() - started
    failures = [r for r in results if isinstance(r, PointFailure)]
    if args.json:
        print(json.dumps(
            [{"error": r.error, "message": r.message,
              "point": r.point.describe()}
             if isinstance(r, PointFailure) else r.to_dict()
             for r in results], indent=2))
    else:
        headers = ("Benchmark", "Dataset", "Variant", "Params", "Cycles",
                   "Launches")
        widths = [len(h) for h in headers]
        rows = []
        for result in results:
            if isinstance(result, PointFailure):
                point = result.point
                row = (point.benchmark, point.dataset, point.label,
                       point.params.describe(),
                       "FAILED: %s" % result.error, "-")
            else:
                row = (result.benchmark, result.dataset, result.label,
                       result.params.describe(), str(result.total_time),
                       str(result.device_launches))
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
            rows.append(row)
        print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        print("  ".join("-" * w for w in widths))
        for row in rows:
            print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    stats = executor.stats
    if executor.backend.name == "remote":
        pool = "workers=%d" % len(executor.backend.addresses)
    else:
        pool = "jobs=%d" % executor.jobs
    print("%d points: %d cached, %d simulated, %d failed "
          "(backend=%s, %s, %.2fs)%s"
          % (stats.points, stats.hits, stats.simulated, stats.failed,
             executor.backend.name, pool, elapsed,
             "" if executor.cache is None else ", cache: %s" % args.cache_dir),
          file=sys.stderr)
    for failure in failures:
        print("failed: %s" % failure.describe(), file=sys.stderr)
    return 1 if failures else 0


def cmd_worker(args):
    from .harness.remote import (RemoteError, WorkerServer, parse_workers,
                                 worker_ping, worker_stop)

    if args.worker_command == "serve":
        try:
            server = WorkerServer(host=args.host, port=args.port,
                                  jobs=args.jobs, quiet=False)
        except (OSError, OverflowError) as exc:
            print("cannot bind %s:%d: %s" % (args.host, args.port, exc),
                  file=sys.stderr)
            return 1
        host, port = server.address
        print("repro worker listening on %s:%d (jobs=%d)"
              % (host, port, args.jobs), flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return 0
    try:
        addresses = parse_workers(args.address)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    if len(addresses) != 1:
        print("worker %s takes exactly one HOST:PORT, got %d addresses"
              % (args.worker_command, len(addresses)), file=sys.stderr)
        return 2
    address, = addresses
    try:
        if args.worker_command == "ping":
            pong = worker_ping(address, timeout=args.timeout)
            print("worker %s:%d alive: protocol %s, cache v%s, code %s, "
                  "jobs=%s, %s points served"
                  % (address[0], address[1], pong.get("protocol"),
                     pong.get("cache_version"), pong.get("code_version"),
                     pong.get("jobs"), pong.get("points_served")))
        else:
            worker_stop(address, timeout=args.timeout)
            print("stopped worker %s:%d" % address)
    except RemoteError as exc:
        # Reachable but incompatible/garbled (e.g. version skew) — the
        # exact condition ping exists to surface; don't call it dead.
        print(exc, file=sys.stderr)
        return 1
    except (OSError, ReproError) as exc:
        print("worker %s:%d unreachable: %s" % (address[0], address[1], exc),
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args):
    import signal

    from .harness.quota import (ApiKeyAuth, ClientQuota, QuotaManager,
                                load_api_keys)
    from .harness.serve import ServeServer

    cache_dir = None if args.no_cache else args.cache_dir
    try:
        auth = None
        overrides = {}
        known = ()
        if args.api_keys_file:
            auth = ApiKeyAuth(load_api_keys(args.api_keys_file))
            overrides = auth.quota_overrides()
            known = auth.clients
        quota = None
        if (args.quota_rps is not None or args.quota_burst is not None
                or args.quota_max_inflight is not None or overrides):
            quota = QuotaManager(
                default=ClientQuota(rate=args.quota_rps,
                                    burst=args.quota_burst,
                                    max_inflight=args.quota_max_inflight),
                overrides=overrides, known=known)
    except ReproError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        server = ServeServer(host=args.host, port=args.port, quiet=False,
                             cache_dir=cache_dir, jobs=args.jobs,
                             backend=args.backend, workers=args.workers,
                             worker_timeout=args.worker_timeout,
                             miss_workers=args.miss_workers,
                             max_pending=args.max_pending,
                             request_timeout=args.request_timeout,
                             quota=quota, api_keys=auth)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    except (OSError, OverflowError) as exc:
        print("cannot bind %s:%d: %s" % (args.host, args.port, exc),
              file=sys.stderr)
        return 1
    host, port = server.address
    print("repro serve listening on http://%s:%d/ (backend=%s, cache=%s, "
          "miss-workers=%d, max-pending=%d, auth=%s, quota=%s)"
          % (host, port, server.service.executor.backend.name,
             cache_dir or "disabled", args.miss_workers, args.max_pending,
             "%d key(s)" % len(auth) if auth is not None else "off",
             "on" if quota is not None else "off"),
          flush=True)

    def _sigterm(signum, frame):
        # Route SIGTERM through the same graceful-drain path as Ctrl-C:
        # serve_forever unwinds, then close() drains in-flight misses.
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        queue = server.service.scheduler.stats_dict()
        pending = queue["depth"] + queue["inflight"]
        if pending:
            print("repro serve: draining %d in-flight miss task(s)..."
                  % pending, flush=True)
        server.close(drain=True)
        print("repro serve: drained, bye", flush=True)
    return 0


def _format_index_top(rows):
    if not rows:
        return ["index is empty — run 'repro cache reindex' to rebuild "
                "it from the blobs"]
    lines = ["%-16s %-6s %6s %12s %10s  %s"
             % ("key", "kind", "hits", "sim-cost(s)", "bytes", "spec")]
    for row in rows:
        cost = row.get("sim_cost_seconds")
        spec = row.get("spec")
        spec_text = "" if spec is None \
            else json.dumps(spec, sort_keys=True)
        if len(spec_text) > 60:
            spec_text = spec_text[:57] + "..."
        lines.append("%-16s %-6s %6d %12s %10d  %s"
                     % (row["key"][:16], row["kind"], row["hits"],
                        "-" if cost is None else "%.4f" % cost,
                        row["bytes"], spec_text))
    return lines


def cmd_cache(args):
    from .harness.cache import TMP_MAX_AGE

    if not os.path.isdir(args.cache_dir):
        print("no cache at %s" % args.cache_dir, file=sys.stderr)
        return 0 if args.action == "info" else 2
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        print(cache.info().format())
    elif args.action == "clear":
        removed = cache.clear()
        print("cleared %d files from %s" % (removed, args.cache_dir))
    elif args.action == "reindex":
        count = cache.reindex()
        print("reindexed %d entries into %s" % (count, cache.index.path))
    elif args.action == "top":
        for line in _format_index_top(cache.index.top(by=args.by,
                                                      limit=args.limit)):
            print(line)
    elif args.action == "stats":
        stats = cache.index.stats_dict()
        print("index %s" % stats["path"])
        print("  entries: %d, bytes: %d, hits: %d, sim cost: %.4fs"
              % (stats["entries"], stats["bytes"], stats["hits"],
                 stats["sim_cost_seconds"]))
        for kind in sorted(stats["by_kind"]):
            block = stats["by_kind"][kind]
            print("  %-7s: %d entries, %d bytes, %d hits, %.4fs sim cost"
                  % (kind, block["entries"], block["bytes"],
                     block["hits"], block["sim_cost_seconds"]))
    else:
        tmp_age = TMP_MAX_AGE if args.tmp_age is None else args.tmp_age
        report = cache.prune(max_entries=args.max_entries,
                             max_bytes=args.max_bytes, tmp_max_age=tmp_age,
                             policy=args.policy, dry_run=args.dry_run)
        print(report.format())
        print(cache.info().format())
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CGO 2022 dynamic-parallelism compiler framework "
                    "(Python reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_transform = sub.add_parser(
        "transform", help="apply T/C/A passes to a miniCUDA source file")
    p_transform.add_argument("source")
    p_transform.add_argument("-o", "--output", default=None)
    p_transform.add_argument("--meta", default=None,
                             help="write runtime metadata JSON here")
    _add_opt_flags(p_transform)
    p_transform.set_defaults(func=cmd_transform)

    p_analyze = sub.add_parser(
        "analyze", help="report launch sites and kernel legality")
    p_analyze.add_argument("source")
    p_analyze.set_defaults(func=cmd_analyze)

    p_bench = sub.add_parser("bench", help="run one benchmark variant")
    p_bench.add_argument("benchmark")
    p_bench.add_argument("dataset")
    p_bench.add_argument("--variant", default="CDP+T+C+A")
    p_bench.add_argument("--scale", type=float, default=0.25)
    _add_opt_flags(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_figure = sub.add_parser(
        "figure", help="regenerate a table/figure of the evaluation "
                       "(accepts the sweep engine's --jobs/--backend/"
                       "--workers/--cache-dir flags; warm runs are "
                       "near-instant)")
    p_figure.add_argument("name", choices=sorted(_FIGURES))
    p_figure.add_argument("--scale", type=float, default=0.25)
    p_figure.add_argument("--strategy", choices=("guided", "exhaustive"),
                          default="guided")
    p_figure.add_argument("--benchmark", default=None,
                          help="fig11 panel benchmark")
    p_figure.add_argument("--dataset", default=None,
                          help="fig11 panel dataset")
    p_figure.add_argument("-o", "--output", default=None)
    _add_sweep_flags(p_figure)
    p_figure.set_defaults(func=cmd_figure)

    p_sweep = sub.add_parser(
        "sweep", help="run a (pairs x variants) grid through the parallel "
                      "sweep engine with a persistent result cache "
                      "(--backend serial|process|thread|futures|remote, "
                      "--keep-going to continue past failed points)")
    p_sweep.add_argument("--grid", choices=sorted(_SWEEP_GRIDS),
                         default="fig9",
                         help="preset benchmark/dataset grid "
                              "(ignored when --pairs is given)")
    p_sweep.add_argument("--pairs", nargs="+", default=None,
                         metavar="BENCH:DATASET",
                         help="explicit pairs, e.g. BFS:KRON SSSP:CNR")
    p_sweep.add_argument("--variants", nargs="+", default=["CDP"],
                         help="variant labels, e.g. CDP CDP+T+C+A")
    p_sweep.add_argument("--scale", type=float, default=0.25)
    p_sweep.add_argument("--json", action="store_true",
                         help="emit results as JSON instead of a table")
    p_sweep.add_argument("--keep-going", action="store_true",
                         help="on_error=continue: run past failed points, "
                              "report each failure at the end, and exit 1 "
                              "instead of aborting on the first one (the "
                              "contract is documented in "
                              "docs/sweep-engine.md)")
    _add_opt_flags(p_sweep)
    _add_sweep_flags(p_sweep, default_cache=".repro-cache")
    p_sweep.set_defaults(func=cmd_sweep)

    p_worker = sub.add_parser(
        "worker", help="run or manage remote sweep worker daemons "
                       "(the --backend remote fleet)")
    wsub = p_worker.add_subparsers(dest="worker_command", required=True)
    w_serve = wsub.add_parser(
        "serve", help="serve sweep chunks over TCP until stopped")
    w_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1)")
    w_serve.add_argument("--port", type=int, default=0,
                         help="port to bind (default 0: pick an ephemeral "
                              "port and print it)")
    w_serve.add_argument("--jobs", type=int, default=1,
                         help="local worker processes per chunk (1 = "
                              "in-process serial)")
    w_ping = wsub.add_parser(
        "ping", help="handshake with a worker and report its versions")
    w_ping.add_argument("address", metavar="HOST:PORT")
    w_ping.add_argument("--timeout", type=float, default=10.0)
    w_stop = wsub.add_parser("stop", help="ask a worker daemon to exit")
    w_stop.add_argument("address", metavar="HOST:PORT")
    w_stop.add_argument("--timeout", type=float, default=10.0)
    p_worker.set_defaults(func=cmd_worker)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived HTTP query service over the "
                      "warm caches (GET /healthz, /cache/info, /metrics, "
                      "/point, /figure/<name>; POST /sweep, /shutdown — "
                      "see docs/serving.md); misses route through a "
                      "bounded priority scheduler (--miss-workers/"
                      "--max-pending, per-request priorities and "
                      "deadlines via X-Repro-* headers) over the sweep "
                      "engine (--jobs/--backend/--workers)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface to bind (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="port to bind (default 0: pick an ephemeral "
                              "port and print it)")
    p_serve.add_argument("--miss-workers", type=int, default=2,
                         metavar="N",
                         help="concurrent miss executors draining the "
                              "request queue (default 2); each owns its "
                              "own backend, so cold requests for distinct "
                              "points overlap while requests for the same "
                              "point share one computation")
    p_serve.add_argument("--max-pending", type=int, default=64,
                         metavar="N",
                         help="bound on queued miss tasks (default 64); "
                              "past it cold requests get 503 backpressure "
                              "instead of piling onto the simulator")
    p_serve.add_argument("--request-timeout", type=float, default=300.0,
                         metavar="SECONDS",
                         help="bound on how long one HTTP request waits "
                              "for a cache miss (default 300; 0 disables); "
                              "past it the request 504s with retry=true "
                              "while the simulation continues toward the "
                              "cache")
    p_serve.add_argument("--api-keys-file", metavar="PATH",
                         help="enable API-key auth: a JSON file mapping "
                              "key -> client name (or an object with "
                              "client/rate/burst/max_inflight quota "
                              "overrides); requests without a valid "
                              "X-Repro-Api-Key get 401 (GET /healthz and "
                              "/metrics stay open)")
    p_serve.add_argument("--quota-rps", type=float, default=None,
                         metavar="RPS",
                         help="default per-client miss admission rate in "
                              "requests/sec (token bucket; over-quota "
                              "misses get 429 with Retry-After; warm "
                              "cache hits are never metered)")
    p_serve.add_argument("--quota-burst", type=float, default=None,
                         metavar="N",
                         help="default per-client burst capacity (bucket "
                              "size; default 2x --quota-rps, min 1)")
    p_serve.add_argument("--quota-max-inflight", type=int, default=None,
                         metavar="N",
                         help="default cap on one client's concurrent "
                              "in-flight misses (429 past it; released "
                              "when the miss wait ends)")
    _add_sweep_flags(p_serve, default_cache=".repro-cache")
    p_serve.set_defaults(func=cmd_serve)

    p_cache = sub.add_parser(
        "cache", help="inspect and manage the on-disk sweep/figure cache "
                      "(result entries, figure artifacts, stranded .tmp "
                      "files, and the index.sqlite metadata index)")
    p_cache.add_argument("action", choices=("info", "clear", "prune",
                                            "reindex", "top", "stats"))
    p_cache.add_argument("--cache-dir", default=".repro-cache",
                         help="cache directory (default .repro-cache)")
    p_cache.add_argument("--max-entries", type=int, default=None,
                         metavar="N",
                         help="prune: keep at most N entries (results + "
                              "figure artifacts)")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         metavar="BYTES",
                         help="prune: keep at most BYTES bytes of entries "
                              "(e.g. 50000000 for 50 MB)")
    p_cache.add_argument("--tmp-age", type=float, default=None,
                         metavar="SECONDS",
                         help="prune: sweep stranded .tmp files older than "
                              "SECONDS (default 3600, i.e. one hour)")
    p_cache.add_argument("--policy", choices=("lru", "cost"),
                         default="lru",
                         help="prune: eviction order — lru (default) "
                              "evicts least-recently-used first; cost "
                              "evicts cheapest-to-recompute first, "
                              "ranked by the index's measured per-point "
                              "simulation costs")
    p_cache.add_argument("--dry-run", action="store_true",
                         help="prune: report what would be evicted "
                              "without removing anything")
    p_cache.add_argument("--by", choices=("hits", "cost", "bytes",
                                          "recent"),
                         default="hits",
                         help="top: ranking column (default hits)")
    p_cache.add_argument("--limit", type=int, default=20, metavar="N",
                         help="top: number of entries to show "
                              "(default 20)")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
