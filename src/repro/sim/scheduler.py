"""Event-driven timing simulation (phase 2), vectorized.

Replays a :class:`~repro.sim.trace.Trace` against a
:class:`~repro.sim.config.DeviceConfig`:

* blocks of ready grids are placed FIFO onto SMs with per-SM block-slot and
  thread capacities; excess blocks wait — small grids underutilize the
  device because they cannot fill the slots;
* each dynamic launch leaves its parent block at its recorded thread-cycle
  offset, then passes through a single launch processor with a fixed service
  interval — many concurrent launches queue up, reproducing the congestion
  the paper identifies as CDP's first-order cost;
* grid-granularity aggregated launches become ready only after the parent
  grid completes plus a host round-trip (Sec. V-A's CPU involvement);
* host events run sequentially; ``sync`` waits for every grid launched so
  far (and all transitively launched descendants).

This implementation batches the hot inner loops that used to run one
Python object at a time (the per-block/per-event oracle is preserved in
:mod:`repro.sim.scheduler_ref` and must stay bit-identical — the golden
parity suite enforces it):

* per-grid block latencies and SM service cycles are computed as NumPy
  array expressions over the trace's block costs, once, instead of two
  method calls per placement;
* the pending-block queue holds one *range* per ready grid rather than
  one tuple per block, so a grid of B blocks costs O(1) to enqueue;
* a block's dynamic launches clear the single-server launch queue as one
  NumPy recurrence (a shifted cumulative maximum) when the batch is
  large, instead of a per-launch read-modify-write of the server clock;
* SM occupancy and per-grid timing live in flat arrays indexed by SM and
  grid id; the :class:`GridTiming` objects are materialized once at the
  end.
"""

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from .config import DeviceConfig
from .trace import HOST_AGG

#: Dynamic-launch batches at least this large clear the launch-queue
#: recurrence in NumPy; smaller ones stay scalar (array setup would cost
#: more than it saves). Both paths are exactly equivalent.
_LAUNCH_BATCH_MIN = 32

_GRID_READY, _BLOCK_FINISH, _LAUNCH_READY = 0, 1, 2


@dataclass
class GridTiming:
    ready: int = 0
    first_start: int = -1
    finish: int = 0
    blocks_done: int = 0


@dataclass
class TimingResult:
    """Output of the timing simulation."""

    total_time: int
    grid_timings: dict                  # gid -> GridTiming
    launch_queue_wait: int              # cycles launches spent queued
    device_launches: int
    host_agg_launches: int

    def grid_finish(self, grid):
        return self.grid_timings[grid.gid].finish


class Simulator:
    """One-shot simulator; use :func:`simulate`."""

    def __init__(self, trace, config):
        self.trace = trace
        self.config = config
        self.events = []
        self._seq = 0
        num_sms = config.num_sms
        self.sm_free_blocks = [config.max_blocks_per_sm] * num_sms
        self.sm_free_threads = [config.max_threads_per_sm] * num_sms
        self.sm_work_free = [0] * num_sms   # when each SM's pipeline drains
        self.pending = deque()              # [grid, next block index]
        self.launch_server_free = 0
        self.launch_queue_wait = 0
        self.device_launches = 0
        self.host_agg_launches = 0
        self.outstanding = 0                # grids injected but not finished

        grids = trace.grids
        n = len(grids)
        if any(grid.gid != i for i, grid in enumerate(grids)):
            raise SimulationError("trace grid ids must be dense and ordered")
        # Flat per-grid timing state, indexed by gid; GridTiming objects
        # are only built once, in run().
        self.g_ready = [0] * n
        self.g_first_start = [-1] * n
        self.g_finish = [0] * n
        self.g_blocks_done = [0] * n
        # Vectorized block timing: latency (slowest warp) and SM pipeline
        # service cycles for EVERY block of every grid, in one flat array
        # pass over the whole trace instead of two DeviceConfig calls per
        # placement. g_off[gid] locates a grid's slice in the flat lists
        # (flat because many traces are thousands of 1–2 block child
        # grids, where per-grid arrays would cost more than they save).
        self.g_threads = [0] * n            # thread-slot need per block
        self.g_off = [0] * n
        max_threads = config.max_threads_per_sm
        total = 0
        for grid in grids:
            gid = grid.gid
            self.g_threads[gid] = min(grid.block_dim, max_threads)
            self.g_off[gid] = total
            total += len(grid.blocks)
        if total:
            max_warp = np.fromiter(
                (b.max_warp for g in grids for b in g.blocks),
                dtype=np.int64, count=total)
            sum_warp = np.fromiter(
                (b.sum_warp for g in grids for b in g.blocks),
                dtype=np.int64, count=total)
            self.flat_lat = config.block_latency(max_warp).tolist()
            self.flat_svc = config.block_service(sum_warp).tolist()
        else:
            self.flat_lat = []
            self.flat_svc = []
        # Children index: dynamic launches fire when their parent *block*
        # starts (offset known then); host_agg fire at parent grid finish.
        self.block_launches = [None] * n    # gid -> {block -> [LaunchRecord]}
        self.finish_launches = {}           # parent gid -> [LaunchRecord]
        for grid in grids:
            for rec in grid.children:
                per_block = self.block_launches[grid.gid]
                if per_block is None:
                    per_block = self.block_launches[grid.gid] = {}
                per_block.setdefault(rec.parent_block, []).append(rec)
        for grid in grids:
            launch = grid.launch
            if launch is not None and launch.kind == HOST_AGG:
                self.finish_launches.setdefault(
                    launch.parent_grid.gid, []).append(launch)

    # -- event machinery -------------------------------------------------------

    def _push(self, time, kind, payload):
        self._seq += 1
        heapq.heappush(self.events, (time, self._seq, kind, payload))

    def run(self):
        """Process host events; returns a :class:`TimingResult`."""
        host_time = 0
        for event in self.trace.host_events:
            if event[0] == "launch":
                grid = event[1]
                host_time += self.config.host_launch_latency
                self._inject(grid, host_time)
            elif event[0] == "sync":
                host_time = max(host_time, self._drain())
            else:
                raise SimulationError("unknown host event %r" % (event[0],))
        host_time = max(host_time, self._drain())
        timings = {}
        for grid in self.trace.grids:
            gid = grid.gid
            timings[gid] = GridTiming(self.g_ready[gid],
                                      self.g_first_start[gid],
                                      self.g_finish[gid],
                                      self.g_blocks_done[gid])
        return TimingResult(
            total_time=host_time,
            grid_timings=timings,
            launch_queue_wait=self.launch_queue_wait,
            device_launches=self.device_launches,
            host_agg_launches=self.host_agg_launches)

    def _inject(self, grid, ready_time):
        gid = grid.gid
        self.g_ready[gid] = ready_time
        self.outstanding += 1
        if not grid.blocks:
            self.g_finish[gid] = ready_time
            self.outstanding -= 1
            self._on_grid_finish(grid, ready_time)
            return
        self._push(ready_time, _GRID_READY, grid)

    def _drain(self):
        """Run the event loop to exhaustion; returns the last finish time."""
        last = 0
        events = self.events
        while events:
            time, _, kind, payload = heapq.heappop(events)
            if time > last:
                last = time
            if kind == _BLOCK_FINISH:
                self._on_block_finish(time, payload)
            elif kind == _GRID_READY:
                self.pending.append([payload, 0])
                self._schedule(time)
            elif kind == _LAUNCH_READY:
                self._inject(payload.grid, time)
            else:
                raise SimulationError("unknown event %r" % kind)
        if self.outstanding != 0:
            raise SimulationError(
                "simulation drained with %d unfinished grids"
                % self.outstanding)
        return last

    # -- scheduling --------------------------------------------------------------

    def _schedule(self, time):
        pending = self.pending
        free_blocks = self.sm_free_blocks
        free_threads = self.sm_free_threads
        work_free = self.sm_work_free
        num_sms = len(free_blocks)
        flat_lat = self.flat_lat
        flat_svc = self.flat_svc
        while pending:
            entry = pending[0]
            grid = entry[0]
            gid = grid.gid
            need = self.g_threads[gid]
            # First SM with a block slot, room for the block's threads,
            # and the strictly largest thread headroom (FIFO head only:
            # a head block that fits nowhere blocks the queue).
            best = -1
            best_free = -1
            for sm in range(num_sms):
                if free_blocks[sm] <= 0:
                    continue
                threads = free_threads[sm]
                if threads < need or threads <= best_free:
                    continue
                best, best_free = sm, threads
            if best < 0:
                return
            index = entry[1]
            entry[1] = index + 1
            if entry[1] == len(grid.blocks):
                pending.popleft()
            free_blocks[best] -= 1
            free_threads[best] = best_free - need
            if self.g_first_start[gid] < 0:
                self.g_first_start[gid] = time
            # Blocks resident on one SM share its issue pipeline: the block
            # completes when both its own slowest warp has retired and the
            # SM has pushed the block's summed work through the pipeline.
            flat = self.g_off[gid] + index
            busy = work_free[best]
            busy = (busy if busy > time else time) + flat_svc[flat]
            work_free[best] = busy
            finish = time + flat_lat[flat]
            if busy > finish:
                finish = busy
            per_block = self.block_launches[gid]
            if per_block is not None:
                recs = per_block.get(index)
                if recs:
                    self._emit_block_launches(recs, time, finish - time)
            self._push(finish, _BLOCK_FINISH, (grid, best))

    def _emit_block_launches(self, recs, start, duration):
        """Push one block's dynamic launches through the single-server
        launch queue (fixed service interval), accumulating queue wait.

        Large batches use the closed form of the server recurrence
        ``ready[i] = max(arrival[i], ready[i-1]) + interval``: with
        ``t[i] = ready[i] - (i + 1) * interval`` it becomes a running
        maximum of ``arrival[i] - i * interval``, which NumPy computes in
        one ``maximum.accumulate`` — identical results, no per-launch
        Python arithmetic.
        """
        interval = self.config.launch_service_interval
        latency = self.config.device_launch_latency
        count = len(recs)
        self.device_launches += count
        if count >= _LAUNCH_BATCH_MIN:
            offsets = np.fromiter((rec.issue_offset for rec in recs),
                                  dtype=np.int64, count=count)
            arrival = start + np.minimum(offsets, duration)
            shifted = arrival - np.arange(count, dtype=np.int64) * interval
            shifted[0] = max(shifted[0], self.launch_server_free)
            ready = (np.maximum.accumulate(shifted)
                     + np.arange(1, count + 1, dtype=np.int64) * interval)
            self.launch_queue_wait += int(
                (ready - arrival).sum()) - count * interval
            self.launch_server_free = int(ready[-1])
            ready_list = (ready + latency).tolist()
            for rec, rec_ready in zip(recs, ready_list):
                self._push(rec_ready, _LAUNCH_READY, rec)
            return
        server_free = self.launch_server_free
        wait = 0
        for rec in recs:
            offset = rec.issue_offset
            arrival = start + (offset if offset < duration else duration)
            ready = (server_free if server_free > arrival else arrival) \
                + interval
            wait += ready - arrival - interval
            server_free = ready
            self._push(ready + latency, _LAUNCH_READY, rec)
        self.launch_server_free = server_free
        self.launch_queue_wait += wait

    def _on_block_finish(self, time, payload):
        grid, sm = payload
        gid = grid.gid
        self.sm_free_blocks[sm] += 1
        self.sm_free_threads[sm] += self.g_threads[gid]
        done = self.g_blocks_done[gid] + 1
        self.g_blocks_done[gid] = done
        if done == len(grid.blocks):
            self.g_finish[gid] = time
            self.outstanding -= 1
            self._on_grid_finish(grid, time)
        self._schedule(time)

    def _on_grid_finish(self, grid, time):
        recs = self.finish_launches.get(grid.gid)
        if recs:
            ready = time + self.config.host_agg_overhead
            for rec in recs:
                self.host_agg_launches += 1
                self._push(ready, _LAUNCH_READY, rec)


def simulate(trace, config=None):
    """Replay *trace* on *config* (default :class:`DeviceConfig`)."""
    return Simulator(trace, config or DeviceConfig()).run()
