"""Table I — benchmark/dataset inventory (dataset construction cost)."""

from repro.harness import table1

from conftest import save


def test_table1(benchmark, repro_scale, out_dir):
    result = benchmark.pedantic(table1, args=(repro_scale,),
                                rounds=1, iterations=1)
    text = result.format()
    save(out_dir, "table1.txt", text)
    print()
    print(text)
    assert len(result.rows) == 15
