"""BT — Bezier line tessellation (CUDA samples, Table I).

Each parent thread measures one quadratic Bezier line's curvature, derives
its tessellation count, reserves output space with an atomic cursor, and
launches a child grid that evaluates the curve at the tessellation points.
The per-line tessellation count is data-dependent (curvature-driven), giving
irregular nested parallelism. T0032-C16 caps tessellation at a small value
(small child grids); T2048-C64 allows much larger ones.
"""

from ..datasets import bezier_lines
from ..runtime.host import blocks
from .common import Benchmark, scaled

_CHILD = """
__global__ void bt_child(float *cx, float *cy, float *outx, float *outy,
                         int line, int offset, int ntess) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < ntess) {
        float t = (float)tid / (float)(ntess - 1);
        float omt = 1.0f - t;
        float x0 = cx[line * 3];
        float x1 = cx[line * 3 + 1];
        float x2 = cx[line * 3 + 2];
        float y0 = cy[line * 3];
        float y1 = cy[line * 3 + 1];
        float y2 = cy[line * 3 + 2];
        outx[offset + tid] = omt * omt * x0 + 2.0f * omt * t * x1 + t * t * x2;
        outy[offset + tid] = omt * omt * y0 + 2.0f * omt * t * y1 + t * t * y2;
    }
}
"""

_CDP_PARENT = """
__global__ void bt_kernel(float *cx, float *cy, float *outx, float *outy,
                          int *offsets, int *tess, int *cursor, int nlines,
                          int max_tess, float curv_scale) {
    int line = blockIdx.x * blockDim.x + threadIdx.x;
    if (line < nlines) {
        float dx = cx[line * 3 + 1] - 0.5f * (cx[line * 3] + cx[line * 3 + 2]);
        float dy = cy[line * 3 + 1] - 0.5f * (cy[line * 3] + cy[line * 3 + 2]);
        float curvature = sqrtf(dx * dx + dy * dy);
        int ntess = (int)(curvature * curv_scale) + 2;
        if (ntess > max_tess) {
            ntess = max_tess;
        }
        int offset = atomicAdd(cursor, ntess);
        offsets[line] = offset;
        tess[line] = ntess;
        bt_child<<<(ntess + %(cb)d - 1) / %(cb)d, %(cb)d>>>(
            cx, cy, outx, outy, line, offset, ntess);
    }
}
"""

_NOCDP = """
__global__ void bt_kernel(float *cx, float *cy, float *outx, float *outy,
                          int *offsets, int *tess, int *cursor, int nlines,
                          int max_tess, float curv_scale) {
    int line = blockIdx.x * blockDim.x + threadIdx.x;
    if (line < nlines) {
        float dx = cx[line * 3 + 1] - 0.5f * (cx[line * 3] + cx[line * 3 + 2]);
        float dy = cy[line * 3 + 1] - 0.5f * (cy[line * 3] + cy[line * 3 + 2]);
        float curvature = sqrtf(dx * dx + dy * dy);
        int ntess = (int)(curvature * curv_scale) + 2;
        if (ntess > max_tess) {
            ntess = max_tess;
        }
        int offset = atomicAdd(cursor, ntess);
        offsets[line] = offset;
        tess[line] = ntess;
        float x0 = cx[line * 3];
        float x1 = cx[line * 3 + 1];
        float x2 = cx[line * 3 + 2];
        float y0 = cy[line * 3];
        float y1 = cy[line * 3 + 1];
        float y2 = cy[line * 3 + 2];
        for (int i = 0; i < ntess; ++i) {
            float t = (float)i / (float)(ntess - 1);
            float omt = 1.0f - t;
            outx[offset + i] = omt * omt * x0 + 2.0f * omt * t * x1
                               + t * t * x2;
            outy[offset + i] = omt * omt * y0 + 2.0f * omt * t * y1
                               + t * t * y2;
        }
    }
}
"""


class BTBenchmark(Benchmark):
    name = "BT"
    dataset_names = ("T0032-C16", "T2048-C64")
    child_block = 32

    def cdp_source(self):
        return _CHILD + _CDP_PARENT % {"cb": self.child_block}

    def nocdp_source(self):
        return _NOCDP

    def build_dataset(self, dataset_name, scale=1.0):
        if dataset_name == "T0032-C16":
            return bezier_lines(num_lines=scaled(800, scale, 60),
                                max_tess=32, curvature_scale=16.0,
                                name="T0032-C16")
        if dataset_name == "T2048-C64":
            return bezier_lines(num_lines=scaled(600, scale, 50),
                                max_tess=256, curvature_scale=64.0,
                                name="T2048-C64", seed=8)
        raise KeyError(dataset_name)

    def drive(self, device, data):
        nlines = data.num_lines
        out_capacity = int(data.tess_counts().sum()) + data.max_tess
        cx = device.upload(data.control_x)
        cy = device.upload(data.control_y)
        outx = device.alloc("float", out_capacity)
        outy = device.alloc("float", out_capacity)
        offsets = device.alloc("int", nlines)
        tess = device.alloc("int", nlines)
        cursor = device.alloc("int", 1)
        device.launch("bt_kernel", blocks(nlines, 128), 128,
                      cx, cy, outx, outy, offsets, tess, cursor, nlines,
                      data.max_tess, float(data.curvature_scale))
        device.sync()
        return {"outx": outx.to_numpy(), "outy": outy.to_numpy(),
                "offsets": offsets.to_numpy(), "tess": tess.to_numpy()}
