#!/usr/bin/env python
"""Threshold/granularity sweep for one benchmark — a live Fig. 11 panel.

Shows the paper's three observations (Sec. VIII-C): speedup first rises
with the threshold, then falls once large child grids get serialized; and
the best aggregation granularity is benchmark-dependent.

Run:  python examples/tuning_sweep.py [BENCHMARK] [DATASET] [scale]
      python examples/tuning_sweep.py SSSP KRON 0.25
"""

import sys

from repro.harness import figure11


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "BFS"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "KRON"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25
    fig = figure11(bench, dataset, scale=scale)
    print(fig.format())

    best = None
    for granularity, points in fig.series.items():
        for threshold, speedup in points.items():
            if best is None or speedup > best[2]:
                best = (granularity, threshold, speedup)
    print("\nbest point: granularity=%s threshold=%s -> %.2fx over CDP"
          % best)


if __name__ == "__main__":
    main()
