"""The paper's three source-to-source optimization passes and their driver."""

from .aggregation import (AGG_GRANULARITY_MACRO, AGG_THRESHOLD_MACRO,
                          DEFAULT_GROUP_BLOCKS, GRANULARITIES,
                          AggregationPass)
from .base import AggSpec, ModuleMeta, PromotionSpec, TransformResult
from .coarsening import CFACTOR_MACRO, DEFAULT_CFACTOR, CoarseningPass
from .pipeline import OptConfig, transform
from .promotion import PromotionPass, find_promotable_sites
from .thresholding import DEFAULT_THRESHOLD, THRESHOLD_MACRO, ThresholdingPass

__all__ = [
    "AGG_GRANULARITY_MACRO", "AGG_THRESHOLD_MACRO", "DEFAULT_GROUP_BLOCKS",
    "GRANULARITIES", "AggregationPass",
    "AggSpec", "ModuleMeta", "PromotionSpec", "TransformResult",
    "CFACTOR_MACRO", "DEFAULT_CFACTOR", "CoarseningPass",
    "OptConfig", "transform",
    "PromotionPass", "find_promotable_sites",
    "DEFAULT_THRESHOLD", "THRESHOLD_MACRO", "ThresholdingPass",
]
