#!/usr/bin/env python
"""Quickstart: transform a CDP kernel with the paper's three optimizations,
show the generated source, and run both versions on the simulated GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device, Module, OptConfig, blocks, transform

# A parent kernel that dynamically launches one child grid per work item —
# the Fig. 1(a) pattern the paper optimizes.
SOURCE = """
__global__ void child(int *data, int *out, int start, int count) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < count) {
        atomicAdd(&out[0], data[start + tid]);
    }
}

__global__ void parent(int *offsets, int *data, int *out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        int start = offsets[tid];
        int count = offsets[tid + 1] - start;
        if (count > 0) {
            child<<<(count + 31) / 32, 32>>>(data, out, start, count);
        }
    }
}
"""


def run(module, offsets, data):
    device = Device(module)
    d_offsets = device.upload(offsets)
    d_data = device.upload(data)
    d_out = device.alloc("int", 1)
    n = len(offsets) - 1
    device.launch("parent", blocks(n, 128), 128, d_offsets, d_data, d_out, n)
    device.sync()
    timing = device.finish()
    return int(d_out[0]), timing


def main():
    # Irregular nested work: item i owns a random-sized slice of `data`.
    rng = np.random.default_rng(1)
    counts = rng.geometric(0.05, size=400)        # heavy-tailed, like graphs
    offsets = np.concatenate([[0], np.cumsum(counts)])
    data = rng.integers(0, 100, offsets[-1])

    # 1. Apply thresholding + coarsening + multi-block aggregation.
    config = OptConfig(threshold=64, coarsen_factor=8,
                       aggregate="multiblock", group_blocks=8)
    result = transform(SOURCE, config)

    print("=" * 72)
    print("Transformed source (%s):" % config.label)
    print("=" * 72)
    print(result.source)

    # 2. Run both versions; results must match, times should not.
    baseline, t_base = run(Module(SOURCE), offsets, data)
    optimized, t_opt = run(Module(result.program, result.meta),
                           offsets, data)

    assert baseline == optimized == int(data.sum())
    print("result: %d (identical for both versions)" % baseline)
    print("CDP baseline : %10d simulated cycles (%d dynamic launches)"
          % (t_base.total_time, t_base.device_launches))
    print("optimized    : %10d simulated cycles (%d dynamic launches)"
          % (t_opt.total_time, t_opt.device_launches))
    print("speedup      : %.2fx" % (t_base.total_time / t_opt.total_time))


if __name__ == "__main__":
    main()
