"""Coarsening transformation tests (Fig. 6 structure)."""

from repro.minicuda import ast, parse, print_source
from repro.minicuda.visitor import find_all
from repro.transforms import CoarseningPass
from repro.transforms.coarsening import CFACTOR_MACRO


def run_pass(source, factor=16):
    program = parse(source)
    meta = CoarseningPass(factor).run(program)
    return program, meta


class TestKernelRewrite:
    def test_gdim_param_appended(self, bfs_like_source):
        program, meta = run_pass(bfs_like_source)
        child = program.function("child")
        assert child.params[-1].name == "_gDim"
        assert child.params[-1].type.name == "dim3"
        assert meta.coarsened_kernels["child"]["gdim_param"] == "_gDim"

    def test_block_stride_loop_inserted(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        child = program.function("child")
        loops = find_all(child, ast.For)
        assert len(loops) == 1
        loop = loops[0]
        # init: int _bx = blockIdx.x; cond: _bx < _gDim.x; step: += gridDim.x
        text = print_source(program)
        assert "for (int _bx = blockIdx.x; _bx < _gDim.x; "\
               "_bx += gridDim.x)" in text

    def test_body_blockidx_replaced(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        child = program.function("child")
        loop = find_all(child, ast.For)[0]
        for member in find_all(loop.body, ast.Member):
            if isinstance(member.obj, ast.Ident):
                assert not (member.obj.name == "blockIdx"
                            and member.attr == "x")

    def test_launch_site_ceiling_divides(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        text = print_source(program)
        assert "_cgDim.x = (_ogDim.x + %s - 1) / %s" % (
            CFACTOR_MACRO, CFACTOR_MACRO) in text
        assert "child<<<_cgDim, 256>>>" in text

    def test_original_gdim_passed_as_arg(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        launch = find_all(program.function("parent"), ast.Launch)[0]
        last = launch.args[-1]
        assert isinstance(last, ast.Ident) and last.name == "_ogDim"

    def test_macro_recorded(self, bfs_like_source):
        _, meta = run_pass(bfs_like_source, factor=4)
        assert meta.macros[CFACTOR_MACRO] == 4

    def test_output_reparses(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        text = print_source(program)
        assert print_source(parse(text)) == text


class TestLegality:
    def test_barrier_child_is_coarsenable(self, barrier_child_source):
        # Unlike thresholding, barriers are fine under coarsening.
        program, meta = run_pass(barrier_child_source)
        assert "reduce_child" in meta.coarsened_kernels

    def test_multidimensional_child_coarsened_along_x(self):
        # y/z indices survive untouched; only x is block-strided.
        source = """
        __global__ void c(int *p) { p[blockIdx.y] = threadIdx.x; }
        __global__ void parent(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { c<<<(n + 31) / 32, 32>>>(p); }
        }
        """
        program, meta = run_pass(source)
        assert "c" in meta.coarsened_kernels
        text = print_source(program)
        assert "blockIdx.y" in text          # y index untouched
        assert "_bx < _gDim.x" in text       # x block-strided

    def test_guard_return_becomes_continue(self):
        source = """
        __global__ void c(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t >= n) { return; }
            p[t] = t;
        }
        __global__ void parent(int *p, int *sizes, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { c<<<(sizes[t] + 31) / 32, 32>>>(p, sizes[t]); }
        }
        """
        program, meta = run_pass(source)
        child = program.function("c")
        assert find_all(child, ast.Continue)
        assert not find_all(child, ast.Return)

    def test_child_coarsened_once_for_two_sites(self):
        source = """
        __global__ void c(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { p[t] = t; }
        }
        __global__ void parent(int *p, int *a, int *b, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) {
                c<<<(a[t] + 31) / 32, 32>>>(p, a[t]);
                c<<<(b[t] + 31) / 32, 32>>>(p, b[t]);
            }
        }
        """
        program, _ = run_pass(source)
        child = program.function("c")
        # exactly one extra param even with two launch sites
        assert [p.name for p in child.params].count("_gDim") == 1
        launches = find_all(program.function("parent"), ast.Launch)
        assert len(launches) == 2
        for launch in launches:
            assert isinstance(launch.args[-1], ast.Ident)
