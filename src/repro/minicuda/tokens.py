"""Token kinds and the token record produced by the lexer."""

from dataclasses import dataclass

# Token kinds. Kept as plain strings: they read well in parser code and in
# error messages, and there is exactly one producer (the lexer).
IDENT = "IDENT"
INT = "INT"
FLOAT = "FLOAT"
STRING = "STRING"
CHAR = "CHAR"
PUNCT = "PUNCT"
KEYWORD = "KEYWORD"
EOF = "EOF"

KEYWORDS = frozenset({
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "void", "int", "long", "unsigned", "float", "double", "bool", "char",
    "short", "const", "struct", "true", "false", "sizeof",
    # CUDA declaration qualifiers.
    "__global__", "__device__", "__host__", "__shared__", "__constant__",
    "__restrict__", "extern", "static", "inline", "__forceinline__",
})

# Multi-character punctuators, longest first so maximal munch works by
# scanning this tuple in order.
PUNCTUATORS = (
    "<<<", ">>>",
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)


@dataclass
class Token:
    """One lexical token with its source position (1-based line/col)."""

    kind: str
    value: str
    line: int = 0
    col: int = 0

    def is_punct(self, value):
        return self.kind == PUNCT and self.value == value

    def is_keyword(self, value):
        return self.kind == KEYWORD and self.value == value

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.kind, self.value, self.line, self.col)
