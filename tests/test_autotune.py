"""Autotuner tests (the Sec. VIII-C practical-tuning recipe)."""

import pytest

from repro.benchmarks import get_benchmark
from repro.harness import (TuningParams, hill_climb, predict_threshold,
                           quick_tune, tune)
from repro.harness.autotune import _count_below, _neighbors

SCALE = 0.12


@pytest.fixture(scope="module")
def bfs_setup():
    bench = get_benchmark("BFS")
    data = bench.build_dataset("KRON", SCALE)
    return bench, data


class TestPredictThreshold:
    def test_power_of_two(self, bfs_setup):
        bench, data = bfs_setup
        threshold = predict_threshold(bench, data)
        assert threshold & (threshold - 1) == 0

    def test_smaller_fraction_larger_threshold(self, bfs_setup):
        bench, data = bfs_setup
        loose = predict_threshold(bench, data, keep_fraction=0.9)
        tight = predict_threshold(bench, data, keep_fraction=0.05)
        assert tight >= loose

    def test_count_below(self):
        sizes = [1, 2, 2, 5, 9]
        assert _count_below(sizes, 1) == 0
        assert _count_below(sizes, 2) == 1
        assert _count_below(sizes, 3) == 3
        assert _count_below(sizes, 100) == 5


class TestQuickTune:
    def test_under_ten_runs(self, bfs_setup):
        bench, data = bfs_setup
        result = quick_tune(bench, data, "CDP+T+C+A")
        assert result.runs < 10

    def test_close_to_exhaustive_guided(self, bfs_setup):
        """The paper: sub-optimal parameters still yield a speedup close to
        the tuned optimum."""
        bench, data = bfs_setup
        quick = quick_tune(bench, data, "CDP+T+C+A")
        full = tune(bench, data, "CDP+T+C+A", strategy="guided")
        assert quick.best_time <= full.best_time * 1.6

    def test_respects_variant_letters(self, bfs_setup):
        bench, data = bfs_setup
        result = quick_tune(bench, data, "CDP+T")
        assert result.best.threshold is not None
        assert result.best.coarsen_factor is None
        assert result.best.granularity is None


class TestHillClimb:
    def test_never_worse_than_start(self, bfs_setup):
        bench, data = bfs_setup
        start = TuningParams(threshold=1, coarsen_factor=8,
                             granularity="block")
        from repro.harness import run_variant
        start_time = run_variant(bench, data, "CDP+T+C+A", start).total_time
        result = hill_climb(bench, data, "CDP+T+C+A", start=start,
                            budget=12)
        assert result.best_time <= start_time

    def test_budget_respected(self, bfs_setup):
        bench, data = bfs_setup
        result = hill_climb(bench, data, "CDP+T+C+A", budget=6)
        assert result.runs <= 6

    def test_neighbors_shapes(self):
        params = TuningParams(threshold=32, coarsen_factor=8,
                              granularity="multiblock", group_blocks=8)
        neighbors = _neighbors(params, "CDP+T+C+A")
        thresholds = {n.threshold for n in neighbors}
        assert {64, 16} <= thresholds
        grans = {n.granularity for n in neighbors}
        assert "warp" not in grans
        groups = {n.group_blocks for n in neighbors
                  if n.granularity == "multiblock"}
        assert {16, 4} <= groups

    def test_neighbors_respect_label(self):
        params = TuningParams(threshold=32)
        neighbors = _neighbors(params, "CDP+T")
        assert all(n.coarsen_factor is None for n in neighbors)
        assert all(n.granularity is None for n in neighbors)
