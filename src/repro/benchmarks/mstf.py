"""MSTF — Borůvka minimum spanning tree, *find* kernel (Lonestar-style).

Each vertex scans its adjacency list for the lightest edge leaving its
component and publishes it with an encoded atomicMin on the component's
slot. The driver runs the find phase over a pre-computed component
labelling with a skewed component-size distribution (mid-algorithm state).
"""

import numpy as np

from ..datasets import kron_graph, web_graph
from ..runtime.host import blocks
from .common import INF, Benchmark, scaled

_ENC = 1 << 20   # weight * _ENC + edge index; weights < 64, edges < _ENC

_CHILD = """
__global__ void mstf_child(int *col, int *wts, int *comp, int *best,
                           int cu, int start, int degree) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int v = col[start + tid];
        if (comp[v] != cu) {
            int enc = wts[start + tid] * %(enc)d + (start + tid);
            atomicMin(&best[cu], enc);
        }
    }
}
"""

_CDP_PARENT = """
__global__ void mstf_kernel(int *row, int *col, int *wts, int *comp,
                            int *best, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int start = row[u];
        int degree = row[u + 1] - start;
        int cu = comp[u];
        if (degree > 0) {
            mstf_child<<<(degree + %(cb)d - 1) / %(cb)d, %(cb)d>>>(
                col, wts, comp, best, cu, start, degree);
        }
    }
}
"""

_NOCDP = """
__global__ void mstf_kernel(int *row, int *col, int *wts, int *comp,
                            int *best, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int start = row[u];
        int end = row[u + 1];
        int cu = comp[u];
        for (int i = start; i < end; ++i) {
            int v = col[i];
            if (comp[v] != cu) {
                int enc = wts[i] * %(enc)d + i;
                atomicMin(&best[cu], enc);
            }
        }
    }
}
"""


def skewed_components(num_vertices, seed=11):
    """A mid-Borůvka component labelling: few big components, many small."""
    rng = np.random.default_rng(seed)
    labels = np.zeros(num_vertices, dtype=np.int64)
    next_label = 0
    index = 0
    while index < num_vertices:
        size = int(rng.pareto(1.2) * 4) + 1
        labels[index:index + size] = next_label
        next_label += 1
        index += size
    return rng.permutation(labels)


class MSTFBenchmark(Benchmark):
    name = "MSTF"
    dataset_names = ("KRON", "CNR", "ROAD-NY")
    child_block = 32

    def cdp_source(self):
        return (_CHILD + _CDP_PARENT) % {"cb": self.child_block, "enc": _ENC}

    def nocdp_source(self):
        return _NOCDP % {"enc": _ENC}

    def build_dataset(self, dataset_name, scale=1.0):
        if dataset_name == "KRON":
            return kron_graph(scale=max(7, 11 + int(np.log2(max(scale, 1e-6)))))
        if dataset_name == "CNR":
            return web_graph(n=scaled(3000, scale, 200))
        if dataset_name == "ROAD-NY":
            from ..datasets import road_graph
            side = scaled(50, scale ** 0.5, 12)
            return road_graph(width=side, height=side)
        raise KeyError(dataset_name)

    def drive(self, device, graph):
        n = graph.num_vertices
        row = device.upload(graph.row)
        col = device.upload(graph.col)
        wts = device.upload(graph.weights)
        comp = device.upload(skewed_components(n))
        best = device.alloc("int", n, fill=INF)
        device.launch("mstf_kernel", blocks(n, 256), 256,
                      row, col, wts, comp, best, n)
        device.sync()
        return {"best": best.to_numpy()}
