"""Shared benchmark configuration.

Every bench regenerates one table or figure of the paper and writes the
formatted result to ``benchmarks/out/``. Scales are chosen so the full
suite completes in minutes on a laptop; pass ``--repro-scale`` to raise
them (EXPERIMENTS.md records runs at scale 0.5).
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def pytest_addoption(parser):
    parser.addoption("--repro-scale", action="store", type=float,
                     default=0.35,
                     help="dataset scale for figure regeneration benches "
                          "(docs/reproducing.md discusses scale choices)")
    parser.addoption("--repro-jobs", action="store", type=int, default=1,
                     help="worker processes for the sweep engine "
                          "(1 = in-process serial)")
    parser.addoption("--repro-backend", action="store", default=None,
                     help="sweep backend: serial, process, thread, "
                          "futures, or remote (default: serial for "
                          "--repro-jobs 1, process otherwise; remote "
                          "needs --repro-workers)")
    parser.addoption("--repro-workers", action="store", default=None,
                     help="remote worker daemons (HOST:PORT,...) to shard "
                          "the figure grids across; implies the remote "
                          "backend (start them with 'repro worker serve')")
    parser.addoption("--repro-cache", action="store", default=None,
                     help="persistent sweep result-cache directory; unset "
                          "disables caching")


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def sweep_executor(request):
    """The shared sweep engine the benches route their run grids through.

    ``--repro-jobs N`` parallelizes, ``--repro-backend`` picks the
    execution backend (serial/process/thread/futures/remote),
    ``--repro-workers HOST:PORT,...`` shards the grids across remote
    worker daemons, and ``--repro-cache DIR`` makes re-runs skip
    already-simulated points. With no flag this is None: the figure
    benches then take the historical serial path, which also
    cross-checks every simulated point's outputs against the No-CDP
    reference (executor workers return timings only).
    """
    from repro.harness import ResultCache, SweepExecutor

    cache_dir = request.config.getoption("--repro-cache")
    jobs = request.config.getoption("--repro-jobs")
    backend = request.config.getoption("--repro-backend")
    workers = request.config.getoption("--repro-workers")
    if jobs <= 1 and not cache_dir and backend is None and not workers:
        yield None
        return
    executor = SweepExecutor(
        jobs=jobs, backend=backend, workers=workers,
        cache=ResultCache(cache_dir) if cache_dir else None)
    yield executor
    executor.close()


@pytest.fixture(scope="session")
def out_dir():
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def save(out_dir, name, text):
    path = os.path.join(out_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
