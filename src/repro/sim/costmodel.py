"""Cycle cost model.

The engine counts the *work* of each simulated thread in abstract cycles
using these per-operation weights; the scheduler (:mod:`repro.sim.scheduler`)
turns per-block work into time on a device model. Absolute values are not
calibrated to any physical GPU — what matters for reproducing the paper is
the *ratio* structure: memory ≫ ALU, atomics ≫ memory, launches ≫ atomics,
host round-trips ≫ device launches.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle weights used at code-generation time."""

    alu: int = 1              # arithmetic / logic / comparison
    mem: int = 10             # amortized global-memory access
    atomic: int = 24          # global atomic RMW
    fence: int = 12           # __threadfence
    sync: int = 8             # __syncthreads
    math_fn: int = 8          # transcendental / sqrt / ceil
    call: int = 2             # device-function call overhead
    launch_issue: int = 220   # parent-side cost of issuing a dynamic launch
    cdp_code_tax: int = 40    # per-thread overhead of kernels that merely
                              # *contain* a dynamic launch (Sec. VIII-D:
                              # extra instructions are generated and executed
                              # even when the launch never runs)

    def call_cost(self, name):
        """Weight of one intrinsic call by name (0 for unknown/device)."""
        return _CALL_COSTS.get(name, 0)


_ATOMICS = ("atomicAdd", "atomicSub", "atomicMax", "atomicMin",
            "atomicCAS", "atomicExch", "atomicOr", "atomicAnd")
_MATH = ("ceil", "ceilf", "floor", "floorf", "sqrt", "sqrtf", "rsqrtf",
         "exp", "expf", "log", "logf", "pow", "powf", "tanh", "tanhf")
_CHEAP = ("min", "max", "abs", "fabs", "fabsf", "fminf", "fmaxf", "dim3")

_DEFAULT = CostModel()
_CALL_COSTS = {}
for _name in _ATOMICS:
    _CALL_COSTS[_name] = _DEFAULT.atomic
for _name in _MATH:
    _CALL_COSTS[_name] = _DEFAULT.math_fn
for _name in _CHEAP:
    _CALL_COSTS[_name] = _DEFAULT.alu
_CALL_COSTS["__threadfence"] = _DEFAULT.fence
_CALL_COSTS["__threadfence_block"] = _DEFAULT.fence
_CALL_COSTS["printf"] = _DEFAULT.alu
_CALL_COSTS["cudaMalloc"] = _DEFAULT.mem


def call_cost(cost_model, name):
    """Weight of one intrinsic call under *cost_model* (scaled from default
    ratios so custom models keep sensible relative costs)."""
    if name in _ATOMICS:
        return cost_model.atomic
    if name in _MATH:
        return cost_model.math_fn
    if name in _CHEAP:
        return cost_model.alu
    if name in ("__threadfence", "__threadfence_block"):
        return cost_model.fence
    if name == "printf":
        return cost_model.alu
    if name == "cudaMalloc":
        return cost_model.mem
    return 0
