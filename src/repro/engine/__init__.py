"""Execution engine: transpiles miniCUDA kernels to Python and runs them
functionally with cycle accounting."""

from .builtins import c_div, c_mod
from .cache import (CompiledKernelCache, KERNEL_CACHE, codegen_cache_key,
                    compiled_module)
from .codegen import generate_module_source
from .executor import ExecContext, run_grid
from .module import KernelHandle, Module, ModuleArtifact, compile_artifact
from .values import Dim3, Ptr, alloc_for_type

__all__ = [
    "c_div", "c_mod", "generate_module_source", "ExecContext", "run_grid",
    "CompiledKernelCache", "KERNEL_CACHE", "codegen_cache_key",
    "compiled_module",
    "KernelHandle", "Module", "ModuleArtifact", "compile_artifact",
    "Dim3", "Ptr", "alloc_for_type",
]
