"""Figure 11 — speedup vs launch threshold for each aggregation granularity
(Sec. VIII-C), one panel per benchmark like the paper's seven plots."""

import pytest

from repro.harness import figure11

from conftest import save

#: (benchmark, dataset, coarsening factor) — the paper's Fig. 11 panels,
#: with each panel's fixed (best) coarsening factor.
PANELS = (
    ("BFS", "KRON", 16),
    ("BT", "T2048-C64", 2),
    ("MSTF", "KRON", 32),
    ("MSTV", "KRON", 1),
    ("SSSP", "KRON", 8),
    ("TC", "KRON", 32),
    ("SP", "5-SAT", 32),
)


@pytest.mark.parametrize("bench_name,dataset,cfactor", PANELS)
def test_figure11_panel(benchmark, repro_scale, out_dir, bench_name,
                        dataset, cfactor, sweep_executor):
    fig = benchmark.pedantic(
        figure11, args=(bench_name, dataset),
        kwargs={"scale": repro_scale, "coarsen_factor": cfactor,
                "executor": sweep_executor},
        rounds=1, iterations=1)
    text = fig.format()
    save(out_dir, "figure11_%s_%s.txt" % (bench_name, dataset), text)
    print()
    print(text)

    # Observation 1 (most benchmarks): increasing the threshold initially
    # improves performance over no thresholding, for the best granularity.
    best_series = max(fig.series.values(),
                      key=lambda points: max(points.values()))
    baseline = best_series[None]
    assert max(best_series.values()) >= baseline * 0.95
