"""Sec. VIII-C robustness study — a fixed threshold of 128 for every
benchmark/dataset still captures most of thresholding's benefit."""

from repro.harness import fixed_threshold_study

from conftest import save

PAIRS = (("BFS", "KRON"), ("BFS", "CNR"), ("SSSP", "KRON"),
         ("MSTF", "KRON"), ("MSTV", "CNR"), ("SP", "RAND-3"),
         ("BT", "T0032-C16"))


def test_fixed_threshold(benchmark, repro_scale, out_dir, sweep_executor):
    result = benchmark.pedantic(
        fixed_threshold_study,
        kwargs={"scale": repro_scale, "pairs": PAIRS,
                "executor": sweep_executor},
        rounds=1, iterations=1)
    text = result.format()
    save(out_dir, "fixed_threshold.txt", text)
    print()
    print(text)

    # Tuned is at least as good as fixed, and fixed retains real benefit
    # (paper: 1.9x fixed vs 3.1x tuned over CDP+C+A).
    assert result.tuned_geomean >= result.fixed_geomean * 0.99
    assert result.fixed_geomean > 0.5
