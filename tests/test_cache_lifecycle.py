"""Cache lifecycle tests: size accounting, LRU-ish pruning, stranded
.tmp sweeping, and the figure-level artifact cache."""

import os
import time

from repro.harness import (FigureArtifactCache, ResultCache, SweepExecutor,
                           TuningParams, figure11, point_key, sweep_grid)
from repro.harness import figures as figures_mod

SCALE = 0.08

POINTS = sweep_grid((("BFS", "KRON"), ("SSSP", "KRON")),
                    ("CDP", "CDP+T"), scale=SCALE,
                    params=TuningParams(threshold=16))


def _filled_cache(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    SweepExecutor(cache=cache).run(POINTS)
    return cache


def _entry_paths(cache):
    return sorted(os.path.join(cache.cache_dir, name)
                  for name in os.listdir(cache.cache_dir)
                  if name.endswith(".json"))


class TestInfo:
    def test_counts_entries_and_bytes(self, tmp_path):
        cache = _filled_cache(tmp_path)
        info = cache.info()
        assert info.result_entries == len(POINTS)
        assert info.result_bytes == sum(
            os.path.getsize(p) for p in _entry_paths(cache))
        assert info.artifact_entries == 0
        assert info.tmp_files == 0
        assert info.entries == len(POINTS)
        assert info.total_bytes == info.result_bytes
        assert "result entries" in info.format()

    def test_counts_stranded_tmp(self, tmp_path):
        cache = _filled_cache(tmp_path)
        with open(os.path.join(cache.cache_dir, "dead.tmp"), "w") as handle:
            handle.write("stranded")
        info = cache.info()
        assert info.tmp_files == 1
        assert info.tmp_bytes == len("stranded")


class TestPrune:
    def test_max_entries_evicts_oldest(self, tmp_path):
        cache = _filled_cache(tmp_path)
        paths = _entry_paths(cache)
        now = time.time()
        # Make the first two entries old, the rest fresh.
        for age, path in enumerate(paths):
            os.utime(path, (now - 1000 + age, now - 1000 + age))
        os.utime(paths[2], (now, now))
        os.utime(paths[3], (now, now))
        report = cache.prune(max_entries=2)
        assert report.removed_entries == 2
        assert report.removed_bytes > 0
        remaining = _entry_paths(cache)
        assert remaining == sorted(paths[2:4])

    def test_max_bytes_bounds_total(self, tmp_path):
        cache = _filled_cache(tmp_path)
        budget = cache.info().result_bytes // 2
        cache.prune(max_bytes=budget)
        assert cache.info().total_bytes <= budget
        assert len(cache) > 0      # eviction stops at the bound

    def test_hit_refreshes_mtime(self, tmp_path):
        cache = _filled_cache(tmp_path)
        old = time.time() - 1000
        for path in _entry_paths(cache):
            os.utime(path, (old, old))
        cache.get(POINTS[0])       # LRU touch
        cache.prune(max_entries=1)
        survivor, = _entry_paths(cache)
        assert survivor.endswith(point_key(POINTS[0]) + ".json")

    def test_prune_sweeps_stale_tmp(self, tmp_path):
        cache = _filled_cache(tmp_path)
        tmp = os.path.join(cache.cache_dir, "stranded.tmp")
        with open(tmp, "w") as handle:
            handle.write("x")
        # A fresh .tmp survives the default age cutoff (a live writer).
        report = cache.prune()
        assert report.removed_tmp == 0
        assert os.path.exists(tmp)
        report = cache.prune(tmp_max_age=0)
        assert report.removed_tmp == 1
        assert not os.path.exists(tmp)
        assert len(cache) == len(POINTS)       # entries untouched
        assert "swept 1 stale .tmp" in report.format()

    def test_noop_without_bounds(self, tmp_path):
        cache = _filled_cache(tmp_path)
        report = cache.prune()
        assert report.removed_entries == 0
        assert len(cache) == len(POINTS)


class TestClear:
    def test_clear_removes_stranded_tmp(self, tmp_path):
        """Regression: a run killed between mkstemp and os.replace strands
        a .tmp file that clear() used to leave behind forever."""
        cache = _filled_cache(tmp_path)
        tmp = os.path.join(cache.cache_dir, "killed-run.tmp")
        with open(tmp, "w") as handle:
            handle.write("partial write")
        removed = cache.clear()
        assert removed == len(POINTS) + 1
        assert not os.path.exists(tmp)
        assert len(cache) == 0

    def test_clear_removes_artifacts(self, tmp_path):
        cache = _filled_cache(tmp_path)
        artifacts = FigureArtifactCache(cache.cache_dir)
        artifacts.put("figure11", {"scale": "0.08"}, {"dummy": 1})
        assert cache.info().artifact_entries == 1
        cache.clear()
        info = cache.info()
        assert info.artifact_entries == 0
        assert info.result_entries == 0


class TestFigureArtifacts:
    def test_roundtrip(self, tmp_path):
        artifacts = FigureArtifactCache(str(tmp_path / "cache"))
        spec = {"benchmark": "BFS", "scale": "0.05"}
        assert artifacts.get("figure11", spec) is None
        fig = figure11("BFS", "KRON", scale=SCALE)
        artifacts.put("figure11", spec, fig)
        cached = artifacts.get("figure11", spec)
        assert cached.series == fig.series
        assert (artifacts.hits, artifacts.misses) == (1, 1)

    def test_spec_distinguishes_keys(self, tmp_path):
        artifacts = FigureArtifactCache(str(tmp_path / "cache"))
        artifacts.put("figure11", {"scale": "0.1"}, "a")
        assert artifacts.get("figure11", {"scale": "0.2"}) is None
        assert artifacts.get("figure12", {"scale": "0.1"}) is None
        assert artifacts.get("figure11", {"scale": "0.1"}) == "a"

    def test_corrupted_artifact_recovers(self, tmp_path):
        artifacts = FigureArtifactCache(str(tmp_path / "cache"))
        spec = {"scale": "0.1"}
        artifacts.put("figure11", spec, "payload")
        path = artifacts._path("figure11", spec)
        with open(path, "wb") as handle:
            handle.write(b"\x80not a pickle")
        assert artifacts.get("figure11", spec) is None
        assert not os.path.exists(path)

    def test_warm_figure_skips_simulation(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        cold = figure11("BFS", "KRON", scale=SCALE, artifacts=cache_dir)

        def banned(*args, **kwargs):
            raise AssertionError("simulator invoked on a warm figure run")

        monkeypatch.setattr(figures_mod, "run_variant", banned)
        monkeypatch.setattr(figures_mod, "tune", banned)
        warm = figure11("BFS", "KRON", scale=SCALE, artifacts=cache_dir)
        assert warm.series == cold.series
        assert warm.thresholds == cold.thresholds

    def test_artifact_spec_changes_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        figure11("BFS", "KRON", scale=SCALE, artifacts=cache_dir)
        artifacts = FigureArtifactCache(cache_dir)
        before = len(os.listdir(artifacts.cache_dir))
        figure11("BFS", "KRON", scale=SCALE, coarsen_factor=4,
                 artifacts=cache_dir)
        assert len(os.listdir(artifacts.cache_dir)) == before + 1
