"""BFS — level-synchronous breadth-first search (SHOC-style, Table I).

Nested parallelism: a frontier vertex's unvisited neighbors. The CDP parent
launches one child grid per frontier vertex; the No-CDP parent iterates the
adjacency list in the parent thread.
"""

import numpy as np

from ..datasets import kron_graph, road_graph, web_graph
from ..runtime.host import blocks
from .common import Benchmark, scaled

_CHILD = """
__global__ void bfs_child(int *col, int *dist, int *out_f, int *out_n,
                          int level, int start, int degree) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int v = col[start + tid];
        if (atomicCAS(&dist[v], -1, level) == -1) {
            int idx = atomicAdd(out_n, 1);
            out_f[idx] = v;
        }
    }
}
"""

_CDP_PARENT = """
__global__ void bfs_kernel(int *row, int *col, int *dist, int *in_f,
                           int in_n, int *out_f, int *out_n, int level) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < in_n) {
        int u = in_f[tid];
        int start = row[u];
        int degree = row[u + 1] - start;
        if (degree > 0) {
            bfs_child<<<(degree + %(cb)d - 1) / %(cb)d, %(cb)d>>>(
                col, dist, out_f, out_n, level, start, degree);
        }
    }
}
"""

_NOCDP = """
__global__ void bfs_kernel(int *row, int *col, int *dist, int *in_f,
                           int in_n, int *out_f, int *out_n, int level) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < in_n) {
        int u = in_f[tid];
        int start = row[u];
        int end = row[u + 1];
        for (int i = start; i < end; ++i) {
            int v = col[i];
            if (atomicCAS(&dist[v], -1, level) == -1) {
                int idx = atomicAdd(out_n, 1);
                out_f[idx] = v;
            }
        }
    }
}
"""


class BFSBenchmark(Benchmark):
    name = "BFS"
    dataset_names = ("KRON", "CNR", "ROAD-NY")
    child_block = 32

    def cdp_source(self):
        return _CHILD + _CDP_PARENT % {"cb": self.child_block}

    def nocdp_source(self):
        return _NOCDP

    def build_dataset(self, dataset_name, scale=1.0):
        if dataset_name == "KRON":
            return kron_graph(scale=max(7, 11 + int(np.log2(max(scale, 1e-6)))))
        if dataset_name == "CNR":
            return web_graph(n=scaled(3000, scale, 200))
        if dataset_name == "ROAD-NY":
            side = scaled(50, scale ** 0.5, 12)
            return road_graph(width=side, height=side)
        raise KeyError(dataset_name)

    def source_vertex(self, graph):
        return int(np.argmax(graph.degrees()))

    def drive(self, device, graph):
        n = graph.num_vertices
        row = device.upload(graph.row)
        col = device.upload(graph.col)
        dist = device.alloc("int", n, fill=-1)
        frontier_a = device.alloc("int", n)
        frontier_b = device.alloc("int", n)
        out_n = device.alloc("int", 1)

        src = self.source_vertex(graph)
        dist.array[src] = 0
        frontier_a.array[0] = src
        in_n, level = 1, 1
        in_f, out_f = frontier_a, frontier_b
        while in_n > 0:
            out_n.array[0] = 0
            device.launch("bfs_kernel", blocks(in_n, 256), 256,
                          row, col, dist, in_f, in_n, out_f, out_n, level)
            device.sync()
            in_n = int(out_n[0])
            in_f, out_f = out_f, in_f
            level += 1
        return {"dist": dist.to_numpy()}
