"""Engine tests: transpiled kernels execute with correct semantics."""

import numpy as np
import pytest

from repro.engine import Dim3, Module, alloc_for_type, run_grid
from repro.errors import CodegenError, RuntimeLaunchError
from repro.minicuda.ast import Type
from repro.sim import CostModel, Trace


def run(source, kernel, grid, block, *args, module=None):
    module = module or Module(source)
    trace = Trace()
    record = run_grid(module, trace, kernel, Dim3.of(grid), Dim3.of(block),
                      args)
    return module, trace, record


def int_array(values):
    p = alloc_for_type(Type("int"), len(values))
    p.array[:] = values
    return p


class TestBasicSemantics:
    def test_thread_indexing(self):
        src = """
        __global__ void k(int *out, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { out[t] = t * 2; }
        }
        """
        out = alloc_for_type(Type("int"), 10)
        run(src, "k", 3, 4, out, 10)
        assert list(out.array) == [2 * i for i in range(10)]

    def test_for_loop_and_compound_assign(self):
        src = """
        __global__ void k(int *out, int n) {
            int s = 0;
            for (int i = 1; i <= n; ++i) { s += i; }
            out[threadIdx.x] = s;
        }
        """
        out = alloc_for_type(Type("int"), 1)
        run(src, "k", 1, 1, out, 10)
        assert out[0] == 55

    def test_while_break_continue(self):
        src = """
        __global__ void k(int *out) {
            int i = 0;
            int s = 0;
            while (true) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                s += i;
            }
            out[0] = s;
        }
        """
        out = alloc_for_type(Type("int"), 1)
        run(src, "k", 1, 1, out)
        assert out[0] == 25  # 1+3+5+7+9

    def test_do_while(self):
        src = """
        __global__ void k(int *out) {
            int i = 0;
            do { i = i + 1; } while (i < 5);
            out[0] = i;
        }
        """
        out = alloc_for_type(Type("int"), 1)
        run(src, "k", 1, 1, out)
        assert out[0] == 5

    def test_int_division_truncation(self):
        src = """
        __global__ void k(int *out, int a, int b) {
            out[0] = a / b;
            out[1] = a % b;
        }
        """
        out = alloc_for_type(Type("int"), 2)
        run(src, "k", 1, 1, out, -7, 2)
        assert out[0] == -3 and out[1] == -1

    def test_float_math_and_cast(self):
        src = """
        __global__ void k(float *out, int n) {
            float x = (float)n / 2.0f;
            out[0] = sqrtf(x * x);
            out[1] = (float)((int)3.9f);
        }
        """
        out = alloc_for_type(Type("float"), 2)
        run(src, "k", 1, 1, out, 6)
        assert out[0] == pytest.approx(3.0)
        assert out[1] == pytest.approx(3.0)

    def test_ternary_and_logical_ops(self):
        src = """
        __global__ void k(int *out, int a, int b) {
            out[0] = (a > b && a > 0) ? a : b;
            out[1] = (a < 0 || b < 0) ? 1 : 0;
        }
        """
        out = alloc_for_type(Type("int"), 2)
        run(src, "k", 1, 1, out, 5, 3)
        assert out[0] == 5 and out[1] == 0

    def test_device_function_call_in_expression(self):
        src = """
        __device__ int square(int x) { return x * x; }
        __global__ void k(int *out, int n) {
            out[0] = square(n) + square(2);
        }
        """
        out = alloc_for_type(Type("int"), 1)
        run(src, "k", 1, 1, out, 5)
        assert out[0] == 29

    def test_dim3_value_semantics(self):
        src = """
        __global__ void k(int *out) {
            dim3 a = dim3(4, 5, 6);
            dim3 b = a;
            b.x = 99;
            out[0] = a.x;
            out[1] = b.x;
            out[2] = b.y;
        }
        """
        out = alloc_for_type(Type("int"), 3)
        run(src, "k", 1, 1, out)
        assert list(out.array) == [4, 99, 5]

    def test_global_device_variable(self):
        src = """
        __device__ int counter = 0;
        __global__ void k(int *out) {
            atomicAdd(&counter, 1);
            out[0] = counter;
        }
        """
        module, _, _ = run(src, "k", 1, 8,
                           alloc_for_type(Type("int"), 1))
        assert module.global_ptr("counter")[0] == 8

    def test_pointer_params_shared_between_threads(self):
        src = """
        __global__ void k(int *data) {
            atomicAdd(&data[0], threadIdx.x);
        }
        """
        data = alloc_for_type(Type("int"), 1)
        run(src, "k", 2, 8, data)
        assert data[0] == 2 * sum(range(8))


class TestAtomics:
    def test_atomic_cas_returns_old(self):
        src = """
        __global__ void k(int *cell, int *old) {
            old[threadIdx.x] = atomicCAS(&cell[0], -1, threadIdx.x);
        }
        """
        cell = int_array([-1])
        old = alloc_for_type(Type("int"), 4)
        run(src, "k", 1, 4, cell, old)
        assert cell[0] == 0          # only thread 0 wins
        assert old[0] == -1          # old value seen by winner
        assert all(o == 0 for o in old.array[1:])

    def test_atomic_max_min_exch(self):
        src = """
        __global__ void k(int *cells) {
            atomicMax(&cells[0], threadIdx.x);
            atomicMin(&cells[1], threadIdx.x);
            atomicExch(&cells[2], threadIdx.x);
        }
        """
        cells = int_array([-100, 100, -1])
        run(src, "k", 1, 8, cells)
        assert cells[0] == 7
        assert cells[1] == 0
        assert cells[2] == 7


class TestBarriers:
    def test_syncthreads_synchronizes_clocks(self):
        # Thread 0 does heavy work before the barrier; all threads must
        # leave the barrier at thread 0's (max) cycle count.
        src = """
        __global__ void k(int *out, int n) {
            int s = 0;
            if (threadIdx.x == 0) {
                for (int i = 0; i < n; ++i) { s += i; }
            }
            __syncthreads();
            out[threadIdx.x] = s;
        }
        """
        module = Module(src)
        assert module.kernel("k").has_barrier
        out = alloc_for_type(Type("int"), 32)
        _, trace, record = run(src, "k", 1, 32, out, 100, module=module)
        # thread 0 computed the sum; everyone waited
        assert out[0] == sum(range(100))

    def test_barrier_data_exchange(self):
        src = """
        __global__ void k(int *buf, int *out) {
            buf[threadIdx.x] = threadIdx.x * 10;
            __syncthreads();
            out[threadIdx.x] = buf[(threadIdx.x + 1) % blockDim.x];
        }
        """
        buf = alloc_for_type(Type("int"), 4)
        out = alloc_for_type(Type("int"), 4)
        run(src, "k", 1, 4, buf, out)
        assert list(out.array) == [10, 20, 30, 0]

    def test_early_exit_thread_does_not_deadlock(self):
        src = """
        __global__ void k(int *out, int n) {
            if (threadIdx.x >= n) { return; }
            __syncthreads();
            out[threadIdx.x] = 1;
        }
        """
        out = alloc_for_type(Type("int"), 8)
        run(src, "k", 1, 8, out, 4)
        assert out.array.sum() == 4

    def test_barrier_in_device_function_rejected(self):
        src = """
        __device__ void helper() { __syncthreads(); }
        __global__ void k(int *p) { helper(); p[0] = 1; }
        """
        with pytest.raises(CodegenError):
            Module(src)


class TestLaunches:
    def test_dynamic_launch_recorded_and_executed(self):
        src = """
        __global__ void child(int *out, int v) {
            out[threadIdx.x] = v;
        }
        __global__ void parent(int *out) {
            if (threadIdx.x == 0) {
                child<<<1, 4>>>(out, 7);
            }
        }
        """
        out = alloc_for_type(Type("int"), 4)
        _, trace, record = run(src, "parent", 1, 32, out)
        assert list(out.array) == [7, 7, 7, 7]
        assert len(trace.grids) == 2
        child = trace.grids[1]
        assert child.is_dynamic
        assert child.launch.parent_grid is record
        assert child.launch.issue_offset > 0

    def test_grandchild_launch(self):
        src = """
        __global__ void leaf(int *out) { out[0] = out[0] + 1; }
        __global__ void mid(int *out) {
            if (threadIdx.x == 0) { leaf<<<1, 1>>>(out); }
        }
        __global__ void root(int *out) {
            if (threadIdx.x == 0) { mid<<<1, 32>>>(out); }
        }
        """
        out = alloc_for_type(Type("int"), 1)
        _, trace, _ = run(src, "root", 1, 32, out)
        assert out[0] == 1
        assert [g.kernel for g in trace.grids] == ["root", "mid", "leaf"]

    def test_empty_launch_config_rejected(self):
        src = "__global__ void k(int *p) { p[0] = 1; }"
        with pytest.raises(RuntimeLaunchError):
            run(src, "k", 0, 32, alloc_for_type(Type("int"), 1))


class TestCostAccounting:
    def test_cycles_positive_and_scale_with_work(self):
        src = """
        __global__ void k(int *out, int n) {
            int s = 0;
            for (int i = 0; i < n; ++i) { s += out[i % 4]; }
            out[0] = s;
        }
        """
        out_small = alloc_for_type(Type("int"), 4)
        _, _, small = run(src, "k", 1, 1, out_small, 10)
        out_big = alloc_for_type(Type("int"), 4)
        _, _, big = run(src, "k", 1, 1, out_big, 1000)
        assert big.total_cycles > small.total_cycles * 20

    def test_cdp_code_tax_applied(self):
        plain = "__global__ void k(int *p, int n) { p[0] = n; }"
        with_launch = """
        __global__ void c(int *p, int n) { p[0] = n; }
        __global__ void k(int *p, int n) {
            p[0] = n;
            if (n > 1000000) { c<<<1, 1>>>(p, n); }
        }
        """
        out1 = alloc_for_type(Type("int"), 1)
        _, _, r1 = run(plain, "k", 1, 32, out1, 5)
        out2 = alloc_for_type(Type("int"), 1)
        _, _, r2 = run(with_launch, "k", 1, 32, out2, 5)
        tax = CostModel().cdp_code_tax
        assert r2.total_cycles >= r1.total_cycles + 32 * tax

    def test_warp_cost_is_max_of_threads(self):
        # One slow thread in the warp dominates the warp cost (divergence).
        src = """
        __global__ void k(int *out, int n) {
            int s = 0;
            if (threadIdx.x == 0) {
                for (int i = 0; i < n; ++i) { s += i; }
            }
            out[threadIdx.x] = s;
        }
        """
        out = alloc_for_type(Type("int"), 32)
        _, _, record = run(src, "k", 1, 32, out, 500)
        block = record.blocks[0]
        assert block.max_warp == block.sum_warp  # single warp
        assert block.max_warp > 500  # dominated by the looping thread

    def test_region_counters_default_zero(self):
        src = "__global__ void k(int *p) { p[0] = 1; }"
        _, _, record = run(src, "k", 1, 1, alloc_for_type(Type("int"), 1))
        assert record.reg_agg == 0
        assert record.reg_disagg == 0


class TestCodegenErrors:
    def test_unknown_identifier(self):
        with pytest.raises(CodegenError) as err:
            Module("__global__ void k(int *p) { p[0] = MYSTERY; }")
        assert "MYSTERY" in str(err.value)

    def test_macro_resolves_identifier(self):
        from repro.transforms.base import ModuleMeta
        meta = ModuleMeta(macros={"MYSTERY": 42})
        module = Module("__global__ void k(int *p) { p[0] = MYSTERY; }",
                        meta)
        out = alloc_for_type(Type("int"), 1)
        trace = Trace()
        run_grid(module, trace, "k", Dim3(1), Dim3(1), (out,))
        assert out[0] == 42

    def test_local_array_per_thread(self):
        src = """
        __global__ void k(int *out) {
            int buf[4];
            buf[0] = threadIdx.x;
            buf[1] = buf[0] * 2;
            out[threadIdx.x] = buf[1];
        }
        """
        out = alloc_for_type(Type("int"), 4)
        run(src, "k", 1, 4, out)
        assert list(out.array) == [0, 2, 4, 6]

    def test_unknown_call_rejected(self):
        with pytest.raises(CodegenError):
            Module("__global__ void k(int *p) { frobnicate(p); }")

    def test_kernel_lookup_error(self):
        module = Module("__global__ void k(int *p) { p[0] = 1; }")
        with pytest.raises(CodegenError):
            module.kernel("nope")
