"""Engine-path benchmark: the per-commit ``BENCH_engine.json`` artifact.

Times one pinned sweep point end-to-end (compile → functional execution →
timing simulation) cold (compiled-kernel cache cleared before every
sample) and warm (second identical point), and records the codegen-cache
hit/miss counters that *prove* the warm pass never re-lexed/re-parsed/
re-transpiled anything. CI's ``bench-trend`` job uploads the artifact on
every push and fails if the cold per-point latency regresses more than
25% against the committed baseline (``benchmarks/BENCH_engine_baseline
.json``), after normalizing by an interpreter calibration loop so the
gate compares codegen cost, not runner hardware.

Standalone on purpose (no pytest-benchmark): the artifact must exist
even on runners without the benchmarking extras.

    PYTHONPATH=src python benchmarks/bench_engine.py --out BENCH_engine.json

Exit status is non-zero when the counters contradict the caching
contract (a warm point that compiled something), when the cold/warm
speedup drops below the floor the repo promises (≥5×), or when the
baseline gate trips — a lying benchmark is worse than none.
"""

import argparse
import json
import os
import statistics
import sys
import time

#: The pinned point: TC's CDP+T+C+A is the compile-heaviest variant in the
#: suite, at a scale small enough that codegen dominates the cold path.
#: Changing any of this breaks trend comparability — bump ``schema`` if
#: you must.
BENCHMARK = "TC"
DATASET = "KRON"
LABEL = "CDP+T+C+A"
THRESHOLD = 16
COARSEN = 2
GRANULARITY = "multiblock"
GROUP_BLOCKS = 4
SCALE = 0.03

#: Cold/warm end-to-end ratio the repo promises (acceptance floor).
MIN_SPEEDUP = 5.0

#: Committed reference the CI gate compares against.
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "BENCH_engine_baseline.json")

#: Allowed normalized cold-latency regression before the gate trips.
GATE_TOLERANCE = 0.25


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def check(condition, message, failures):
    if not condition:
        failures.append(message)
        print("FAIL: %s" % message, file=sys.stderr)


def calibrate(iterations=2_000_000):
    """Seconds for a fixed pure-interpreter loop on this machine.

    Both the compile pipeline and this loop are CPython-bound, so
    ``cold_p50 / calibrate()`` is comparable across runner generations
    while absolute wall-times are not.
    """
    started = time.perf_counter()
    acc = 0
    for i in range(iterations):
        acc += i * i % 7
    return time.perf_counter() - started


def series_summary(samples):
    return {"p50": round(statistics.median(samples), 6),
            "min": round(min(samples), 6),
            "max": round(max(samples), 6),
            "samples": [round(s, 6) for s in samples]}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="artifact path (default BENCH_engine.json)")
    parser.add_argument("--samples", type=int, default=7,
                        help="cold/warm sample pairs (default 7)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline artifact for the regression gate "
                             "(default: the committed one; pass an empty "
                             "string to skip the gate)")
    args = parser.parse_args(argv)

    from repro import __version__
    from repro.benchmarks import get_benchmark
    from repro.engine.cache import KERNEL_CACHE
    from repro.harness import TuningParams, run_variant
    from repro.harness.cache import CACHE_VERSION
    from repro.harness.metrics import REGISTRY
    from repro.harness.variants import variant_to_run

    failures = []
    params = TuningParams(threshold=THRESHOLD, coarsen_factor=COARSEN,
                          granularity=GRANULARITY, group_blocks=GROUP_BLOCKS)
    bench = get_benchmark(BENCHMARK)
    data = bench.build_dataset(DATASET, SCALE)

    cold_seconds = []
    warm_seconds = []
    cold_misses = warm_misses = warm_hits = 0
    reference = None
    for _ in range(args.samples):
        KERNEL_CACHE.clear()
        before = KERNEL_CACHE.stats()
        seconds, cold_result = timed(
            lambda: run_variant(bench, data, LABEL, params))
        after = KERNEL_CACHE.stats()
        cold_seconds.append(seconds)
        cold_misses += after["misses"] - before["misses"]

        before = after
        seconds, warm_result = timed(
            lambda: run_variant(bench, data, LABEL, params))
        after = KERNEL_CACHE.stats()
        warm_seconds.append(seconds)
        warm_misses += after["misses"] - before["misses"]
        warm_hits += after["hits"] - before["hits"]

        # The cache must be invisible to results.
        if reference is None:
            reference = cold_result.to_dict()
        check(cold_result.to_dict() == reference
              and warm_result.to_dict() == reference,
              "cold/warm results disagree — the cache changed semantics",
              failures)

    check(cold_misses > 0, "cold passes never compiled (%d misses)"
          % cold_misses, failures)
    check(warm_misses == 0,
          "warm passes recompiled %d times — the codegen cache leaked"
          % warm_misses, failures)
    check(warm_hits > 0, "warm passes never hit the codegen cache", failures)

    cold_p50 = statistics.median(cold_seconds)
    warm_p50 = statistics.median(warm_seconds)
    # Ratio from per-side minima: the min is the least noise-contaminated
    # estimate of each path's true cost, so the speedup gate does not trip
    # on runner jitter that inflates one median but not the other.
    speedup = min(cold_seconds) / max(min(warm_seconds), 1e-9)
    check(speedup >= MIN_SPEEDUP,
          "cold/warm speedup %.2fx is below the %.1fx floor"
          % (speedup, MIN_SPEEDUP), failures)

    # Direct compile amortization, without the execution floor: one cold
    # module_for against a warm one.
    variant, config = variant_to_run(LABEL, params)
    KERNEL_CACHE.clear()
    compile_cold, _ = timed(lambda: bench.module_for(variant, config))
    compile_warm, _ = timed(lambda: bench.module_for(variant, config))

    lookups = KERNEL_CACHE.stats()
    hit_ratio = lookups["hits"] / max(lookups["hits"] + lookups["misses"], 1)
    rendered = REGISTRY.render()
    check("repro_codegen_cache_lookups_total" in rendered,
          "codegen lookups are not exported to the metrics registry",
          failures)

    calibration = calibrate()
    cold_normalized = min(cold_seconds) / max(calibration, 1e-9)

    gate = {"baseline": None, "checked": False}
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        base_norm = baseline["cold_point_normalized"]
        gate = {"baseline": args.baseline, "checked": True,
                "baseline_normalized": base_norm,
                "current_normalized": round(cold_normalized, 4),
                "tolerance": GATE_TOLERANCE}
        check(cold_normalized <= base_norm * (1.0 + GATE_TOLERANCE),
              "cold per-point latency regressed: %.2f normalized vs "
              "baseline %.2f (>%d%% over)"
              % (cold_normalized, base_norm, GATE_TOLERANCE * 100),
              failures)
    elif args.baseline:
        print("note: baseline %s not found; gate skipped" % args.baseline,
              file=sys.stderr)

    artifact = {
        "schema": 1,
        "versions": {"code": __version__, "cache": CACHE_VERSION},
        "workload": {"benchmark": BENCHMARK, "dataset": DATASET,
                     "label": LABEL, "threshold": THRESHOLD,
                     "coarsen_factor": COARSEN,
                     "granularity": GRANULARITY,
                     "group_blocks": GROUP_BLOCKS, "scale": SCALE,
                     "samples": args.samples},
        "cold_point_seconds": series_summary(cold_seconds),
        "warm_point_seconds": series_summary(warm_seconds),
        "cold_over_warm": round(speedup, 2),
        "compile_seconds": {"cold": round(compile_cold, 6),
                            "warm": round(compile_warm, 6)},
        "codegen_cache": {"hits": lookups["hits"],
                          "misses": lookups["misses"],
                          "hit_ratio": round(hit_ratio, 4),
                          "cold_misses": cold_misses,
                          "warm_misses": warm_misses,
                          "warm_hits": warm_hits},
        "calibration_seconds": round(calibration, 6),
        "cold_point_normalized": round(cold_normalized, 4),
        "gate": gate,
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)
    print("cold point p50 %.4fs   warm point p50 %.4fs   speedup %.1fx"
          % (cold_p50, warm_p50, speedup))
    print("compile cold %.4fs → warm %.4fs   codegen hit ratio %.2f"
          % (compile_cold, compile_warm, hit_ratio))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
