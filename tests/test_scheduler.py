"""Timing-simulation tests on hand-built traces.

These verify the two mechanisms the paper blames for CDP's slowdown —
launch-queue congestion and device underutilization — plus host-event
semantics and grid-granularity host launches.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import (DEVICE, HOST, HOST_AGG, BlockCost, DeviceConfig,
                       GridRecord, LaunchRecord, Trace, simulate)


def make_grid(trace, kernel="k", blocks=1, block_dim=32, warp_cycles=100):
    grid = trace.new_grid(kernel, blocks, block_dim)
    for _ in range(blocks):
        grid.blocks.append(BlockCost(warp_cycles, warp_cycles))
    return grid


def host_launch(trace, grid):
    record = LaunchRecord(kind=HOST, grid=grid)
    grid.launch = record
    trace.host_events.append(("launch", grid))
    return record


def device_launch(trace, parent, grid, block=0, offset=10):
    record = LaunchRecord(kind=DEVICE, grid=grid, parent_grid=parent,
                          parent_block=block, issue_offset=offset)
    grid.launch = record
    parent.children.append(record)
    return record


CFG = DeviceConfig()


class TestBasics:
    def test_single_grid_time(self):
        trace = Trace()
        host_launch(trace, make_grid(trace, warp_cycles=100))
        trace.host_events.append(("sync",))
        result = simulate(trace, CFG)
        expected_min = CFG.host_launch_latency + CFG.block_overhead + 100
        assert result.total_time >= expected_min
        assert result.total_time < expected_min * 2

    def test_parallel_blocks_overlap(self):
        trace1 = Trace()
        host_launch(trace1, make_grid(trace1, blocks=1, warp_cycles=1000))
        trace1.host_events.append(("sync",))
        one = simulate(trace1, CFG).total_time

        trace8 = Trace()
        host_launch(trace8, make_grid(trace8, blocks=8, warp_cycles=1000))
        trace8.host_events.append(("sync",))
        eight = simulate(trace8, CFG).total_time
        # 8 blocks across 8 SMs: far less than 8x one block.
        assert eight < one * 2

    def test_oversubscription_serializes(self):
        slots = CFG.num_sms * CFG.max_blocks_per_sm
        trace = Trace()
        host_launch(trace, make_grid(trace, blocks=slots * 4,
                                     warp_cycles=10000))
        trace.host_events.append(("sync",))
        over = simulate(trace, CFG).total_time

        trace2 = Trace()
        host_launch(trace2, make_grid(trace2, blocks=slots,
                                      warp_cycles=10000))
        trace2.host_events.append(("sync",))
        fits = simulate(trace2, CFG).total_time
        assert over > fits * 2.5

    def test_sm_pipeline_shared_by_resident_blocks(self):
        # Two throughput-bound blocks (many warps, sum >> max) on one SM
        # must take ~2x the pipeline time of one.
        config = DeviceConfig(num_sms=1, max_blocks_per_sm=2,
                              host_launch_latency=0)
        heavy = BlockCost(max_warp=1000, sum_warp=32000)

        trace = Trace()
        grid = trace.new_grid("k", 2, 1024)
        grid.blocks = [heavy, heavy]
        host_launch(trace, grid)
        trace.host_events.append(("sync",))
        two = simulate(trace, config).total_time

        trace1 = Trace()
        grid1 = trace1.new_grid("k", 1, 1024)
        grid1.blocks = [heavy]
        host_launch(trace1, grid1)
        trace1.host_events.append(("sync",))
        one = simulate(trace1, config).total_time
        assert two > one * 1.8

    def test_grid_timings_recorded(self):
        trace = Trace()
        grid = make_grid(trace)
        host_launch(trace, grid)
        trace.host_events.append(("sync",))
        result = simulate(trace, CFG)
        timing = result.grid_timings[grid.gid]
        assert timing.first_start >= timing.ready
        assert timing.finish > timing.first_start


class TestLaunchQueue:
    def _congestion_time(self, num_children):
        trace = Trace()
        parent = make_grid(trace, blocks=1, warp_cycles=500)
        host_launch(trace, parent)
        for i in range(num_children):
            child = make_grid(trace, kernel="c", warp_cycles=50)
            device_launch(trace, parent, child, offset=10 + i)
        trace.host_events.append(("sync",))
        return simulate(trace, CFG)

    def test_congestion_grows_linearly_with_launches(self):
        few = self._congestion_time(5)
        many = self._congestion_time(100)
        added = many.total_time - few.total_time
        assert added >= 90 * CFG.launch_service_interval

    def test_queue_wait_accounted(self):
        result = self._congestion_time(50)
        assert result.launch_queue_wait > 0
        assert result.device_launches == 50

    def test_child_ready_after_latency(self):
        trace = Trace()
        parent = make_grid(trace, blocks=1, warp_cycles=500)
        host_launch(trace, parent)
        child = make_grid(trace, kernel="c")
        device_launch(trace, parent, child, offset=100)
        trace.host_events.append(("sync",))
        result = simulate(trace, CFG)
        parent_start = result.grid_timings[parent.gid].first_start
        child_ready = result.grid_timings[child.gid].ready
        assert child_ready >= parent_start + 100 \
            + CFG.launch_service_interval + CFG.device_launch_latency

    def test_child_can_start_before_parent_finishes(self):
        trace = Trace()
        parent = make_grid(trace, blocks=1, warp_cycles=100000)
        host_launch(trace, parent)
        child = make_grid(trace, kernel="c", warp_cycles=10)
        device_launch(trace, parent, child, offset=5)
        trace.host_events.append(("sync",))
        result = simulate(trace, CFG)
        assert result.grid_timings[child.gid].finish \
            < result.grid_timings[parent.gid].finish


class TestHostSemantics:
    def test_sequential_host_launches(self):
        trace = Trace()
        a = make_grid(trace, warp_cycles=10)
        b = make_grid(trace, warp_cycles=10)
        host_launch(trace, a)
        host_launch(trace, b)
        trace.host_events.append(("sync",))
        result = simulate(trace, CFG)
        assert result.grid_timings[b.gid].ready \
            >= result.grid_timings[a.gid].ready + CFG.host_launch_latency

    def test_host_agg_waits_for_parent_grid(self):
        trace = Trace()
        parent = make_grid(trace, blocks=4, warp_cycles=5000)
        host_launch(trace, parent)
        agg_child = make_grid(trace, kernel="agg", warp_cycles=10)
        record = LaunchRecord(kind=HOST_AGG, grid=agg_child,
                              parent_grid=parent)
        agg_child.launch = record
        trace.host_events.append(("sync",))
        result = simulate(trace, CFG)
        assert result.grid_timings[agg_child.gid].ready \
            >= result.grid_timings[parent.gid].finish \
            + CFG.host_agg_overhead
        assert result.host_agg_launches == 1

    def test_unknown_host_event_raises(self):
        trace = Trace()
        trace.host_events.append(("warp_drive",))
        with pytest.raises(SimulationError):
            simulate(trace, CFG)

    def test_total_time_covers_all_grids(self):
        trace = Trace()
        grids = [make_grid(trace, warp_cycles=100) for _ in range(3)]
        for grid in grids:
            host_launch(trace, grid)
        trace.host_events.append(("sync",))
        result = simulate(trace, CFG)
        assert result.total_time >= max(
            result.grid_timings[g.gid].finish for g in grids)
