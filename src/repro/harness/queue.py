"""Request scheduler for the query service's miss path.

PR 4's ``repro serve`` serialized every cache miss behind one executor
lock, so a single cold ``/sweep`` stalled every other cold request. This
module replaces that lock with a :class:`RequestScheduler`: a bounded
FIFO work queue drained by a configurable number of worker threads
(``--miss-workers``), each owning its own
:class:`~repro.harness.sweep.SweepExecutor` (the sweep backends are not
safe for concurrent ``map`` calls, so concurrency comes from *multiple*
executors sharing one :class:`~repro.harness.cache.ResultCache`, which
is multi-process safe by construction).

Semantics:

* **Per-point in-flight deduplication.** Tasks are keyed by
  :func:`~repro.harness.cache.point_key` (the masked, content-addressed
  spec): while a point is queued or running, further submissions for the
  same key *join* the existing task instead of enqueueing a duplicate —
  two concurrent cold requests for one spec cost exactly one
  simulation.
* **Fair FIFO ordering.** Tasks start in strict submission order;
  a request's points enqueue atomically at submit time, so no request
  can jump an earlier one (and a warm hit never enters the queue at
  all — the lock-free hit path is untouched).
* **Bounded queue / backpressure.** At most *max_pending* tasks may be
  queued; past that :meth:`submit` raises
  :class:`~repro.errors.QueueFullError`, which the HTTP layer maps to
  ``503`` so clients back off instead of piling onto a saturated
  simulator.
* **Graceful drain.** :meth:`close` (``drain=True``, the default) stops
  intake, lets queued and in-flight tasks finish, then joins the
  workers — an in-flight miss is never killed mid-write. With
  ``drain=False`` pending tasks resolve to structured
  :class:`~repro.harness.sweep.PointFailure` entries so no waiter hangs.

Every transition is mirrored into :mod:`repro.harness.metrics`
(``repro_queue_*`` series) and counted on the instance
(:meth:`stats_dict`, surfaced by ``GET /cache/info``).
"""

import threading
import time
from collections import deque

from ..errors import QueueClosedError, QueueFullError
from .cache import point_key
from .metrics import REGISTRY
from .sweep import PointFailure

__all__ = ["MissTask", "RequestScheduler"]

_SUBMITTED = REGISTRY.counter(
    "repro_queue_submitted_total",
    "Miss tasks accepted into the scheduler queue")
_DEDUP_JOINS = REGISTRY.counter(
    "repro_queue_dedup_joins_total",
    "Submissions that joined an already queued/running task for the "
    "same point key instead of enqueueing a duplicate")
_REJECTED = REGISTRY.counter(
    "repro_queue_rejected_total",
    "Submissions rejected by the scheduler", ("reason",))
_COMPLETED = REGISTRY.counter(
    "repro_queue_completed_total",
    "Miss tasks finished by a scheduler worker", ("outcome",))
_DEPTH = REGISTRY.gauge(
    "repro_queue_depth", "Tasks waiting in the scheduler queue")
_INFLIGHT = REGISTRY.gauge(
    "repro_queue_inflight", "Tasks currently running on a worker")
_WAIT = REGISTRY.histogram(
    "repro_queue_wait_seconds",
    "Seconds a task waited between submission and execution start")


class MissTask:
    """One scheduled miss: a point, its key, and a completion event.

    Multiple requests may hold the same task (dedup joins); each calls
    :meth:`RequestScheduler.result` to block for the shared outcome.
    """

    __slots__ = ("key", "point", "event", "result", "joins",
                 "submitted_at")

    def __init__(self, key, point):
        self.key = key
        self.point = point
        self.event = threading.Event()
        self.result = None
        self.joins = 0
        self.submitted_at = time.perf_counter()


class RequestScheduler:
    """Bounded FIFO miss queue with dedup, worker threads, and drain.

    *executors* is a non-empty list of
    :class:`~repro.harness.sweep.SweepExecutor`\\ s — one dedicated
    worker thread per executor (the executors should share one cache but
    must not share a backend). The scheduler does **not** own the
    executors; callers close them after :meth:`close` returns.
    """

    def __init__(self, executors, max_pending=64):
        executors = list(executors)
        if not executors:
            raise ValueError("RequestScheduler needs at least one executor")
        self.max_pending = max(1, int(max_pending))
        self._cond = threading.Condition()
        self._queue = deque()
        self._by_key = {}               # key -> queued/running MissTask
        self._running = 0
        self._closed = False
        # Instance-exact counters (the global REGISTRY aggregates across
        # every scheduler in the process; these back /cache/info).
        self.submitted = 0
        self.dedup_joins = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self._threads = [
            threading.Thread(target=self._worker, args=(executor,),
                             name="repro-miss-%d" % index, daemon=True)
            for index, executor in enumerate(executors)]
        for thread in self._threads:
            thread.start()

    @property
    def workers(self):
        return len(self._threads)

    # -- intake ---------------------------------------------------------------

    def submit(self, point):
        """Queue *point* (or join its in-flight task); returns the
        :class:`MissTask` to :meth:`result` on.

        Raises :class:`~repro.errors.QueueFullError` when *max_pending*
        tasks are already queued and
        :class:`~repro.errors.QueueClosedError` once the scheduler is
        draining — both well-formed-but-unservable (HTTP 503).
        """
        key = point_key(point)
        with self._cond:
            if self._closed:
                self.rejected += 1
                _REJECTED.inc(reason="closed")
                raise QueueClosedError(
                    "the miss scheduler is shutting down")
            task = self._by_key.get(key)
            if task is not None:
                task.joins += 1
                self.dedup_joins += 1
                _DEDUP_JOINS.inc()
                return task
            if len(self._queue) >= self.max_pending:
                self.rejected += 1
                _REJECTED.inc(reason="full")
                raise QueueFullError(
                    "miss queue full (%d tasks pending; retry later)"
                    % len(self._queue))
            task = MissTask(key, point)
            self._by_key[key] = task
            self._queue.append(task)
            self.submitted += 1
            _SUBMITTED.inc()
            _DEPTH.inc()
            self._cond.notify()
            return task

    def submit_all(self, points):
        """Atomically queue a batch in order (one lock hold, so another
        request cannot interleave into the middle of this one); returns
        one task per point, deduplicated like :meth:`submit`."""
        with self._cond:
            if self._closed:
                self.rejected += 1
                _REJECTED.inc(reason="closed")
                raise QueueClosedError(
                    "the miss scheduler is shutting down")
            # Plan first, mutate nothing: a rejected batch must leave
            # every counter (and other requests' live tasks) untouched.
            plan = []                   # (task, joined_existing)
            fresh = []
            for point in points:
                key = point_key(point)
                task = self._by_key.get(key)
                if task is None:
                    task = next((t for t in fresh if t.key == key), None)
                joined = task is not None
                if not joined:
                    task = MissTask(key, point)
                    fresh.append(task)
                plan.append((task, joined))
            if len(self._queue) + len(fresh) > self.max_pending:
                self.rejected += 1
                _REJECTED.inc(reason="full")
                raise QueueFullError(
                    "miss queue full (%d pending + %d new > %d; retry "
                    "later)" % (len(self._queue), len(fresh),
                                self.max_pending))
            tasks = [task for task, _ in plan]
            for task, joined in plan:
                if joined:
                    task.joins += 1
                    self.dedup_joins += 1
                    _DEDUP_JOINS.inc()
            for task in fresh:
                self._by_key[task.key] = task
                self._queue.append(task)
                self.submitted += 1
                _SUBMITTED.inc()
            _DEPTH.inc(len(fresh))
            self._cond.notify(len(fresh))
        return tasks

    def result(self, task, timeout=None):
        """Block until *task* completes; returns its
        :class:`~repro.harness.runner.RunResult` or
        :class:`~repro.harness.sweep.PointFailure`. Raises ``TimeoutError``
        past *timeout* seconds (the task keeps running)."""
        if not task.event.wait(timeout):
            raise TimeoutError("miss task %s not done after %ss"
                               % (task.point.describe(), timeout))
        return task.result

    # -- execution ------------------------------------------------------------

    def _worker(self, executor):
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:          # closed and drained
                    return
                task = self._queue.popleft()
                self._running += 1
                _DEPTH.dec()
                _INFLIGHT.inc()
            _WAIT.observe(time.perf_counter() - task.submitted_at)
            try:
                result = executor.run_one(task.point, on_error="continue")
            except Exception as exc:        # noqa: BLE001 — keep draining
                result = PointFailure(task.point, type(exc).__name__,
                                      str(exc))
            self._finish(task, result)

    def _finish(self, task, result):
        failed = isinstance(result, PointFailure)
        with self._cond:
            self._by_key.pop(task.key, None)
            self._running -= 1
            self.completed += 1
            self.failed += failed
            _INFLIGHT.dec()
            _COMPLETED.inc(outcome="failed" if failed else "ok")
            task.result = result
            task.event.set()
            self._cond.notify_all()

    # -- introspection --------------------------------------------------------

    def stats_dict(self):
        """JSON-able scheduler counters (the ``queue`` block of
        ``GET /cache/info``)."""
        with self._cond:
            return {"workers": self.workers,
                    "max_pending": self.max_pending,
                    "depth": len(self._queue),
                    "inflight": self._running,
                    "submitted": self.submitted,
                    "dedup_joins": self.dedup_joins,
                    "rejected": self.rejected,
                    "completed": self.completed,
                    "failed": self.failed,
                    "draining": self._closed}

    # -- shutdown -------------------------------------------------------------

    def close(self, drain=True, timeout=None):
        """Stop intake and shut the workers down.

        ``drain=True`` (default): queued and in-flight tasks finish
        first — the graceful path ``repro serve`` takes on SIGTERM /
        Ctrl-C / ``POST /shutdown``. ``drain=False``: pending tasks are
        resolved immediately as ``QueueClosedError``
        :class:`~repro.harness.sweep.PointFailure`\\ s (in-flight tasks
        still run to completion; a worker thread cannot be interrupted
        mid-simulation). *timeout* bounds the whole wait; returns True
        when every worker exited. Idempotent.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._closed = True
            if not drain:
                while self._queue:
                    task = self._queue.popleft()
                    self._by_key.pop(task.key, None)
                    self.completed += 1
                    self.failed += 1
                    _COMPLETED.inc(outcome="failed")
                    _DEPTH.dec()
                    task.result = PointFailure(
                        task.point, "QueueClosedError",
                        "service shut down before this point ran")
                    task.event.set()
            self._cond.notify_all()
        done = True
        for thread in self._threads:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
            done = done and not thread.is_alive()
        return done
