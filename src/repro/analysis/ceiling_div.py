"""Desired-thread-count recovery from grid-dimension expressions (Fig. 4).

Programmers compute the grid dimension as a ceiling division of the desired
number of threads ``N`` by the block dimension ``b``. The paper's heuristic
(Sec. III-D): find the division, take its left-hand subexpression, strip
additions/subtractions of constants (and of the divisor itself, which covers
``(N + b - 1)/b``), and treat what remains as ``N``.

The heuristic is deliberately best-effort — a miss only means the thresholding
pass compares ``gridDim * blockDim`` against the threshold instead, which
never affects correctness (Sec. III-D).
"""

from dataclasses import dataclass
from typing import Optional

from ..minicuda import ast


def expr_equal(a, b):
    """Structural equality of two expressions (literal text ignored)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.IntLit):
        return a.value == b.value
    if isinstance(a, ast.FloatLit):
        return a.value == b.value
    if isinstance(a, ast.BoolLit):
        return a.value == b.value
    if isinstance(a, ast.Ident):
        return a.name == b.name
    if isinstance(a, ast.Member):
        return a.attr == b.attr and expr_equal(a.obj, b.obj)
    if isinstance(a, ast.Index):
        return expr_equal(a.base, b.base) and expr_equal(a.index, b.index)
    if isinstance(a, ast.Unary):
        return (a.op == b.op and a.postfix == b.postfix
                and expr_equal(a.operand, b.operand))
    if isinstance(a, ast.Binary):
        return (a.op == b.op and expr_equal(a.lhs, b.lhs)
                and expr_equal(a.rhs, b.rhs))
    if isinstance(a, ast.Assign):
        return (a.op == b.op and expr_equal(a.target, b.target)
                and expr_equal(a.value, b.value))
    if isinstance(a, ast.Ternary):
        return (expr_equal(a.cond, b.cond) and expr_equal(a.then, b.then)
                and expr_equal(a.orelse, b.orelse))
    if isinstance(a, ast.Cast):
        return a.type.name == b.type.name and expr_equal(a.operand, b.operand)
    if isinstance(a, ast.Call):
        return (expr_equal(a.func, b.func) and len(a.args) == len(b.args)
                and all(expr_equal(x, y) for x, y in zip(a.args, b.args)))
    return False


def _is_constant(expr):
    """Literals and unary +/- of literals count as constants to strip."""
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return True
    if isinstance(expr, ast.Unary) and expr.op in ("-", "+"):
        return _is_constant(expr.operand)
    return False


def _strip_cast(expr):
    while isinstance(expr, ast.Cast):
        expr = expr.operand
    return expr


def _strip_constant_terms(expr, divisor):
    """Peel top-level additions/subtractions of constants (and of the
    divisor itself) off *expr*, per the paper's heuristic.

    Stripping happens only at the top of the tree so that compound counts
    such as ``end - start`` in ``(end - start + 127) / 128`` survive as one
    subexpression.
    """
    while True:
        expr = _strip_cast(expr)
        if not (isinstance(expr, ast.Binary) and expr.op in ("+", "-")):
            return expr
        rhs = _strip_cast(expr.rhs)
        lhs = _strip_cast(expr.lhs)
        if _is_constant(rhs) or expr_equal(rhs, divisor):
            expr = expr.lhs
            continue
        if expr.op == "+" and (_is_constant(lhs) or expr_equal(lhs, divisor)):
            expr = expr.rhs
            continue
        return expr


def _first_division(expr):
    """The outermost-leftmost integer/float division in pre-order."""
    for node in expr.walk():
        if isinstance(node, ast.Binary) and node.op == "/":
            return node
    return None


@dataclass
class ThreadCountResult:
    """Outcome of the Fig. 4 analysis on one grid-dimension expression.

    ``count_expr`` is the AST node (by identity, inside the launch's grid
    expression) holding the desired thread count — the thresholding pass
    replaces this exact node with ``_threads`` so that side-effecting
    expressions are not duplicated. ``exact`` is False when the analysis fell
    back to ``grid * block``.
    """

    count_expr: Optional[ast.Expr]
    exact: bool
    division: Optional[ast.Binary] = None


def _grid_x_expr(grid):
    """For dim3(...) grids (Fig. 4f) analyze the x-dimension argument."""
    if (isinstance(grid, ast.Call) and isinstance(grid.func, ast.Ident)
            and grid.func.name == "dim3" and grid.args):
        return grid.args[0]
    return grid


def find_thread_count(grid_expr):
    """Apply the paper's heuristic to a launch grid expression.

    Returns a :class:`ThreadCountResult`; ``count_expr`` is None when no
    division was found or stripping did not leave exactly one
    non-constant term.
    """
    expr = _grid_x_expr(grid_expr)
    division = _first_division(expr)
    if division is None:
        return ThreadCountResult(None, False)
    divisor = _strip_cast(division.rhs)
    count = _strip_constant_terms(division.lhs, divisor)
    if _is_constant(count) or expr_equal(count, divisor):
        return ThreadCountResult(None, False, division)
    return ThreadCountResult(count, True, division)
