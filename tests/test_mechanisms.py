"""Mechanism tests: each optimization's *claimed effect* is visible in the
execution trace — not just correctness.

Thresholding reduces the number of dynamic launches; coarsening reduces the
number of child blocks; aggregation reduces launches while growing grids;
the aggregation threshold routes small groups to direct launches.
"""

import numpy as np
import pytest

from repro.engine import Module
from repro.runtime import Device, blocks
from repro.transforms import OptConfig, transform

SRC = """
__global__ void child(int *out, int base, int count) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < count) {
        atomicAdd(&out[0], base + tid);
    }
}

__global__ void parent(int *sizes, int *out, int n) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < n) {
        int c = sizes[t];
        if (c > 0) {
            child<<<(c + 31) / 32, 32>>>(out, t, c);
        }
    }
}
"""

N = 256


def run(config, seed=5, sizes=None):
    if config is None:
        module = Module(SRC)
    else:
        result = transform(SRC, config)
        module = Module(result.program, result.meta)
    dev = Device(module)
    if sizes is None:
        rng = np.random.default_rng(seed)
        sizes = rng.geometric(0.08, N)      # heavy-tailed child sizes
    d_sizes = dev.upload(sizes)
    out = dev.alloc("int", 1)
    dev.launch("parent", blocks(N, 64), 64, d_sizes, out, N)
    dev.sync()
    timing = dev.finish()
    return out[0], timing, dev.trace, sizes


class TestThresholdingMechanism:
    def test_reduces_launch_count_monotonically(self):
        _, t0, trace0, sizes = run(None)
        baseline = trace0.total_launches("device")
        previous = baseline
        for threshold in (4, 16, 64):
            _, timing, trace, _ = run(OptConfig(threshold=threshold),
                                      sizes=sizes)
            launches = trace.total_launches("device")
            assert launches <= previous
            previous = launches
        assert previous < baseline

    def test_exactly_the_large_children_survive(self):
        threshold = 16
        _, _, trace, sizes = run(OptConfig(threshold=threshold))
        expected = int((sizes >= threshold).sum())
        assert trace.total_launches("device") == expected

    def test_huge_threshold_serializes_everything(self):
        ref, _, _, sizes = run(None)
        out, _, trace, _ = run(OptConfig(threshold=1 << 20), sizes=sizes)
        assert trace.total_launches("device") == 0
        assert out == ref


class TestCoarseningMechanism:
    def test_child_block_count_shrinks(self):
        sizes = np.full(N, 200)             # every child has 7 blocks of 32
        _, _, plain, _ = run(None, sizes=sizes)
        _, _, coarse, _ = run(OptConfig(coarsen_factor=4), sizes=sizes)
        plain_blocks = sum(g.grid_dim for g in plain.grids
                           if g.kernel == "child")
        coarse_blocks = sum(g.grid_dim for g in coarse.grids
                            if g.kernel == "child")
        assert coarse_blocks * 3 < plain_blocks
        # launch count is unchanged — coarsening shrinks grids, not launches
        assert plain.total_launches("device") == \
            coarse.total_launches("device")

    def test_single_block_children_unchanged(self):
        sizes = np.full(N, 8)               # 1 block each
        _, _, plain, _ = run(None, sizes=sizes)
        _, _, coarse, _ = run(OptConfig(coarsen_factor=8), sizes=sizes)
        assert sum(g.grid_dim for g in plain.grids if g.kernel == "child") \
            == sum(g.grid_dim for g in coarse.grids if g.kernel == "child")


class TestAggregationMechanism:
    def test_block_granularity_one_launch_per_parent_block(self):
        _, _, trace, _ = run(OptConfig(aggregate="block"))
        parent_blocks = blocks(N, 64)
        assert trace.total_launches("device") <= parent_blocks

    def test_multiblock_fewer_launches_than_block(self):
        _, _, block_trace, sizes = run(OptConfig(aggregate="block"))
        _, _, multi_trace, _ = run(
            OptConfig(aggregate="multiblock", group_blocks=4), sizes=sizes)
        assert multi_trace.total_launches("device") \
            < block_trace.total_launches("device")

    def test_aggregated_grids_are_larger(self):
        _, _, plain, sizes = run(None)
        _, _, agg, _ = run(OptConfig(aggregate="block"), sizes=sizes)
        plain_avg = np.mean([g.grid_dim for g in plain.grids
                             if g.is_dynamic])
        agg_avg = np.mean([g.grid_dim for g in agg.grids if g.is_dynamic])
        assert agg_avg > plain_avg * 2

    def test_grid_granularity_single_host_agg_launch(self):
        _, timing, trace, _ = run(OptConfig(aggregate="grid"))
        assert timing.device_launches == 0
        assert timing.host_agg_launches == 1

    def test_congestion_wait_collapses_with_aggregation(self):
        _, plain_timing, _, sizes = run(None)
        _, agg_timing, _, _ = run(OptConfig(aggregate="multiblock"),
                                  sizes=sizes)
        assert agg_timing.launch_queue_wait \
            < plain_timing.launch_queue_wait / 10


class TestAggregationThresholdMechanism:
    def test_small_groups_launch_directly(self):
        # Make most parent threads non-participating so blocks fall below
        # the participation threshold -> direct child launches appear.
        sizes = np.zeros(N, dtype=np.int64)
        sizes[::37] = 40                     # ~7 participants over 4 blocks
        ref, _, _, _ = run(None, sizes=sizes)
        out, _, trace, _ = run(
            OptConfig(aggregate="block", agg_threshold=8), sizes=sizes)
        assert out == ref
        kernels = {g.kernel for g in trace.grids if g.is_dynamic}
        assert "child" in kernels            # direct fallback used
        assert "child_agg" not in kernels    # nothing met the threshold

    def test_dense_groups_still_aggregate(self):
        sizes = np.full(N, 20)
        out, _, trace, _ = run(
            OptConfig(aggregate="block", agg_threshold=8), sizes=sizes)
        kernels = {g.kernel for g in trace.grids if g.is_dynamic}
        assert "child_agg" in kernels
        assert "child" not in kernels
