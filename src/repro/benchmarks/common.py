"""Shared benchmark machinery.

Each benchmark (Table I) provides a No-CDP source, a CDP source, dataset
builders, and a host driver. Drivers are variant-agnostic: the parent kernel
keeps the same name and user-visible parameters in both sources, and the
:class:`~repro.runtime.host.Device` appends aggregation buffers automatically
when the module was transformed.
"""

from ..engine.cache import compiled_module
from ..runtime.host import Device

INF = 1 << 30


class Benchmark:
    """Base class: one paper benchmark with its datasets and driver."""

    name = None
    dataset_names = ()
    child_block = 128            # block dimension of dynamic child launches

    def cdp_source(self):
        raise NotImplementedError

    def nocdp_source(self):
        raise NotImplementedError

    def build_dataset(self, dataset_name, scale=1.0):
        """Construct a dataset by Table I name; *scale* shrinks the size
        (1.0 reproduces this repo's reference sizes)."""
        raise NotImplementedError

    def drive(self, device, data):
        """Run the benchmark's host loop; returns output arrays (dict of
        numpy arrays) used for cross-variant correctness checks."""
        raise NotImplementedError

    # -- conveniences --------------------------------------------------------

    def module_for(self, variant="cdp", config=None, cost_model=None):
        """Compile a variant: 'nocdp', 'cdp', or a transformed CDP module
        described by an :class:`~repro.transforms.OptConfig`.

        Routes through the engine's compiled-kernel cache
        (:mod:`repro.engine.cache`), so repeated compiles of one
        (source, config, cost model) only pay module instantiation.
        """
        if variant == "nocdp":
            return compiled_module(self.nocdp_source(),
                                   cost_model=cost_model)
        if variant == "cdp" and config is None:
            return compiled_module(self.cdp_source(), cost_model=cost_model)
        return compiled_module(self.cdp_source(), config, cost_model)

    def run(self, data, variant="cdp", config=None, device_config=None,
            cost_model=None):
        """Compile + execute + time one variant. Returns (outputs, timing,
        device)."""
        module = self.module_for(variant, config, cost_model)
        device = Device(module, device_config)
        outputs = self.drive(device, data)
        timing = device.finish()
        return outputs, timing, device


def scaled(value, scale, minimum=1):
    return max(minimum, int(round(value * scale)))
