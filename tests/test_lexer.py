"""Tokenizer unit tests."""

import pytest

from repro.errors import LexError
from repro.minicuda import tokenize
from repro.minicuda.tokens import (EOF, FLOAT, IDENT, INT, KEYWORD, PUNCT,
                                   STRING)


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_identifier(self):
        assert kinds("foo _bar x9") == [IDENT, IDENT, IDENT]

    def test_keywords_recognized(self):
        assert kinds("if else for while int void") == [KEYWORD] * 6

    def test_cuda_qualifiers_are_keywords(self):
        assert kinds("__global__ __device__ __shared__") == [KEYWORD] * 3

    def test_punctuation(self):
        assert values("+ - * / % == != <= >= && || << >>") == [
            "+", "-", "*", "/", "%", "==", "!=", "<=", ">=", "&&", "||",
            "<<", ">>"]

    def test_launch_delimiters(self):
        assert values("k<<<1, 2>>>()") == [
            "k", "<<<", "1", ",", "2", ">>>", "(", ")"]

    def test_compound_assignment_tokens(self):
        assert values("+= -= *= /= %= &= |= ^=") == [
            "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]

    def test_increment_decrement(self):
        assert values("++x; y--") == ["++", "x", ";", "y", "--"]


class TestNumbers:
    def test_int_literal(self):
        token = tokenize("42")[0]
        assert token.kind == INT
        assert token.value == "42"

    def test_hex_literal(self):
        token = tokenize("0xFF")[0]
        assert token.kind == INT
        assert token.value == "0xFF"

    def test_float_literal(self):
        assert tokenize("3.25")[0].kind == FLOAT

    def test_float_suffix_forces_float(self):
        assert tokenize("1f")[0].kind == FLOAT
        assert tokenize("2.0f")[0].kind == FLOAT

    def test_unsigned_suffix_stays_int(self):
        token = tokenize("1024u")[0]
        assert token.kind == INT
        assert token.value == "1024u"

    def test_exponent(self):
        assert tokenize("1e9")[0].kind == FLOAT
        assert tokenize("2.5e-3")[0].kind == FLOAT

    def test_number_at_eof_terminates(self):
        # Regression: "" in "fFuUlL" is True in Python; the suffix loop must
        # not spin forever when the source ends right after a number.
        assert tokenize("x/1")[2].kind == INT

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].kind == FLOAT

    def test_member_access_not_float(self):
        assert values("a.x") == ["a", ".", "x"]


class TestTrivia:
    def test_line_comment(self):
        assert values("a // comment here\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_preprocessor_lines_skipped(self):
        assert values("#define _THRESHOLD 128\nx") == ["x"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)


class TestStringsAndErrors:
    def test_string_literal(self):
        token = tokenize('"hello %d"')[0]
        assert token.kind == STRING
        assert token.value == "hello %d"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unknown_character_raises(self):
        with pytest.raises(LexError) as err:
            tokenize("int @x;")
        assert "@" in str(err.value)

    def test_error_carries_position(self):
        with pytest.raises(LexError) as err:
            tokenize("ok\n   $")
        assert err.value.line == 2
