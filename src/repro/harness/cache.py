"""Persistent, content-addressed cache of sweep results.

Every figure/autotune invocation re-simulates the same dense
(benchmark × dataset × variant × params) grids from scratch; this cache
makes repeated runs cheap. Layout: one JSON file per point,

    <cache_dir>/<key>.json

where ``key`` is the SHA-256 of the canonical point spec (benchmark,
dataset, scale, variant label, tuning params, device config) plus the code
version (``repro.__version__`` and :data:`CACHE_VERSION`). Any change to a
tuning parameter, the device model, or the code version therefore lands on
a different key — stale entries are never returned, only orphaned.

Entries store :class:`~repro.harness.runner.RunResult` fields except the
raw ``outputs`` arrays (results carrying outputs are simply not cached).
Corrupted or truncated entries are dropped and treated as misses, so a
killed run can never poison later ones.
"""

import hashlib
import json
import os
import tempfile

from .. import __version__
from .runner import RunResult

#: Bump when the cached representation or the simulator semantics change.
CACHE_VERSION = 1


def point_key(point):
    """Stable content hash for one sweep point (hex SHA-256)."""
    spec = {"cache_version": CACHE_VERSION, "code_version": __version__}
    spec.update(point.spec())
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk result cache; safe to share across processes and runs."""

    def __init__(self, cache_dir):
        self.cache_dir = str(cache_dir)
        self.hits = 0
        self.misses = 0
        os.makedirs(self.cache_dir, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.cache_dir, key + ".json")

    def get(self, point):
        """Cached RunResult for *point*, or None on miss/corruption."""
        path = self._path(point_key(point))
        try:
            with open(path) as handle:
                payload = json.load(handle)
            result = RunResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted/truncated entry: drop it so the point re-simulates.
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, point, result):
        """Store *result* for *point* (atomic; ignores results that carry
        raw output arrays)."""
        if result.outputs is not None:
            return False
        payload = {"spec": point.spec(), "result": result.to_dict()}
        path = self._path(point_key(point))
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return True

    def __len__(self):
        return sum(1 for name in os.listdir(self.cache_dir)
                   if name.endswith(".json"))

    def clear(self):
        for name in os.listdir(self.cache_dir):
            if name.endswith(".json"):
                os.remove(os.path.join(self.cache_dir, name))
