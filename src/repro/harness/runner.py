"""Run one benchmark variant and collect everything the figures need."""

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ReproError
from ..sim.config import DeviceConfig
from .variants import TuningParams, variant_to_run


@dataclass
class RunResult:
    """One (benchmark, dataset, variant, params) measurement."""

    benchmark: str
    dataset: str
    label: str
    params: TuningParams
    total_time: int
    breakdown: dict                 # Fig. 10 component cycles
    device_launches: int
    host_agg_launches: int
    launch_queue_wait: int
    outputs: Optional[dict] = None

    def speedup_over(self, other):
        """Speedup of this run relative to *other* (>1 means faster).

        Both runs must have measured positive time; a zero-cycle run is a
        broken measurement on either side, and silently reporting 0× (or
        ∞×) would poison geomeans downstream.
        """
        if self.total_time <= 0 or other.total_time <= 0:
            raise ReproError(
                "speedup undefined for non-positive total_time "
                "(self=%r, other=%r)" % (self.total_time, other.total_time))
        return other.total_time / self.total_time

    def to_dict(self):
        """JSON-able representation (drops raw outputs; see harness.cache)."""
        return {
            "benchmark": self.benchmark,
            "dataset": self.dataset,
            "label": self.label,
            "params": {
                "threshold": self.params.threshold,
                "coarsen_factor": self.params.coarsen_factor,
                "granularity": self.params.granularity,
                "group_blocks": self.params.group_blocks,
            },
            "total_time": int(self.total_time),
            "breakdown": {k: int(v) for k, v in self.breakdown.items()},
            "device_launches": int(self.device_launches),
            "host_agg_launches": int(self.host_agg_launches),
            "launch_queue_wait": int(self.launch_queue_wait),
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            benchmark=payload["benchmark"],
            dataset=payload["dataset"],
            label=payload["label"],
            params=TuningParams(**payload["params"]),
            total_time=payload["total_time"],
            breakdown=dict(payload["breakdown"]),
            device_launches=payload["device_launches"],
            host_agg_launches=payload["host_agg_launches"],
            launch_queue_wait=payload["launch_queue_wait"],
            outputs=None,
        )


def outputs_match(a, b, rtol=1e-9):
    """Cross-variant correctness check on driver outputs.

    NaNs count as equal when they appear in the same positions; if either
    side is floating-point the comparison is tolerance-based regardless of
    the other side's dtype kind.
    """
    if a.keys() != b.keys():
        return False
    for key in a:
        lhs, rhs = a[key], b[key]
        if lhs.shape != rhs.shape:
            return False
        if lhs.dtype.kind == "f" or rhs.dtype.kind == "f":
            if not np.allclose(lhs, rhs, rtol=rtol, atol=1e-12,
                               equal_nan=True):
                return False
        elif not np.array_equal(lhs, rhs):
            return False
    return True


def run_variant(bench, data, label, params=None, device_config=None,
                keep_outputs=False, check_against=None):
    """Compile, execute, and time one benchmark variant.

    :param bench: a benchmark object (see ``repro.benchmarks``).
    :param data: a dataset built by ``bench.build_dataset``.
    :param label: variant label from
        :data:`~repro.harness.variants.VARIANT_LABELS`.
    :param params: :class:`~repro.harness.variants.TuningParams`
        (default: all optimizations off).
    :param device_config: simulated GPU
        (:class:`~repro.sim.config.DeviceConfig`).
    :param keep_outputs: attach the raw driver outputs to the result
        (such results are never cached).
    :param check_against: reference outputs dict; raises
        :class:`~repro.errors.ReproError` on any mismatch — the
        transformations must never change results.
    :returns: a :class:`RunResult`.
    """
    params = params or TuningParams()
    device_config = device_config or DeviceConfig()
    variant, config = variant_to_run(label, params)
    outputs, timing, device = bench.run(data, variant, config,
                                        device_config=device_config)
    if check_against is not None and not outputs_match(check_against,
                                                       outputs):
        raise ReproError(
            "%s on %s with %s produced different outputs than the reference"
            % (label, bench.name, params.describe()))
    component = device.breakdown()
    return RunResult(
        benchmark=bench.name,
        dataset=getattr(data, "name", "?"),
        label=label,
        params=params,
        total_time=timing.total_time,
        breakdown=component.as_dict(),
        device_launches=timing.device_launches,
        host_agg_launches=timing.host_agg_launches,
        launch_queue_wait=timing.launch_queue_wait,
        outputs=outputs if keep_outputs else None,
    )


def geomean(values):
    """Geometric mean of the positive entries of *values* (the paper's
    summary statistic); 0.0 when none are positive.

    >>> round(geomean([2.0, 8.0]), 9)
    4.0
    >>> geomean([])
    0.0
    """
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def child_launch_sizes(bench, data, device_config=None):
    """Thread counts of every dynamic launch the CDP version performs.

    Used to bound the threshold sweep ("not tuned beyond the largest dynamic
    launch size", Sec. VII) and by the guided tuner. *device_config* must be
    forwarded by callers that run the rest of their sweep on a non-default
    device, so the probe observes the same simulated GPU.
    """
    outputs, timing, device = bench.run(data, "cdp",
                                        device_config=device_config)
    sizes = []
    for grid in device.trace.grids:
        if grid.is_dynamic:
            sizes.append(grid.grid_dim * grid.block_dim)
    return sizes
