"""SQLite metadata index over the on-disk caches.

The result/figure caches are content-addressed blob directories —
perfect for correctness (the blob *is* the truth), useless for
questions: which points are hottest, what did each cost to simulate,
what should eviction keep? :class:`CacheIndex` answers those with a
single-table SQLite database, ``index.sqlite``, living beside the
blobs.

The index is **advisory and rebuildable, never authoritative**. Every
fact it holds is also carried in the blob payloads themselves (the
``meta`` block :mod:`repro.harness.cache` writes into result JSON and
figure pickles), so ``repro cache reindex``
(:meth:`~repro.harness.cache.ResultCache.reindex`) reconstructs it from
the blobs alone. One nuance: a warm hit bumps only the index (an atomic
SQL ``hits = hits + 1`` via :meth:`CacheIndex.bump_hit`; the blob stays
read-only on the hot path), and the accumulated counts are folded back
into the blobs' ``meta`` blocks lazily by
:meth:`~repro.harness.cache.ResultCache.sync_hits` — ``prune`` and
``reindex`` run the fold first — so deleting ``index.sqlite`` loses at
most the hits taken since the last fold. Writes are best-effort:
any ``sqlite3`` error is swallowed, counted on
``repro_cache_index_errors_total``, and the caller proceeds; a broken
index must never fail a cache store or a warm hit.

Schema (table ``entries``, one row per blob):

==================  =======  ==============================================
column              type     meaning
==================  =======  ==============================================
key                 TEXT PK  content-addressed cache key (blob basename)
kind                TEXT     ``result`` or ``figure``
spec                TEXT     the point/figure spec as JSON
bytes               INTEGER  blob size on disk
created             REAL     epoch seconds the entry was first stored
last_access         REAL     epoch seconds of the latest store or hit
hits                INTEGER  cache hits served from this entry
sim_cost_seconds    REAL     measured simulation wall time (NULL: unknown)
cache_version       INTEGER  ``CACHE_VERSION`` the blob was written under
==================  =======  ==============================================

Concurrency: one connection per :class:`CacheIndex`, opened with
``check_same_thread=False`` behind an ``RLock`` (the serve tier's miss
workers and HTTP threads share the cache object). ``synchronous=OFF`` +
WAL keep index writes off the warm hit path's critical latency — losing
index rows in a crash is fine, the blobs rebuild them.
"""

import json
import os
import sqlite3
import threading

from .metrics import REGISTRY

__all__ = ["INDEX_FILENAME", "CacheIndex"]

INDEX_FILENAME = "index.sqlite"

_OPS = REGISTRY.counter(
    "repro_cache_index_ops_total",
    "Metadata-index operations applied to index.sqlite", ("op",))
_ERRORS = REGISTRY.counter(
    "repro_cache_index_errors_total",
    "Metadata-index operations dropped on SQLite errors (the index is "
    "best-effort; blobs remain authoritative)")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key              TEXT PRIMARY KEY,
    kind             TEXT NOT NULL,
    spec             TEXT,
    bytes            INTEGER NOT NULL DEFAULT 0,
    created          REAL,
    last_access      REAL,
    hits             INTEGER NOT NULL DEFAULT 0,
    sim_cost_seconds REAL,
    cache_version    INTEGER
)
"""

_UPSERT = """
INSERT INTO entries (key, kind, spec, bytes, created, last_access,
                     hits, sim_cost_seconds, cache_version)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
ON CONFLICT(key) DO UPDATE SET
    kind = excluded.kind,
    spec = excluded.spec,
    bytes = excluded.bytes,
    created = COALESCE(entries.created, excluded.created),
    last_access = excluded.last_access,
    hits = excluded.hits,
    sim_cost_seconds = COALESCE(excluded.sim_cost_seconds,
                                entries.sim_cost_seconds),
    cache_version = excluded.cache_version
"""

#: ``repro cache top --by`` vocabulary -> ORDER BY clause
_TOP_ORDERS = {
    "hits": "hits DESC, last_access DESC",
    "cost": "sim_cost_seconds DESC, hits DESC",
    "bytes": "bytes DESC, hits DESC",
    "recent": "last_access DESC, hits DESC",
}

_COLUMNS = ("key", "kind", "spec", "bytes", "created", "last_access",
            "hits", "sim_cost_seconds", "cache_version")


class CacheIndex:
    """Best-effort metadata index for one cache directory."""

    def __init__(self, cache_dir):
        self.path = os.path.join(str(cache_dir), INDEX_FILENAME)
        self._lock = threading.RLock()
        self._conn = None
        self._broken = False

    # -- connection management ------------------------------------------------

    def _connection(self):
        if self._conn is None:
            conn = sqlite3.connect(self.path, timeout=5.0,
                                   check_same_thread=False)
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=OFF")
                conn.execute(_SCHEMA)
                conn.commit()
            except sqlite3.Error:
                conn.close()
                raise
            self._conn = conn
        return self._conn

    def _write(self, op, sql, params=(), many=False):
        """Run a mutating statement; swallow SQLite errors (best-effort)."""
        with self._lock:
            try:
                conn = self._connection()
                if many:
                    conn.executemany(sql, params)
                else:
                    conn.execute(sql, params)
                conn.commit()
            except sqlite3.Error:
                _ERRORS.inc()
                return False
            _OPS.inc(op=op)
            return True

    def _read(self, sql, params=()):
        """Run a query; returns rows, or [] when the index is unusable."""
        with self._lock:
            try:
                return self._connection().execute(sql, params).fetchall()
            except sqlite3.Error:
                _ERRORS.inc()
                return []

    def close(self):
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    # -- write-through --------------------------------------------------------

    def record(self, key, kind, spec, nbytes, created, last_access,
               hits=0, sim_cost=None, cache_version=None, op="store"):
        """Upsert one entry. *hits* is the absolute count (the blob's
        ``meta`` block is authoritative; the index mirrors it). An
        existing row keeps its original ``created`` and any known
        ``sim_cost_seconds`` a later write does not supply."""
        spec_json = None if spec is None \
            else json.dumps(spec, sort_keys=True)
        self._write(op, _UPSERT,
                    (key, kind, spec_json, int(nbytes), created,
                     last_access, int(hits), sim_cost, cache_version))

    def bump_hit(self, key, last_access):
        """Increment *key*'s hit count in place — the warm-hit hot path.

        The increment happens in SQL (``hits = hits + 1``), so
        concurrent hits across threads *and* processes serialize inside
        SQLite instead of racing a read-modify-write; the blob itself is
        never rewritten (see :meth:`ResultCache.sync_hits` for the lazy
        fold-back). Returns False when the row is missing or the index
        is unusable, so the caller can fall back to a full
        :meth:`record` upsert from the blob's own ``meta`` block.
        """
        with self._lock:
            try:
                conn = self._connection()
                cursor = conn.execute(
                    "UPDATE entries SET hits = hits + 1, last_access = ? "
                    "WHERE key = ?", (last_access, key))
                conn.commit()
            except sqlite3.Error:
                _ERRORS.inc()
                return False
        if cursor.rowcount <= 0:
            return False
        _OPS.inc(op="hit")
        return True

    def remove(self, keys):
        """Drop the rows for *keys* (evicted or cleared blobs)."""
        keys = list(keys)
        if keys:
            self._write("remove", "DELETE FROM entries WHERE key = ?",
                        [(key,) for key in keys], many=True)

    def clear(self):
        """Drop every row (``repro cache clear``)."""
        self._write("clear", "DELETE FROM entries")

    def rebuild(self, rows):
        """Replace the whole index with *rows* (dicts in :data:`_COLUMNS`
        shape) — the ``repro cache reindex`` path. Recovers from a
        corrupt/garbage ``index.sqlite`` by recreating the file."""
        with self._lock:
            try:
                self._connection()
            except sqlite3.Error:
                # Unreadable database file: start over from scratch.
                self.close()
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.remove(self.path + suffix)
                    except OSError:
                        pass
            ok = self._write("rebuild", "DELETE FROM entries")
            if not ok:
                return False
            params = [
                (row["key"], row["kind"],
                 None if row.get("spec") is None
                 else json.dumps(row["spec"], sort_keys=True),
                 int(row.get("bytes", 0)), row.get("created"),
                 row.get("last_access"), int(row.get("hits", 0)),
                 row.get("sim_cost_seconds"), row.get("cache_version"))
                for row in rows]
            return self._write(
                "rebuild",
                "INSERT OR REPLACE INTO entries (%s) VALUES (%s)"
                % (", ".join(_COLUMNS), ", ".join("?" * len(_COLUMNS))),
                params, many=True)

    # -- queries --------------------------------------------------------------

    def get(self, key):
        """The row for *key* as a dict, or None."""
        rows = self._read(
            "SELECT %s FROM entries WHERE key = ?" % ", ".join(_COLUMNS),
            (key,))
        return self._row_dict(rows[0]) if rows else None

    def entries(self):
        """Every row as a dict, ordered by key (stable for tests)."""
        return [self._row_dict(row) for row in self._read(
            "SELECT %s FROM entries ORDER BY key" % ", ".join(_COLUMNS))]

    def top(self, by="hits", limit=20):
        """The *limit* entries ranked by *by* (``hits|cost|bytes|recent``)."""
        order = _TOP_ORDERS.get(by)
        if order is None:
            raise ValueError("unknown ranking %r (expected %s)"
                             % (by, "|".join(sorted(_TOP_ORDERS))))
        return [self._row_dict(row) for row in self._read(
            "SELECT %s FROM entries ORDER BY %s LIMIT ?"
            % (", ".join(_COLUMNS), order), (max(1, int(limit)),))]

    def costs_by_key(self):
        """``{key: sim_cost_seconds}`` for entries with a known cost —
        feeds the cost-aware prune policy."""
        return {key: cost for key, cost in self._read(
            "SELECT key, sim_cost_seconds FROM entries "
            "WHERE sim_cost_seconds IS NOT NULL")}

    def stats_dict(self):
        """JSON-able rollup (the ``index`` block of ``GET /cache/info``
        and ``repro cache stats``)."""
        totals = {"entries": 0, "bytes": 0, "hits": 0,
                  "sim_cost_seconds": 0.0}
        by_kind = {}
        for kind, count, nbytes, hits, cost in self._read(
                "SELECT kind, COUNT(*), COALESCE(SUM(bytes), 0), "
                "COALESCE(SUM(hits), 0), "
                "COALESCE(SUM(sim_cost_seconds), 0.0) "
                "FROM entries GROUP BY kind"):
            by_kind[kind] = {"entries": count, "bytes": nbytes,
                             "hits": hits, "sim_cost_seconds": cost}
            totals["entries"] += count
            totals["bytes"] += nbytes
            totals["hits"] += hits
            totals["sim_cost_seconds"] += cost
        return {"path": self.path, "by_kind": by_kind, **totals}

    @staticmethod
    def _row_dict(row):
        entry = dict(zip(_COLUMNS, row))
        if entry.get("spec"):
            try:
                entry["spec"] = json.loads(entry["spec"])
            except (TypeError, ValueError):
                pass
        return entry
