"""miniCUDA: a CUDA-C subset frontend (lexer, parser, AST, printer).

This is the dialect the paper's source-to-source transformations operate on.
The public surface is:

>>> from repro.minicuda import parse, print_source
>>> program = parse("__global__ void k(int *p) { p[threadIdx.x] = 1; }")
>>> print(print_source(program))            # doctest: +SKIP
"""

from . import ast, builders
from .lexer import Lexer, tokenize
from .parser import Parser, parse, parse_expr, parse_stmt
from .printer import Printer, print_expr, print_source, print_stmt
from .visitor import Transformer, Visitor, any_match, find_all

__all__ = [
    "ast", "builders",
    "Lexer", "tokenize",
    "Parser", "parse", "parse_expr", "parse_stmt",
    "Printer", "print_expr", "print_source", "print_stmt",
    "Transformer", "Visitor", "any_match", "find_all",
]
