"""Determinism properties the sweep engine and result cache rely on:
seeded dataset builders, a deterministic simulator, and therefore
identical results across repeated runs and across pool workers."""

import numpy as np
import pytest

from repro.benchmarks import get_benchmark
from repro.harness import (SweepExecutor, SweepPoint, TuningParams,
                           outputs_match, run_variant)

SCALE = 0.08


@pytest.mark.parametrize("bench_name,dataset", [
    ("BFS", "KRON"), ("SSSP", "KRON"), ("SP", "RAND-3"), ("BT", "T0032-C16"),
])
def test_dataset_rebuild_is_identical(bench_name, dataset):
    bench = get_benchmark(bench_name)
    first = bench.build_dataset(dataset, SCALE)
    second = bench.build_dataset(dataset, SCALE)
    assert first.name == second.name
    for attr in ("row", "col", "weights"):
        if hasattr(first, attr):
            assert np.array_equal(getattr(first, attr), getattr(second, attr))


def test_repeated_runs_identical():
    bench = get_benchmark("BFS")
    data = bench.build_dataset("KRON", SCALE)
    params = TuningParams(threshold=16, coarsen_factor=4, granularity="block")
    first = run_variant(bench, data, "CDP+T+C+A", params, keep_outputs=True)
    second = run_variant(bench, data, "CDP+T+C+A", params, keep_outputs=True)
    assert first.total_time == second.total_time
    assert first.breakdown == second.breakdown
    assert first.launch_queue_wait == second.launch_queue_wait
    assert outputs_match(first.outputs, second.outputs)


def test_trace_identical_across_runs():
    bench = get_benchmark("BFS")
    data = bench.build_dataset("KRON", SCALE)
    _, _, dev_a = bench.run(data, "cdp")
    _, _, dev_b = bench.run(data, "cdp")
    grids_a, grids_b = dev_a.trace.grids, dev_b.trace.grids
    assert len(grids_a) == len(grids_b)
    for ga, gb in zip(grids_a, grids_b):
        assert (ga.is_dynamic, ga.total_cycles) == \
            (gb.is_dynamic, gb.total_cycles)
        assert (ga.grid_dim, ga.block_dim) == (gb.grid_dim, gb.block_dim)


def test_identical_across_pool_workers():
    """The same point executed by different workers (and by the parent
    process) yields field-identical RunResults."""
    point = SweepPoint("BFS", "KRON", "CDP+T", TuningParams(threshold=16),
                       scale=SCALE)
    serial = SweepExecutor(jobs=1).run([point])[0]
    spread = SweepExecutor(jobs=4).run([point] * 4 + [
        SweepPoint("BFS", "KRON", "CDP", scale=SCALE)])
    assert all(result == serial for result in spread[:4])
