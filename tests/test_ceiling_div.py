"""Fig. 4 desired-thread-count analysis tests — one per paper pattern."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import expr_equal, find_thread_count
from repro.minicuda import parse_expr, print_expr


def count_of(grid_text):
    result = find_thread_count(parse_expr(grid_text))
    if result.count_expr is None:
        return None
    return print_expr(result.count_expr)


class TestPaperPatterns:
    def test_pattern_a(self):
        # (N - 1)/b + 1
        assert count_of("(N - 1) / b + 1") == "N"

    def test_pattern_b(self):
        # (N + b - 1)/b
        assert count_of("(N + b - 1) / b") == "N"

    def test_pattern_b_with_literal_block(self):
        assert count_of("(degree + 255) / 256") == "degree"

    def test_pattern_c(self):
        # N/b + (N%b == 0)?0:1 — the division is found first in pre-order.
        assert count_of("N / b + ((N % b == 0) ? 0 : 1)") == "N"

    def test_pattern_d(self):
        # ceil((float)N/b)
        assert count_of("ceil((float)N / b)") == "N"

    def test_pattern_e(self):
        # ceil(N/(float)b)
        assert count_of("ceil(N / (float)b)") == "N"

    def test_pattern_f_dim3(self):
        # dim3(...) — the x-dimension argument is analyzed.
        assert count_of("dim3((N + b - 1) / b, 1, 1)") == "N"

    def test_exactness_flag(self):
        assert find_thread_count(parse_expr("(N + 255) / 256")).exact
        assert not find_thread_count(parse_expr("numBlocks")).exact


class TestRobustness:
    def test_compound_count_expression(self):
        assert count_of("(end - start + 127) / 128") == "end - start"

    def test_call_as_count(self):
        assert count_of("(min(a, b) + 31) / 32") == "min(a, b)"

    def test_no_division_returns_none(self):
        assert count_of("numBlocks") is None

    def test_two_nonconstant_terms_kept_whole(self):
        # The heuristic keeps the whole non-constant residue as N.
        assert count_of("(n + m) / 32") == "n + m"

    def test_constant_residue_rejected(self):
        assert count_of("256 / b") is None
        assert count_of("(b + 1) / b") is None

    def test_divisor_variable_stripped(self):
        # The b on the left matches the divisor and is stripped (pattern b).
        assert count_of("(x + bsz - 1) / bsz") == "x"

    def test_count_node_is_identity_into_grid(self):
        grid = parse_expr("(deg + 255) / 256")
        result = find_thread_count(grid)
        found = any(node is result.count_expr for node in grid.walk())
        assert found, "count expression must be a node inside the grid expr"


class TestExprEqual:
    def test_different_shapes_unequal(self):
        assert not expr_equal(parse_expr("a + b"), parse_expr("a - b"))
        assert not expr_equal(parse_expr("a"), parse_expr("a[0]"))

    def test_literal_text_ignored(self):
        assert expr_equal(parse_expr("0x10"), parse_expr("16"))

    @given(st.sampled_from(["a + b", "n / 32", "p[i]", "f(x, y)",
                            "a ? b : c", "(float)n", "-x"]))
    @settings(deadline=None)
    def test_parse_twice_equal(self, text):
        assert expr_equal(parse_expr(text), parse_expr(text))
