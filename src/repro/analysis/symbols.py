"""Scope and symbol-table construction for miniCUDA functions.

Used by the transforms to pick fresh variable names that cannot collide with
anything the programmer wrote, and by the engine to resolve identifier kinds
(parameter, local, file-scope device variable, reserved CUDA builtin).
"""

from ..minicuda import ast
from ..minicuda.visitor import find_all

#: Reserved CUDA index/dimension variables (Sec. III-B replaces their uses).
RESERVED_IDENTS = frozenset(
    {"threadIdx", "blockIdx", "blockDim", "gridDim", "warpSize"})

#: Intrinsic functions known to the engine.
INTRINSIC_FUNCTIONS = frozenset({
    "__syncthreads", "__syncwarp", "__threadfence", "__threadfence_block",
    "atomicAdd", "atomicSub", "atomicMax", "atomicMin", "atomicCAS",
    "atomicExch", "atomicOr", "atomicAnd",
    "min", "max", "abs", "fabs", "fabsf", "fminf", "fmaxf",
    "ceil", "ceilf", "floor", "floorf", "sqrt", "sqrtf", "rsqrtf",
    "exp", "expf", "log", "logf", "pow", "powf", "tanh", "tanhf",
    "dim3", "printf", "cudaMalloc", "cudaFree", "memset",
})


def declared_names(func):
    """All names declared inside *func*: parameters plus every local."""
    names = {p.name for p in func.params}
    for decl_stmt in find_all(func, ast.DeclStmt):
        for decl in decl_stmt.decls:
            names.add(decl.name)
    return names


def used_names(node):
    """Every identifier mentioned anywhere under *node*."""
    names = set()
    for n in node.walk():
        if isinstance(n, ast.Ident):
            names.add(n.name)
        elif isinstance(n, ast.Launch):
            names.add(n.kernel)
        elif isinstance(n, (ast.VarDecl, ast.Param)):
            names.add(n.name)
        elif isinstance(n, ast.FunctionDef):
            names.add(n.name)
    return names


class NameAllocator:
    """Produce fresh names that do not collide with a taken set.

    The transforms instantiate one allocator per program so that names
    created by different passes never clash either.
    """

    def __init__(self, taken=()):
        self._taken = set(taken)
        self._counters = {}

    @classmethod
    def for_program(cls, program):
        return cls(used_names(program))

    def reserve(self, name):
        self._taken.add(name)
        return name

    def fresh(self, stem):
        """Return *stem* if free, else ``stem_2``, ``stem_3``, ..."""
        if stem not in self._taken:
            self._taken.add(stem)
            return stem
        count = self._counters.get(stem, 1)
        while True:
            count += 1
            candidate = "%s_%d" % (stem, count)
            if candidate not in self._taken:
                self._counters[stem] = count
                self._taken.add(candidate)
                return candidate


class SymbolTable:
    """Classification of every identifier used inside one function."""

    def __init__(self, program, func):
        self.func = func
        self.params = {p.name: p for p in func.params}
        self.locals = {}
        for decl_stmt in find_all(func, ast.DeclStmt):
            for decl in decl_stmt.decls:
                self.locals[decl.name] = decl
        self.functions = {f.name for f in program.functions()}
        self.globals = {}
        for decl in program.decls:
            if isinstance(decl, ast.DeclStmt):
                for var in decl.decls:
                    self.globals[var.name] = var

    def kind_of(self, name):
        """One of 'param', 'local', 'global', 'reserved', 'function',
        'intrinsic', or 'unknown'."""
        if name in self.params:
            return "param"
        if name in self.locals:
            return "local"
        if name in RESERVED_IDENTS:
            return "reserved"
        if name in self.functions:
            return "function"
        if name in INTRINSIC_FUNCTIONS:
            return "intrinsic"
        if name in self.globals:
            return "global"
        return "unknown"

    def type_of(self, name):
        if name in self.params:
            return self.params[name].type
        if name in self.locals:
            return self.locals[name].type
        if name in self.globals:
            return self.globals[name].type
        return None
