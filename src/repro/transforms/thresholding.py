"""Thresholding transformation (Sec. III, Fig. 3).

A dynamic launch ``child<<<gDim, bDim>>>(args)`` becomes::

    T0 _arg0 = args[0]; ...                     // hoisted, evaluated once
    int _threads = N;                           // Fig. 4 analysis result
    dim3 _tgDim = gDim[N := _threads];          // N swapped by identity
    dim3 _tbDim = bDim;
    if (_threads >= _THRESHOLD)
        child<<<_tgDim, _tbDim>>>(_arg0, ...);
    else
        child_serial(_arg0, ..., _tgDim, _tbDim);

where ``child_serial`` is a ``__device__`` clone of the child kernel with
loops over the (1-D) grid and block dimensions and reserved-variable uses
rewritten (Fig. 3b lines 09-15). When the Fig. 4 analysis cannot recover the
desired thread count the pass falls back to comparing
``_tgDim.x * _tbDim.x`` — a conservative value, never a correctness issue
(Sec. III-D).

Kernels that use barriers, warp primitives, or shared memory are skipped
(Sec. III-C), as are kernels whose ``return`` statements sit inside loops
(they cannot be rewritten into per-thread ``continue``).
"""

from ..minicuda import ast
from ..minicuda import builders as b
from ..analysis import (NameAllocator, analyze_kernel, declared_names,
                        find_launch_sites, find_thread_count, resolve_child)
from ..analysis.kernel_props import dims_used as analyze_kernel_dims
from ..minicuda.visitor import Transformer
from .base import (ModuleMeta, insert_after, rewrite_launches,
                   substitute_reserved, swap_node)

THRESHOLD_MACRO = "_THRESHOLD"

#: Default launch threshold: Sec. VIII-C reports a fixed value of 128 still
#: captures most of the benefit across all benchmarks.
DEFAULT_THRESHOLD = 128


class _ReturnToContinue(Transformer):
    """Rewrite thread-exit ``return`` into serial-loop ``continue``."""

    def __init__(self):
        self.loop_depth = 0
        self.nested_return = False

    def visit(self, node):
        is_loop = isinstance(node, (ast.For, ast.While, ast.DoWhile))
        if is_loop:
            self.loop_depth += 1
        result = super().visit(node)
        if is_loop:
            self.loop_depth -= 1
        return result

    def visit_Return(self, node):
        if self.loop_depth > 0:
            self.nested_return = True
            return node
        return ast.Continue()


class ThresholdingPass:
    """Automated thresholding (the paper's first contribution)."""

    def __init__(self, threshold=DEFAULT_THRESHOLD):
        self.threshold = threshold

    def run(self, program, allocator=None):
        """Transform every eligible dynamic launch site in *program*.

        Returns the :class:`ModuleMeta` describing what was rewritten.
        """
        allocator = allocator or NameAllocator.for_program(program)
        meta = ModuleMeta(macros={THRESHOLD_MACRO: self.threshold})
        serial_names = {}
        for site in find_launch_sites(program):
            child = resolve_child(program, site)
            reason = self._rejection_reason(program, child)
            if reason is not None:
                meta.skipped_sites.append((site.parent.name, child.name,
                                           reason))
                continue
            if child.name not in serial_names:
                serial_fn = self._build_serial(child, allocator)
                if serial_fn is None:
                    meta.skipped_sites.append(
                        (site.parent.name, child.name, "return inside loop"))
                    continue
                insert_after(program, child.name, serial_fn)
                serial_names[child.name] = serial_fn.name
                meta.serial_functions.append(serial_fn.name)
            self._rewrite_site(site, child, serial_names[child.name],
                               allocator, meta)
        return meta

    # -- legality -----------------------------------------------------------

    def _rejection_reason(self, program, child):
        props = analyze_kernel(program, child)
        if props.uses_barrier:
            return "barrier synchronization"
        if props.uses_warp_primitives:
            return "warp-level primitives"
        if props.uses_shared_memory:
            return "shared memory"
        return None

    # -- serial clone (Fig. 3b lines 09-15) ------------------------------

    def _build_serial(self, child, allocator):
        taken = declared_names(child)

        def local(stem):
            name = stem
            while name in taken:
                name = "_" + name
            taken.add(name)
            return name

        gdim, bdim = local("_gDim"), local("_bDim")
        props = analyze_kernel_dims(child)
        # 1-D children get the two loops of Fig. 3(b); multi-dimensional
        # children get one loop per dimension, innermost-x like the
        # hardware's linearization (Sec. III-B).
        dims = ("x",) if props <= {"x"} else ("x", "y", "z")
        block_vars = {d: local("_b" + d) for d in dims}
        thread_vars = {d: local("_t" + d) for d in dims}

        body = child.body.clone()
        rewriter = _ReturnToContinue()
        body = rewriter.visit(body)
        if rewriter.nested_return:
            return None
        member_map = {}
        for d in dims:
            member_map[("blockIdx", d)] = b.ident(block_vars[d])
            member_map[("threadIdx", d)] = b.ident(thread_vars[d])
        substitute_reserved(
            body, member_map=member_map,
            ident_map={
                "gridDim": b.ident(gdim),
                "blockDim": b.ident(bdim),
            })

        loop = body
        for d in dims:                      # x innermost
            loop = b.for_decl_range(thread_vars[d], 0, b.member(bdim, d),
                                    b.block(loop))
        for d in dims:
            loop = b.for_decl_range(block_vars[d], 0, b.member(gdim, d),
                                    b.block(loop))
        params = [p.clone() for p in child.params]
        params.append(ast.Param(ast.DIM3.clone(), gdim))
        params.append(ast.Param(ast.DIM3.clone(), bdim))
        return ast.FunctionDef(
            ("__device__",), ast.VOID.clone(),
            allocator.fresh(child.name + "_serial"),
            params, b.block(loop))

    # -- launch-site rewrite (Fig. 3b lines 21-26) -------------------------

    def _rewrite_site(self, site, child, serial_name, allocator, meta):
        target_launch = site.launch

        def rewrite(launch):
            if launch is not target_launch:
                return None
            return self._thresholded_block(launch, child, serial_name,
                                           allocator, meta)

        rewrite_launches(site.parent, rewrite)

    def _thresholded_block(self, launch, child, serial_name, allocator, meta):
        stmts = []
        arg_names = []
        for param, arg in zip(child.params, launch.args):
            name = allocator.fresh("_targ")
            arg_names.append(name)
            stmts.append(b.decl(param.type.clone(), name, arg))

        threads_var = allocator.fresh("_threads")
        grid_var = allocator.fresh("_tgDim")
        block_var = allocator.fresh("_tbDim")

        analysis = find_thread_count(launch.grid)
        if analysis.exact:
            grid_expr, swapped = swap_node(
                launch.grid, analysis.count_expr, b.ident(threads_var))
            assert swapped, "count expression not found inside grid expr"
            stmts.append(b.decl_int(threads_var, analysis.count_expr))
            stmts.append(b.decl_dim3(grid_var, grid_expr))
            stmts.append(b.decl_dim3(block_var, launch.block))
        else:
            stmts.append(b.decl_dim3(grid_var, launch.grid))
            stmts.append(b.decl_dim3(block_var, launch.block))
            total = b.mul(b.member(grid_var, "x"), b.member(block_var, "x"))
            if analyze_kernel_dims(child) - {"x"}:
                for dim in ("y", "z"):
                    total = b.mul(b.mul(total, b.member(grid_var, dim)),
                                  b.member(block_var, dim))
            stmts.append(b.decl_int(threads_var, total))

        launch_args = [b.ident(n) for n in arg_names]
        new_launch = ast.Launch(launch.kernel, b.ident(grid_var),
                                b.ident(block_var), launch_args)
        serial_call = b.call(serial_name,
                             *(launch_args + [b.ident(grid_var),
                                              b.ident(block_var)]))
        stmts.append(b.if_stmt(
            b.ge(b.ident(threads_var), b.ident(THRESHOLD_MACRO)),
            b.block(b.expr_stmt(new_launch)),
            b.block(b.expr_stmt(serial_call))))
        meta.thresholded_sites += 1
        return b.block(*stmts)
