"""Ablation — multi-block group size sweep (DESIGN.md: the paper's claim is
that multi-block granularity fills the gap between block and grid
granularity; this bench maps that trade-off space explicitly)."""

from repro.benchmarks import get_benchmark
from repro.harness import TuningParams, run_variant

from conftest import save

GROUPS = (1, 2, 4, 8, 16, 32)


def _sweep(scale):
    bench = get_benchmark("BFS")
    data = bench.build_dataset("KRON", scale)
    cdp = run_variant(bench, data, "CDP")
    rows = []
    for group in GROUPS:
        params = TuningParams(threshold=32, granularity="multiblock",
                              group_blocks=group)
        result = run_variant(bench, data, "CDP+T+A", params)
        rows.append((group, result.total_time,
                     cdp.total_time / result.total_time))
    grid = run_variant(bench, data, "CDP+T+A",
                       TuningParams(threshold=32, granularity="grid"))
    rows.append(("grid", grid.total_time,
                 cdp.total_time / grid.total_time))
    return rows


def test_group_size_tradeoff(benchmark, repro_scale, out_dir):
    rows = benchmark.pedantic(_sweep, args=(repro_scale,),
                              rounds=1, iterations=1)
    lines = ["Ablation: multi-block group size (BFS/KRON, T=32)",
             "%-8s %12s %9s" % ("group", "sim. cycles", "speedup")]
    for group, time, speedup in rows:
        lines.append("%-8s %12d %8.2fx" % (group, time, speedup))
    text = "\n".join(lines)
    save(out_dir, "ablation_granularity.txt", text)
    print()
    print(text)

    # group=1 must reproduce block granularity; all points must be valid.
    assert all(speedup > 0 for _, _, speedup in rows)
