"""Sec. VIII-C practical tuning — the quick-tune recipe (< 10 runs) versus
the guided search, across several benchmark/dataset pairs."""

from repro.benchmarks import get_benchmark
from repro.harness import geomean, quick_tune, tune

from conftest import save

PAIRS = (("BFS", "KRON"), ("SSSP", "KRON"), ("MSTF", "CNR"),
         ("SP", "RAND-3"))


def _study(scale, executor):
    rows = []
    for bench_name, dataset in PAIRS:
        bench = get_benchmark(bench_name)
        data = bench.build_dataset(dataset, scale)
        quick = quick_tune(bench, data, "CDP+T+C+A",
                           executor=executor, scale=scale)
        full = tune(bench, data, "CDP+T+C+A", strategy="guided",
                    executor=executor, scale=scale)
        rows.append((bench_name, dataset, quick.runs,
                     len(full.evaluated),
                     full.best_time / quick.best_time))
    return rows


def test_quick_tune_close_to_search(benchmark, repro_scale, out_dir,
                                    sweep_executor):
    rows = benchmark.pedantic(_study, args=(repro_scale, sweep_executor),
                              rounds=1, iterations=1)
    lines = ["Sec. VIII-C: quick tuning recipe vs guided search",
             "%-6s %-10s %10s %12s %18s" % (
                 "bench", "dataset", "quick runs", "search runs",
                 "quick/search perf")]
    for bench_name, dataset, q_runs, s_runs, ratio in rows:
        lines.append("%-6s %-10s %10d %12d %17.2fx" % (
            bench_name, dataset, q_runs, s_runs, ratio))
    ratios = [r for *_, r in rows]
    lines.append("geomean quality: %.2fx of searched best (1.0 = equal)"
                 % geomean(ratios))
    text = "\n".join(lines)
    save(out_dir, "autotune.txt", text)
    print()
    print(text)

    # Under ten runs, and within ~2x of the searched optimum everywhere
    # (the paper claims "very close"; our simulator is coarser).
    assert all(q_runs < 10 for _, _, q_runs, _, _ in rows)
    assert geomean(ratios) > 0.5
