"""Host runtime: the CPU side of a simulated CUDA application.

A :class:`Device` owns a compiled :class:`~repro.engine.module.Module`, device
memory, and the execution trace. Benchmark drivers use it like a slim CUDA
runtime::

    dev = Device(module)
    dist = dev.alloc("int", n, fill=-1)
    dev.launch("parent", blocks(n, 256), 256, row, col, dist, n, 0)
    dev.sync()
    timing = dev.finish()       # event-driven timing replay

Launching a kernel that the aggregation pass rewrote triggers the
"pre-allocated buffer" machinery: the runtime sizes, allocates, and zeroes
the aggregation buffers from the :class:`~repro.transforms.base.AggSpec`
and appends them to the user's arguments. For grid-granularity aggregation
the runtime also performs the aggregated child launch on the kernel's behalf
after the parent grid completes (Sec. V-A: the CPU is involved).
"""

import numpy as np

from ..engine.executor import run_grid
from ..engine.values import Dim3, alloc_for_type
from ..errors import RuntimeLaunchError
from ..minicuda.ast import Type
from ..sim.config import DeviceConfig
from ..sim.metrics import breakdown
from ..sim.scheduler import simulate
from ..sim.trace import HOST, HOST_AGG, LaunchRecord, Trace


def blocks(n, block_dim):
    """Ceiling-divided grid dimension for n work items."""
    return (int(n) + block_dim - 1) // block_dim


class Device:
    """A simulated GPU plus its host-side control state."""

    def __init__(self, module, config=None):
        self.module = module
        self.config = config or DeviceConfig()
        self.trace = Trace()
        self._allocs = []

    # -- memory -----------------------------------------------------------

    def alloc(self, type_name, count, fill=None):
        """Allocate *count* elements of a scalar type name ('int', 'float')."""
        ptr = alloc_for_type(Type(type_name), count)
        if fill is not None:
            ptr.array[:] = fill
        self._allocs.append(ptr)
        return ptr

    def upload(self, array):
        """Copy a numpy array into freshly allocated device memory."""
        array = np.asarray(array)
        kind = "float" if array.dtype.kind == "f" else "int"
        ptr = self.alloc(kind, len(array))
        ptr.array[:] = array
        return ptr

    # -- launches ------------------------------------------------------------

    def launch(self, kernel_name, grid_dim, block_dim, *args):
        """Host-launch a kernel (functionally executes it immediately;
        timing is derived later by :meth:`finish`)."""
        grid_dim = Dim3.of(grid_dim)
        block_dim = Dim3.of(block_dim)
        kernel = self.module.kernel(kernel_name)
        full_args = list(args)
        agg_specs = []
        promotion = None
        if self.module.meta is not None:
            agg_specs = self.module.meta.agg_specs_for(kernel_name)
            promotion = self.module.meta.promotion_spec_for(kernel_name)
        buffer_sets = []
        for spec in agg_specs:
            buffers = self._alloc_agg_buffers(spec, grid_dim, block_dim)
            buffer_sets.append((spec, buffers))
            full_args.extend(buffers[name] for name in spec.buffer_params)
        if promotion is not None:
            # One slot per original parameter plus the relaunch flag.
            for arg_type in promotion.arg_types:
                full_args.append(alloc_for_type(arg_type, 1))
            full_args.append(alloc_for_type(Type("int"), 1))
        if len(full_args) != kernel.num_params:
            raise RuntimeLaunchError(
                "kernel %r expects %d arguments, got %d"
                % (kernel_name, kernel.num_params, len(full_args)))

        record = LaunchRecord(kind=HOST, grid=None)
        grid = run_grid(self.module, self.trace, kernel_name, grid_dim,
                        block_dim, tuple(full_args), record)
        record.grid = grid
        self.trace.host_events.append(("launch", grid))

        for spec, buffers in buffer_sets:
            if spec.host_launch:
                self._host_agg_launch(spec, buffers, grid)
        return grid

    def _host_agg_launch(self, spec, buffers, parent_grid):
        """Grid-granularity aggregation: the host launches the aggregated
        child after reading the counters back (one group, segment base 0)."""
        num_parents = int(buffers[spec.buffer_params[-3]][0])
        sum_gdim = int(buffers[spec.buffer_params[-2]][0])
        max_bdim = int(buffers[spec.buffer_params[-1]][0])
        if num_parents <= 0 or sum_gdim <= 0:
            return
        arg_count = len(spec.arg_types)
        agg_args = [buffers[spec.buffer_params[k]] for k in range(arg_count)]
        agg_args.append(buffers[spec.buffer_params[arg_count]])      # scan
        agg_args.append(buffers[spec.buffer_params[arg_count + 1]])  # bdims
        agg_args.append(num_parents)
        record = LaunchRecord(kind=HOST_AGG, grid=None,
                              parent_grid=parent_grid)
        grid = run_grid(self.module, self.trace, spec.agg_kernel,
                        Dim3(sum_gdim), Dim3(max_bdim), tuple(agg_args),
                        record)
        record.grid = grid

    def _alloc_agg_buffers(self, spec, grid_dim, block_dim):
        num_groups, seg_size = _agg_geometry(spec, grid_dim.x, block_dim.x)
        per_thread = num_groups * seg_size
        buffers = {}
        for k, arg_type in enumerate(spec.arg_types):
            buffers[spec.buffer_params[k]] = alloc_for_type(
                arg_type, per_thread)
        int_t = Type("int")
        for name in spec.buffer_params[len(spec.arg_types):]:
            size = per_thread if ("_scan" in name or "_bdimarr" in name) \
                else num_groups
            buffers[name] = alloc_for_type(int_t, size)
        return buffers

    # -- completion ----------------------------------------------------------

    def sync(self):
        """cudaDeviceSynchronize(): a host barrier in the recorded timeline."""
        self.trace.host_events.append(("sync",))

    def finish(self):
        """Run the timing simulation over everything recorded so far."""
        if not self.trace.host_events or self.trace.host_events[-1] != ("sync",):
            self.sync()
        return simulate(self.trace, self.config)

    def breakdown(self):
        """Fig. 10 component totals for the recorded trace."""
        return breakdown(self.trace, self.config)


def _agg_geometry(spec, grid_blocks, block_threads):
    """(number of groups, per-group buffer segment size in slots)."""
    if spec.granularity == "grid":
        return 1, grid_blocks * block_threads
    if spec.granularity == "warp":
        warps_per_block = (block_threads + 31) // 32
        return grid_blocks * warps_per_block, 32
    group = spec.group_blocks
    num_groups = (grid_blocks + group - 1) // group
    return num_groups, group * block_threads
