"""Property-based scheduler invariants (hypothesis).

Example-based tests in ``test_queue.py``/``test_queue_priority.py`` pin
specific interleavings; this suite drives the
:class:`~repro.harness.queue.RequestScheduler` with *randomized*
workloads of ``submit``/``submit_all`` calls against a model and asserts
the invariants the serving tier leans on:

* **ordering** — with the worker plugged, an arbitrary mix of
  submissions and dedup joins always drains in ``(priority, seq)``
  order: strict FIFO within a class, upgraded tasks keep their arrival
  seq;
* **join monotonicity** — a dedup join may only *raise* priority and
  only *tighten* the deadline, whatever order the joiners arrive in;
* **conservation** — after a drain, every fresh key ran exactly once,
  ``submitted == completed``, every duplicate submission is a recorded
  dedup join, and the queue gauges return to zero.
"""

import threading
import time

from hypothesis import given, settings, strategies as st

from repro.harness.queue import RequestScheduler
from repro.harness.sweep import SweepPoint
from repro.harness.variants import TuningParams

#: Small threshold pool so random workloads actually collide (dedup).
POOL = (8, 16, 24, 32, 40, 48, 56, 64)
#: Sentinel spec that plugs the single worker; never in POOL.
PLUG = 99991


def make_point(threshold):
    """Distinct thresholds on CDP+T give distinct masked cache keys."""
    return SweepPoint("BFS", "KRON", "CDP+T",
                      TuningParams(threshold=threshold), scale=0.08)


class GatedExecutor:
    """Blocks every run until the test opens the gate; records order."""

    def __init__(self):
        self.entered = threading.Event()
        self.gate = threading.Event()
        self.ran = []

    def run_one(self, point, on_error="continue"):
        self.entered.set()
        assert self.gate.wait(30), "test gate never opened"
        self.ran.append(point.params.threshold)
        return ("result", point.params.threshold)


#: One workload op: a single submit or an atomic batch, with a priority
#: class drawn wide enough to cover unnamed classes too.
single_op = st.tuples(st.just("submit"),
                      st.lists(st.sampled_from(POOL), min_size=1,
                               max_size=1),
                      st.integers(min_value=0, max_value=3))
batch_op = st.tuples(st.just("submit_all"),
                     st.lists(st.sampled_from(POOL), min_size=1,
                              max_size=4),
                     st.integers(min_value=0, max_value=3))
workloads = st.lists(st.one_of(single_op, batch_op), min_size=1,
                     max_size=12)


def apply_to_model(model, seq_box, op):
    """Mirror one op onto the model: key -> [final_priority, seq]."""
    _kind, thresholds, priority = op
    for threshold in thresholds:
        entry = model.get(threshold)
        if entry is None:
            seq_box[0] += 1
            model[threshold] = [priority, seq_box[0]]
        else:
            entry[0] = min(entry[0], priority)


def run_workload(ops):
    """Drive a plugged single-worker scheduler with *ops*; returns
    (executed-thresholds-in-order, model, scheduler counters)."""
    executor = GatedExecutor()
    scheduler = RequestScheduler([executor], max_pending=256)
    model = {}
    seq_box = [0]
    try:
        plug = scheduler.submit(make_point(PLUG))
        assert executor.entered.wait(30)
        # Worker is now stuck inside PLUG: every submission below stays
        # queued, so joins/upgrades always land before execution.
        duplicates = 0
        for op in ops:
            kind, thresholds, priority = op
            if kind == "submit":
                scheduler.submit(make_point(thresholds[0]),
                                 priority=priority)
            else:
                scheduler.submit_all([make_point(t) for t in thresholds],
                                     priority=priority)
            # Every occurrence that does not enqueue a fresh task is a
            # dedup join: keys that existed before the op (each
            # occurrence joins), and repeat occurrences of a key first
            # seen inside this batch.
            seen_before = set(model)
            fresh_in_op = set()
            for threshold in thresholds:
                if threshold in seen_before or threshold in fresh_in_op:
                    duplicates += 1
                else:
                    fresh_in_op.add(threshold)
            apply_to_model(model, seq_box, op)
        executor.gate.set()
        assert scheduler.close(drain=True, timeout=30)
        stats = scheduler.stats_dict()
        return executor.ran, model, duplicates, stats
    finally:
        executor.gate.set()
        scheduler.close(drain=False, timeout=5)


@settings(max_examples=25, deadline=None)
@given(ops=workloads)
def test_drain_order_is_priority_then_fifo(ops):
    ran, model, _duplicates, _stats = run_workload(ops)
    assert ran[0] == PLUG
    expected = [threshold for threshold, (_prio, _seq) in
                sorted(model.items(), key=lambda item: item[1])]
    assert ran[1:] == expected


@settings(max_examples=25, deadline=None)
@given(ops=workloads)
def test_counter_conservation_after_drain(ops):
    ran, model, duplicates, stats = run_workload(ops)
    fresh = len(model) + 1              # + the plug task
    assert stats["submitted"] == fresh
    assert stats["completed"] == fresh
    assert stats["dedup_joins"] == duplicates
    assert len(ran) == fresh            # every fresh key ran exactly once
    assert stats["depth"] == 0 and stats["inflight"] == 0
    assert stats["shed"] == 0 and stats["rejected"] == 0


@settings(max_examples=25, deadline=None)
@given(priorities=st.lists(st.integers(min_value=0, max_value=5),
                           min_size=1, max_size=8),
       offsets=st.lists(st.one_of(
           st.none(),
           st.floats(min_value=10.0, max_value=100.0)),
           min_size=1, max_size=8))
def test_join_never_downgrades_priority_or_loosens_deadline(priorities,
                                                            offsets):
    executor = GatedExecutor()
    scheduler = RequestScheduler([executor], max_pending=256)
    try:
        plug = scheduler.submit(make_point(PLUG))
        assert executor.entered.wait(30)
        base = time.monotonic()
        task = scheduler.submit(make_point(16), priority=9,
                                deadline=base + 500.0)
        best_priority = 9
        best_deadline = base + 500.0
        joiners = [(p, o) for p, o in
                   zip(priorities, offsets + [None] * len(priorities))]
        for priority, offset in joiners:
            deadline = None if offset is None else base + offset
            joined = scheduler.submit(make_point(16), priority=priority,
                                      deadline=deadline)
            assert joined is task
            best_priority = min(best_priority, priority)
            if deadline is not None:
                best_deadline = min(best_deadline, deadline)
            assert task.priority == best_priority
            assert task.deadline == best_deadline
        executor.gate.set()
        assert scheduler.close(drain=True, timeout=30)
        assert scheduler.dedup_joins == len(joiners)
    finally:
        executor.gate.set()
        scheduler.close(drain=False, timeout=5)
