"""Engine value-type tests: Dim3, Ptr, allocation, C arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Dim3, Ptr, alloc_for_type, c_div, c_mod
from repro.errors import RuntimeLaunchError
from repro.minicuda.ast import Type


class TestDim3:
    def test_defaults(self):
        d = Dim3()
        assert (d.x, d.y, d.z) == (1, 1, 1)

    def test_of_int(self):
        d = Dim3.of(7)
        assert (d.x, d.y, d.z) == (7, 1, 1)

    def test_of_copies(self):
        a = Dim3(2, 3, 4)
        b = Dim3.of(a)
        b.x = 99
        assert a.x == 2

    def test_total(self):
        assert Dim3(2, 3, 4).total == 24

    def test_equality(self):
        assert Dim3(1, 2, 3) == Dim3(1, 2, 3)
        assert Dim3(1, 2, 3) != Dim3(3, 2, 1)

    def test_numpy_scalar_accepted(self):
        assert Dim3.of(np.int64(5)).x == 5


class TestPtr:
    def test_read_write(self):
        p = Ptr(np.zeros(4, dtype=np.int64))
        p[2] = 9
        assert p[2] == 9

    def test_offset_arithmetic(self):
        base = Ptr(np.arange(10, dtype=np.int64))
        shifted = base + 4
        assert shifted[0] == 4
        assert (shifted + 2)[0] == 6

    def test_len_accounts_for_offset(self):
        p = Ptr(np.zeros(10), offset=4)
        assert len(p) == 6

    def test_fill(self):
        p = Ptr(np.zeros(5, dtype=np.int64))
        (p + 2).fill(7)
        assert list(p.array) == [0, 0, 7, 7, 7]

    def test_to_numpy_is_a_copy(self):
        p = Ptr(np.arange(3, dtype=np.int64))
        snapshot = p.to_numpy()
        p[0] = 42
        assert snapshot[0] == 0


class TestAlloc:
    def test_int_allocation_zeroed(self):
        p = alloc_for_type(Type("int"), 8)
        assert p.array.dtype == np.int64
        assert p.array.sum() == 0

    def test_float_allocation(self):
        p = alloc_for_type(Type("float"), 8)
        assert p.array.dtype == np.float64

    def test_pointer_elements_get_object_array(self):
        p = alloc_for_type(Type("int", pointers=1), 4)
        assert p.array.dtype == object

    def test_dim3_elements_get_object_array(self):
        p = alloc_for_type(Type("dim3"), 4)
        assert p.array.dtype == object

    def test_unknown_type_rejected(self):
        with pytest.raises(RuntimeLaunchError):
            alloc_for_type(Type("struct foo"), 4)


class TestCArithmetic:
    def test_int_division_truncates_toward_zero(self):
        assert c_div(7, 2) == 3
        assert c_div(-7, 2) == -3
        assert c_div(7, -2) == -3
        assert c_div(-7, -2) == 3

    def test_float_division(self):
        assert c_div(7.0, 2) == 3.5
        assert c_div(7, 2.0) == 3.5

    def test_mod_sign_follows_dividend(self):
        assert c_mod(7, 3) == 1
        assert c_mod(-7, 3) == -1
        assert c_mod(7, -3) == 1

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=300, deadline=None)
    def test_div_mod_identity(self, a, b):
        if b == 0:
            return
        assert c_div(a, b) * b + c_mod(a, b) == a

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**6))
    @settings(max_examples=200, deadline=None)
    def test_matches_python_int_for_positive(self, a, b):
        if a >= 0:
            assert c_div(a, b) == a // b
