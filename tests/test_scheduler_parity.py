"""Golden parity suite: vectorized scheduler/accounting vs the oracle.

The vectorized :mod:`repro.sim.scheduler` and the batched
:func:`repro.sim.metrics.breakdown` must be *bit-identical* to the
pre-vectorization implementations — the timing model is the reproduction's
ground truth, so "almost the same" is a regression. The oracle scheduler is
kept verbatim in :mod:`repro.sim.scheduler_ref`; the scalar breakdown loop
is small enough to inline here.

The corpus is every benchmark (Table I's seven) × every variant label
(Fig. 9's nine series) at a small fixed scale, each replayed on the default
device and on a deliberately skewed one (fewer SMs, slower launch server,
pricier host round-trips) so congestion and underutilization paths are both
exercised.
"""

import pytest

from repro.benchmarks import all_benchmarks
from repro.harness.variants import VARIANT_LABELS, TuningParams, mask_params, \
    variant_to_run
from repro.runtime.host import Device
from repro.sim.config import DeviceConfig
from repro.sim.metrics import Breakdown, breakdown
from repro.sim.scheduler import simulate
from repro.sim.scheduler_ref import simulate_reference
from repro.sim.trace import HOST_AGG

SCALE = 0.1

#: Default device plus one skewed enough to move every cost term.
DEVICE_CONFIGS = (
    DeviceConfig(),
    DeviceConfig(num_sms=3, launch_service_interval=11,
                 device_launch_latency=137, host_agg_overhead=9001),
)

#: Tuning point used for every optimized label (masked per label).
BASE_PARAMS = TuningParams(threshold=64, coarsen_factor=2,
                           granularity="multiblock", group_blocks=4)


def breakdown_oracle(trace, config):
    """The pre-vectorization scalar accounting loop, verbatim."""
    result = Breakdown()
    for grid in trace.grids:
        own = grid.total_cycles - grid.reg_agg - grid.reg_disagg \
            - grid.reg_launch
        result.agg += grid.reg_agg
        result.disagg += grid.reg_disagg
        result.launch += grid.reg_launch
        if grid.is_dynamic:
            result.child += own
        else:
            result.parent += own
        if grid.launch is not None:
            if grid.launch.kind == HOST_AGG:
                result.launch += config.host_agg_overhead
            elif grid.is_dynamic:
                result.launch += (config.launch_service_interval
                                  + config.device_launch_latency)
    return result


def trace_for(bench, label):
    data = bench.build_dataset(bench.dataset_names[0], SCALE)
    variant, config = variant_to_run(label, mask_params(label, BASE_PARAMS))
    module = bench.module_for(variant, config)
    device = Device(module)
    bench.drive(device, data)
    return device.trace


CASES = [(bench, label)
         for bench in all_benchmarks() for label in VARIANT_LABELS]


@pytest.mark.parametrize(
    "bench,label", CASES,
    ids=["%s-%s" % (b.name, label) for b, label in CASES])
def test_bit_identical_timing_and_breakdown(bench, label):
    trace = trace_for(bench, label)
    for config in DEVICE_CONFIGS:
        got = simulate(trace, config)
        want = simulate_reference(trace, config)
        # One dataclass comparison covers total_time, every GridTiming
        # (ready/first_start/finish/blocks_done), the launch-queue wait,
        # and both launch counters.
        assert got == want
        assert got.launch_queue_wait == want.launch_queue_wait
        assert breakdown(trace, config) == breakdown_oracle(trace, config)


def test_corpus_covers_all_benchmarks_and_labels():
    names = {b.name for b, _ in CASES}
    assert len(names) == 7
    assert {label for _, label in CASES} == set(VARIANT_LABELS)


def test_vectorized_launch_batch_path_matches_scalar_path():
    """Force both sides of the _LAUNCH_BATCH_MIN split over one trace."""
    import repro.sim.scheduler as sched
    bench = next(b for b in all_benchmarks() if b.name == "BFS")
    trace = trace_for(bench, "CDP")
    want = simulate_reference(trace, DeviceConfig())
    original = sched._LAUNCH_BATCH_MIN
    try:
        for forced in (1, 1 << 30):     # always-NumPy vs always-scalar
            sched._LAUNCH_BATCH_MIN = forced
            assert simulate(trace, DeviceConfig()) == want
    finally:
        sched._LAUNCH_BATCH_MIN = original
