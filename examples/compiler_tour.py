#!/usr/bin/env python
"""A tour of the compiler internals on a single launch site.

Walks the same pipeline the paper's Fig. 8(a) shows — thresholding, then
coarsening, then aggregation — printing the source after each pass, plus
the Fig. 4 thread-count analysis result that thresholding depends on.

Run:  python examples/compiler_tour.py
"""

from repro import parse, print_source
from repro.analysis import analyze_kernel, find_launch_sites, \
    find_thread_count
from repro.minicuda.printer import print_expr
from repro.transforms import (AggregationPass, CoarseningPass,
                              ThresholdingPass)
from repro.analysis import NameAllocator

SOURCE = """
__global__ void child(float *x, float *y, int start, int count) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < count) {
        y[start + tid] = 2.0f * x[start + tid] + 1.0f;
    }
}

__global__ void parent(int *offsets, float *x, float *y, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        int start = offsets[tid];
        int count = offsets[tid + 1] - start;
        if (count > 0) {
            child<<<(count + 63) / 64, 64>>>(x, y, start, count);
        }
    }
}
"""


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main():
    program = parse(SOURCE)

    banner("Static analysis")
    site = find_launch_sites(program)[0]
    props = analyze_kernel(program, "child")
    print("launch site: %s -> %s" % (site.parent.name, site.child_name))
    print("child thresholdable (Sec. III-C): %s" % props.thresholdable)
    analysis = find_thread_count(site.launch.grid)
    print("Fig. 4 desired thread count: %s (exact=%s)"
          % (print_expr(analysis.count_expr), analysis.exact))

    allocator = NameAllocator.for_program(program)

    banner("After thresholding (Fig. 3)")
    ThresholdingPass(threshold=128).run(program, allocator)
    print(print_source(program))

    banner("After coarsening (Fig. 6)")
    CoarseningPass(factor=4).run(program, allocator)
    print(print_source(program))

    banner("After multi-block aggregation (Fig. 7)")
    AggregationPass("multiblock", group_blocks=8).run(program, allocator)
    print(print_source(program))


if __name__ == "__main__":
    main()
