"""The paper's seven evaluation benchmarks (Table I), each with No-CDP and
CDP variants written in the miniCUDA dialect."""

from .bfs import BFSBenchmark
from .bt import BTBenchmark
from .common import INF, Benchmark
from .mstf import MSTFBenchmark
from .mstv import MSTVBenchmark
from .registry import (FIG9_PAIRS, FIG12_BENCHMARKS, all_benchmarks,
                       get_benchmark)
from .sp import SPBenchmark
from .sssp import SSSPBenchmark
from .tc import TCBenchmark

__all__ = [
    "BFSBenchmark", "BTBenchmark", "INF", "Benchmark", "MSTFBenchmark",
    "MSTVBenchmark", "FIG9_PAIRS", "FIG12_BENCHMARKS", "all_benchmarks",
    "get_benchmark", "SPBenchmark", "SSSPBenchmark", "TCBenchmark",
]
