#!/usr/bin/env python
"""BFS on a Kronecker graph across all optimization combinations.

Reproduces one column of the paper's Fig. 9 interactively: for each variant
the benchmark's outputs are checked against the No-CDP reference and the
simulated time and speedup over plain CDP are reported.

Run:  python examples/graph_traversal.py [scale]
"""

import sys

from repro.benchmarks import get_benchmark
from repro.harness import TuningParams, run_variant


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    bench = get_benchmark("BFS")
    graph = bench.build_dataset("KRON", scale)
    print("graph:", graph)

    reference = run_variant(bench, graph, "No CDP", keep_outputs=True)
    cdp = run_variant(bench, graph, "CDP",
                      check_against=reference.outputs)

    params = TuningParams(threshold=32, coarsen_factor=8,
                          granularity="multiblock", group_blocks=8)
    print("\n%-14s %-28s %12s %9s" % ("variant", "parameters",
                                      "sim. cycles", "speedup"))
    print("-" * 68)
    rows = [
        ("No CDP", TuningParams()),
        ("CDP", TuningParams()),
        ("KLAP (CDP+A)", TuningParams(granularity="block")),
        ("CDP+T", TuningParams(threshold=32)),
        ("CDP+T+C", TuningParams(threshold=32, coarsen_factor=8)),
        ("CDP+T+A", TuningParams(threshold=32, granularity="multiblock")),
        ("CDP+T+C+A", params),
    ]
    for label, row_params in rows:
        result = run_variant(bench, graph, label, row_params,
                             check_against=reference.outputs)
        print("%-14s %-28s %12d %8.2fx" % (
            label, row_params.describe(), result.total_time,
            cdp.total_time / result.total_time))
    print("\nall variants produced identical BFS distances")


if __name__ == "__main__":
    main()
