#!/usr/bin/env python
"""Execution-time breakdown (Fig. 10 style) for one benchmark.

Shows where cycles go — parent work, child work, launch overhead,
aggregation and disaggregation logic — and how thresholding and coarsening
shift the balance: thresholding moves child work into parents and shrinks
every launch-related component; coarsening amortizes disaggregation.

Run:  python examples/breakdown.py [BENCHMARK] [DATASET] [scale]
"""

import sys

from repro.benchmarks import get_benchmark
from repro.harness import TuningParams, run_variant

VARIANTS = (
    ("KLAP (CDP+A)", TuningParams(granularity="block")),
    ("CDP+T+A", TuningParams(threshold=32, granularity="block")),
    ("CDP+T+C+A", TuningParams(threshold=32, coarsen_factor=8,
                               granularity="block")),
)


def main():
    bench_name = sys.argv[1] if len(sys.argv) > 1 else "BFS"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "KRON"
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.25
    bench = get_benchmark(bench_name)
    data = bench.build_dataset(dataset, scale)
    print("%s on %s" % (bench.name, data))

    base_total = None
    print("\n%-14s %8s %8s %8s %8s %8s %8s" % (
        "variant", "parent", "child", "launch", "agg", "disagg", "total"))
    print("-" * 68)
    for label, params in VARIANTS:
        result = run_variant(bench, data, label, params)
        total = sum(result.breakdown.values())
        if base_total is None:
            base_total = total
        row = {k: v / base_total for k, v in result.breakdown.items()}
        print("%-14s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f" % (
            label, row["parent"], row["child"], row["launch"],
            row["agg"], row["disagg"], total / base_total))
    print("\n(normalized to the KLAP (CDP+A) total, like the paper's "
          "Fig. 10)")


if __name__ == "__main__":
    main()
