"""Parallel sweep engine for the evaluation's dense run grids.

Figures 9-12, Table 1, and the autotuner are all sweeps over
(benchmark × dataset × variant × tuning params). This module executes such
a grid as a declarative list of :class:`SweepPoint`\\ s, fanned out over a
``multiprocessing`` pool with deterministic result ordering, with an
optional persistent :class:`~repro.harness.cache.ResultCache` so repeated
runs skip already-simulated points.

Points are specified by *names* (benchmark, dataset, scale) rather than
live objects so they pickle cheaply; each worker rebuilds the benchmark and
dataset locally (dataset construction is seeded, hence deterministic) and
memoizes them across the points it serves. The simulator itself is
single-threaded and deterministic, so a parallel sweep returns RunResults
identical to a serial one — the test suite enforces this.
"""

import multiprocessing
import os
from dataclasses import asdict, dataclass, field

from ..benchmarks import get_benchmark
from ..sim.config import DeviceConfig
from .cache import ResultCache
from .runner import run_variant
from .variants import TuningParams, uses


@dataclass(frozen=True)
class SweepPoint:
    """One (benchmark, dataset, variant, params, device, scale) cell."""

    benchmark: str
    dataset: str
    label: str = "CDP"
    params: TuningParams = field(default_factory=TuningParams)
    device_config: DeviceConfig = field(default_factory=DeviceConfig)
    scale: float = 0.25

    def spec(self):
        """Canonical JSON-able description (the cache key input)."""
        return {
            "benchmark": self.benchmark,
            "dataset": self.dataset,
            "label": self.label,
            "params": asdict(self.params),
            "device_config": asdict(self.device_config),
            "scale": repr(float(self.scale)),
        }

    def describe(self):
        return "%s/%s %s [%s] @%g" % (self.benchmark, self.dataset,
                                      self.label, self.params.describe(),
                                      self.scale)


def sweep_grid(pairs, labels, scale=0.25, params=None, params_for=None,
               device_config=None):
    """Expand a declarative (pairs × labels) grid into SweepPoints.

    *params_for*, if given, is a ``(bench, dataset, label) -> TuningParams``
    callable; otherwise every point shares *params*, with the components a
    label does not use masked to None (so e.g. a plain CDP point keys and
    displays identically whatever threshold the grid carries).
    """
    device_config = device_config or DeviceConfig()
    params = params or TuningParams()
    points = []
    for bench_name, dataset_name in pairs:
        for label in labels:
            if params_for is not None:
                point_params = params_for(bench_name, dataset_name, label)
            else:
                granularity = params.granularity if uses(label, "A") else None
                point_params = TuningParams(
                    threshold=params.threshold if uses(label, "T") else None,
                    coarsen_factor=params.coarsen_factor
                    if uses(label, "C") else None,
                    granularity=granularity,
                    group_blocks=params.group_blocks
                    if granularity == "multiblock" else 8)
            points.append(SweepPoint(bench_name, dataset_name, label,
                                     point_params, device_config, scale))
    return points


# -- worker-side execution ----------------------------------------------------

#: Per-process (benchmark, dataset) memo — points of one sweep usually share
#: a handful of datasets, and construction is deterministic, so reuse is
#: both safe and a large constant-factor win.
_DATASET_MEMO = {}
_DATASET_MEMO_LIMIT = 8


def _bench_and_data(benchmark, dataset, scale):
    key = (benchmark, dataset, scale)
    entry = _DATASET_MEMO.get(key)
    if entry is None:
        bench = get_benchmark(benchmark)
        entry = (bench, bench.build_dataset(dataset, scale))
        if len(_DATASET_MEMO) >= _DATASET_MEMO_LIMIT:
            _DATASET_MEMO.pop(next(iter(_DATASET_MEMO)))
        _DATASET_MEMO[key] = entry
    return entry


def _simulate_point(point):
    """Compile + execute + time one point (tests patch this to count/ban
    simulator invocations)."""
    bench, data = _bench_and_data(point.benchmark, point.dataset, point.scale)
    return run_variant(bench, data, point.label, point.params,
                       point.device_config)


def _worker(point):
    return _simulate_point(point)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# -- the executor -------------------------------------------------------------

@dataclass
class SweepStats:
    """Cumulative counters for one executor."""

    points: int = 0
    hits: int = 0
    simulated: int = 0


class SweepExecutor:
    """Runs SweepPoints — optionally in parallel, optionally cached.

    ``run`` resolves cache hits first, dispatches only the misses (to a
    worker pool when ``jobs > 1``), stores fresh results back, and returns
    results in the exact order of the input points. A fully-warm run never
    touches the simulator or spawns a pool.

    The pool is created lazily on the first parallel batch and reused
    across ``run`` calls, so multi-grid drivers (figures, tuners) keep
    their workers — and the workers' dataset memos — alive. Call
    :meth:`close` (or use the executor as a context manager) to release
    the workers early; otherwise they end with the process.
    """

    def __init__(self, jobs=1, cache=None):
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache)
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.stats = SweepStats()
        self._pool = None

    def run(self, points):
        points = list(points)
        self.stats.points += len(points)
        results = [None] * len(points)
        misses = []
        for index, point in enumerate(points):
            cached = self.cache.get(point) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                misses.append(index)
        self.stats.hits += len(points) - len(misses)
        if misses:
            todo = [points[index] for index in misses]
            if self.jobs > 1 and len(todo) > 1:
                if self._pool is None:
                    self._pool = _pool_context().Pool(self.jobs)
                fresh = self._pool.map(_worker, todo)
            else:
                fresh = [_simulate_point(point) for point in todo]
            self.stats.simulated += len(todo)
            for index, result in zip(misses, fresh):
                results[index] = result
                if self.cache is not None:
                    self.cache.put(points[index], result)
        return results

    def run_one(self, point):
        return self.run([point])[0]

    def close(self):
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def run_sweep(points, jobs=1, cache_dir=None):
    """Convenience wrapper: execute *points*, return (results, stats)."""
    cache = ResultCache(cache_dir) if cache_dir else None
    executor = SweepExecutor(jobs=jobs, cache=cache)
    return executor.run(points), executor.stats
