"""Compiled kernel modules: parse → transpile → exec → callable kernels.

Compilation is split in two so the expensive half can be memoized
(:mod:`repro.engine.cache`):

* :func:`compile_artifact` does everything deterministic and shareable —
  parse, Python codegen, ``compile()`` to a code object — and returns an
  immutable :class:`ModuleArtifact`;
* :class:`Module` instantiates an artifact into a private namespace
  (``exec`` of the cached code object plus fresh global cells), so two
  Modules built from one artifact never share mutable state.
"""

from dataclasses import dataclass
from types import CodeType
from typing import Optional

from ..errors import CodegenError
from ..minicuda import ast, parse
from ..sim.costmodel import CostModel
from .codegen import generate_module_source
from .values import Ptr, alloc_for_type


@dataclass
class KernelHandle:
    """One compiled kernel: the generated Python callable plus launch facts."""

    name: str
    fn: callable
    has_barrier: bool
    params: list                      # [(name, Type), ...]
    multi_dim: bool = False           # compiled with the 3-D convention

    @property
    def num_params(self):
        return len(self.params)


@dataclass(frozen=True)
class ModuleArtifact:
    """The immutable output of compiling one miniCUDA translation unit.

    Everything here is shareable across :class:`Module` instances (and
    threads): the AST and metadata are only read after construction, and
    the code object is executed into a fresh namespace per Module. This
    is what the compiled-kernel cache (:mod:`repro.engine.cache`) stores.
    """

    program: ast.Program
    meta: Optional[object]            # transforms.ModuleMeta or None
    cost_model: CostModel
    python_source: str
    code: CodeType
    kernel_info: dict                 # kernel name -> codegen facts


def compile_artifact(source_or_program, meta=None, cost_model=None):
    """Parse (if needed) and transpile one translation unit.

    This is the expensive, re-usable half of module compilation: the
    returned :class:`ModuleArtifact` carries no mutable run state and may
    back any number of :class:`Module` instances.
    """
    if isinstance(source_or_program, ast.Program):
        program = source_or_program
    else:
        program = parse(source_or_program)
    cost_model = cost_model or CostModel()
    macros = dict(meta.macros) if meta is not None else {}
    python_source, kernel_info = generate_module_source(
        program, macros, cost_model)
    code = compile(python_source, "<minicuda-codegen>", "exec")
    return ModuleArtifact(program=program, meta=meta, cost_model=cost_model,
                          python_source=python_source, code=code,
                          kernel_info=kernel_info)


class Module:
    """A compiled miniCUDA translation unit.

    ``meta`` is the :class:`~repro.transforms.base.ModuleMeta` produced by
    the transformation pipeline (or None for untransformed code); its macro
    values are baked into the generated Python as constants, mirroring the
    paper's compile-time ``-D_THRESHOLD=...`` overrides.
    """

    def __init__(self, source_or_program, meta=None, cost_model=None,
                 artifact=None):
        if artifact is None:
            artifact = compile_artifact(source_or_program, meta, cost_model)
        self.artifact = artifact
        self.program = artifact.program
        self.meta = artifact.meta
        self.cost_model = artifact.cost_model
        self.python_source = artifact.python_source
        self.namespace = {}
        exec(artifact.code, self.namespace)
        self._allocate_globals()
        self.kernels = {}
        for name, info in artifact.kernel_info.items():
            self.kernels[name] = KernelHandle(
                name=name,
                fn=self.namespace["k_" + name],
                has_barrier=info["has_barrier"],
                params=info["params"],
                multi_dim=info["multi_dim"])

    @classmethod
    def from_artifact(cls, artifact):
        """Instantiate a (possibly cached) :class:`ModuleArtifact` into a
        fresh Module with its own namespace and zeroed globals."""
        return cls(None, artifact=artifact)

    def _allocate_globals(self):
        """File-scope __device__ variables become module-level Ptr cells."""
        for decl in self.program.decls:
            if not isinstance(decl, ast.DeclStmt):
                continue
            for var in decl.decls:
                if var.array_size is not None:
                    if not isinstance(var.array_size, ast.IntLit):
                        raise CodegenError(
                            "global array %r needs a literal size" % var.name)
                    count = var.array_size.value
                else:
                    count = 1
                cell = alloc_for_type(var.type, count)
                if var.init is not None:
                    if not isinstance(var.init, (ast.IntLit, ast.FloatLit)):
                        raise CodegenError(
                            "global %r needs a literal initializer"
                            % var.name)
                    cell[0] = var.init.value
                self.namespace["g_" + var.name] = cell

    def kernel(self, name):
        try:
            return self.kernels[name]
        except KeyError:
            raise CodegenError("module has no kernel %r" % name) from None

    def global_ptr(self, name):
        """The Ptr cell backing a file-scope __device__ variable."""
        return self.namespace["g_" + name]

    def reset_globals(self):
        """Re-zero every file-scope variable (between benchmark runs)."""
        self._allocate_globals()
