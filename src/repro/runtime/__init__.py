"""Host-side runtime API (device memory, launches, sync, timing)."""

from .host import Device, blocks

__all__ = ["Device", "blocks"]
