"""Promotion tests (KLAP's recursion-to-loop optimization, Sec. IX)."""

import numpy as np
import pytest

from repro.engine import Module
from repro.errors import TransformError
from repro.minicuda import ast, parse, print_source
from repro.minicuda.visitor import find_all
from repro.runtime import Device
from repro.transforms import PromotionPass, find_promotable_sites

# Double-buffered pointer jumping: each round halves the depth of a linked
# structure and recursively relaunches itself with the buffers swapped —
# the classic single-block recursive CDP pattern. (Double buffering keeps
# rounds well-defined regardless of intra-round thread interleaving; the
# swapped pointer arguments also exercise pointer-valued promotion buffers.)
RECURSIVE_SRC = """
__global__ void jump(int *cur, int *nxt, int *changed, int n, int depth) {
    int t = threadIdx.x;
    if (t < n) {
        int nn = cur[cur[t]];
        nxt[t] = nn;
        if (nn != cur[t]) {
            atomicAdd(&changed[0], 1);
        }
    }
    __syncthreads();
    if (threadIdx.x == 0) {
        if (changed[0] > 0 && depth < 64) {
            changed[0] = 0;
            jump<<<1, 256>>>(nxt, cur, changed, n, depth + 1);
        }
    }
}
"""


def run_jump(module, n=200, seed=3):
    dev = Device(module)
    rng = np.random.default_rng(seed)
    # mostly one long chain (deep recursion), a few fresh roots
    next_arr = np.arange(n, dtype=np.int64)
    for i in range(1, n):
        if rng.random() < 0.95:
            next_arr[i] = i - 1
    cur = dev.upload(next_arr)
    nxt = dev.upload(next_arr)
    changed = dev.alloc("int", 1)
    dev.launch("jump", 1, 256, cur, nxt, changed, n, 0)
    dev.sync()
    dev.finish()
    # After convergence the final round writes no changes, so both buffers
    # hold the fixed point.
    assert np.array_equal(cur.to_numpy(), nxt.to_numpy())
    return cur.to_numpy(), dev


class TestDetection:
    def test_site_found(self):
        sites = find_promotable_sites(parse(RECURSIVE_SRC))
        assert len(sites) == 1
        assert sites[0].parent.name == "jump"

    def test_non_recursive_not_promotable(self, bfs_like_source):
        assert find_promotable_sites(parse(bfs_like_source)) == []

    def test_multiblock_recursion_not_promotable(self):
        src = """
        __global__ void r(int *p, int d) {
            if (d > 0 && threadIdx.x == 0) {
                r<<<4, 32>>>(p, d - 1);
            }
        }
        """
        assert find_promotable_sites(parse(src)) == []


class TestStructure:
    def test_launch_removed_and_loop_inserted(self):
        program = parse(RECURSIVE_SRC)
        meta = PromotionPass().run(program)
        assert len(meta.promotion_specs) == 1
        kernel = program.function("jump")
        assert not find_all(kernel, ast.Launch)
        whiles = find_all(kernel, ast.While)
        assert whiles  # the round loop

    def test_buffer_params_appended(self):
        program = parse(RECURSIVE_SRC)
        meta = PromotionPass().run(program)
        spec = meta.promotion_specs[0]
        kernel = program.function("jump")
        names = [p.name for p in kernel.params]
        assert names[-len(spec.buffer_params):] == spec.buffer_params
        # one buffer per original param + the flag
        assert len(spec.buffer_params) == 6

    def test_output_reparses(self):
        program = parse(RECURSIVE_SRC)
        PromotionPass().run(program)
        text = print_source(program)
        assert print_source(parse(text)) == text

    def test_return_in_loop_rejected(self):
        src = """
        __global__ void r(int *p, int d) {
            for (int i = 0; i < d; ++i) {
                if (p[i] < 0) { return; }
            }
            if (threadIdx.x == 0 && d > 0) {
                r<<<1, 32>>>(p, d - 1);
            }
        }
        """
        with pytest.raises(TransformError):
            PromotionPass().run(parse(src))


class TestSemanticsAndEffect:
    def test_promoted_kernel_computes_same_result(self):
        reference, ref_dev = run_jump(Module(RECURSIVE_SRC))
        program = parse(RECURSIVE_SRC)
        meta = PromotionPass().run(program)
        promoted, prom_dev = run_jump(Module(program, meta))
        assert np.array_equal(reference, promoted)
        # pointer jumping converged: everything points at a root
        roots = reference[reference]
        assert np.array_equal(roots, reference)

    def test_promotion_eliminates_all_launches(self):
        _, ref_dev = run_jump(Module(RECURSIVE_SRC))
        assert ref_dev.trace.total_launches("device") > 2

        program = parse(RECURSIVE_SRC)
        meta = PromotionPass().run(program)
        _, prom_dev = run_jump(Module(program, meta))
        assert prom_dev.trace.total_launches("device") == 0

    def test_promotion_is_faster(self):
        _, ref_dev = run_jump(Module(RECURSIVE_SRC))
        program = parse(RECURSIVE_SRC)
        meta = PromotionPass().run(program)
        _, prom_dev = run_jump(Module(program, meta))
        assert prom_dev.finish().total_time < ref_dev.finish().total_time
