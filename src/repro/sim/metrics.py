"""Execution-time breakdown accounting (Fig. 10).

The paper decomposes execution time into five components: parent work, child
work, launch, aggregation, and disaggregation. We attribute *work cycles*
(the quantity our two-phase simulation measures exactly):

* ``agg`` / ``disagg`` — cycles of transform-tagged statements;
* ``launch`` — parent-side launch-issue cycles plus the launch-queue
  service/latency cycles and host round-trips for grid-granularity
  aggregation;
* ``parent`` — remaining cycles of host-launched grids;
* ``child`` — remaining cycles of dynamically / host-agg launched grids.

Thresholding moves child cycles into parents (serialization), exactly the
effect Fig. 10 discusses.
"""

from dataclasses import dataclass

import numpy as np

from .config import DeviceConfig
from .trace import HOST, HOST_AGG


@dataclass
class Breakdown:
    """Cycle totals per Fig. 10 component."""

    parent: int = 0
    child: int = 0
    launch: int = 0
    agg: int = 0
    disagg: int = 0

    COMPONENTS = ("parent", "child", "launch", "agg", "disagg")

    @property
    def total(self):
        return self.parent + self.child + self.launch + self.agg + self.disagg

    def as_dict(self):
        return {name: getattr(self, name) for name in self.COMPONENTS}

    def normalized(self, denominator=None):
        base = denominator if denominator else self.total
        if base == 0:
            return {name: 0.0 for name in self.COMPONENTS}
        return {name: getattr(self, name) / base
                for name in self.COMPONENTS}


def breakdown(trace, config=None):
    """Compute the Fig. 10 component totals for one run's trace.

    Accumulated as column sums over one (grids × counters) NumPy matrix
    rather than per-grid Python arithmetic; per-launch overheads reduce to
    counting grids by incoming-launch kind. All counters are exact integer
    cycle totals, so the result is identical to the scalar loop's.
    """
    config = config or DeviceConfig()
    grids = trace.grids
    result = Breakdown()
    if not grids:
        return result
    n_host_agg = 0
    n_device = 0
    rows = np.fromiter(
        (v for g in grids
         for v in (g.total_cycles, g.reg_agg, g.reg_disagg, g.reg_launch,
                   g.is_dynamic)),
        dtype=np.int64, count=len(grids) * 5).reshape(len(grids), 5)
    for grid in grids:
        launch = grid.launch
        if launch is None or launch.kind == HOST:
            continue
        if launch.kind == HOST_AGG:
            n_host_agg += 1
        else:
            n_device += 1
    total, agg, disagg, launch_cycles = (
        int(v) for v in rows[:, :4].sum(axis=0))
    own = rows[:, 0] - rows[:, 1] - rows[:, 2] - rows[:, 3]
    child = int(own[rows[:, 4] == 1].sum())
    result.agg = agg
    result.disagg = disagg
    result.parent = total - agg - disagg - launch_cycles - child
    result.child = child
    result.launch = (launch_cycles
                     + n_host_agg * config.host_agg_overhead
                     + n_device * (config.launch_service_interval
                                   + config.device_launch_latency))
    return result
