"""Benchmark correctness: every variant of every benchmark computes the
same answer — the central soundness requirement for the transformations."""

import numpy as np
import pytest

from repro.benchmarks import all_benchmarks, get_benchmark
from repro.harness import outputs_match
from repro.transforms import OptConfig

SMALL = 0.12


@pytest.fixture(scope="module")
def references():
    """No-CDP outputs per benchmark at the test scale."""
    refs = {}
    for bench in all_benchmarks():
        data = bench.build_dataset(bench.dataset_names[0], SMALL)
        outputs, _, _ = bench.run(data, "nocdp")
        refs[bench.name] = (data, outputs)
    return refs


@pytest.mark.parametrize("name",
                         ["BFS", "BT", "MSTF", "MSTV", "SP", "SSSP", "TC"])
class TestVariantEquivalence:
    def test_cdp_matches_nocdp(self, references, name):
        bench = get_benchmark(name)
        data, ref = references[name]
        outputs, _, _ = bench.run(data, "cdp")
        assert outputs_match(ref, outputs)

    def test_thresholding_matches(self, references, name):
        bench = get_benchmark(name)
        data, ref = references[name]
        outputs, _, _ = bench.run(data, "cdp", OptConfig(threshold=16))
        assert outputs_match(ref, outputs)

    def test_full_pipeline_matches(self, references, name):
        bench = get_benchmark(name)
        data, ref = references[name]
        config = OptConfig(threshold=16, coarsen_factor=4,
                           aggregate="multiblock", group_blocks=4)
        outputs, _, _ = bench.run(data, "cdp", config)
        assert outputs_match(ref, outputs)

    def test_grid_aggregation_matches(self, references, name):
        bench = get_benchmark(name)
        data, ref = references[name]
        outputs, _, _ = bench.run(data, "cdp", OptConfig(aggregate="grid"))
        assert outputs_match(ref, outputs)


class TestBenchmarkShapes:
    def test_registry_names(self):
        names = [b.name for b in all_benchmarks()]
        assert names == ["BFS", "BT", "MSTF", "MSTV", "SP", "SSSP", "TC"]

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("QUICKSORT")

    def test_case_insensitive_lookup(self):
        assert get_benchmark("bfs").name == "BFS"

    def test_bfs_reaches_most_vertices(self, references):
        data, ref = references["BFS"]
        reached = (ref["dist"] >= 0).sum()
        assert reached > data.num_vertices // 2

    def test_bfs_levels_are_valid(self, references):
        """dist levels must differ by at most 1 across any edge."""
        data, ref = references["BFS"]
        dist = ref["dist"]
        for u in range(data.num_vertices):
            if dist[u] < 0:
                continue
            for v in data.col[data.row[u]:data.row[u + 1]]:
                if dist[v] >= 0:
                    assert abs(int(dist[u]) - int(dist[v])) <= 1

    def test_sssp_triangle_inequality_on_edges(self, references):
        data, ref = references["SSSP"]
        dist = ref["dist"]
        inf = 1 << 30
        for u in range(data.num_vertices):
            if dist[u] >= inf:
                continue
            for i in range(data.row[u], data.row[u + 1]):
                v = data.col[i]
                assert dist[v] <= dist[u] + data.weights[i]

    def test_tc_counts_triangles_exactly(self, references):
        data, ref = references["TC"]
        # brute-force reference count
        adj = [set(data.col[data.row[u]:data.row[u + 1]].tolist())
               for u in range(data.num_vertices)]
        expected = 0
        for u in range(data.num_vertices):
            for v in adj[u]:
                if v <= u:
                    continue
                expected += sum(1 for w in adj[u] & adj[v] if w > v)
        assert int(ref["triangles"][0]) == expected

    def test_bt_tessellation_counts_match_host_reference(self, references):
        data, ref = references["BT"]
        assert np.array_equal(ref["tess"], data.tess_counts())

    def test_bt_endpoints_interpolated(self, references):
        data, ref = references["BT"]
        px = data.control_x.reshape(-1, 3)
        offsets, tess = ref["offsets"], ref["tess"]
        for line in range(min(10, data.num_lines)):
            start = offsets[line]
            end = start + tess[line] - 1
            assert ref["outx"][start] == pytest.approx(px[line, 0])
            assert ref["outx"][end] == pytest.approx(px[line, 2])

    def test_mstf_best_edges_cross_components(self, references):
        from repro.benchmarks.mstf import _ENC, skewed_components
        data, ref = references["MSTF"]
        comp = skewed_components(data.num_vertices)
        best = ref["best"]
        inf = 1 << 30
        for c, enc in enumerate(best):
            if enc >= inf:
                continue
            edge = int(enc) % _ENC
            weight = int(enc) // _ENC
            assert data.weights[edge] == weight
            src = int(np.searchsorted(data.row, edge, side="right") - 1)
            assert comp[src] == c
            assert comp[data.col[edge]] != c
