"""Docs-tree checks: every relative markdown link (and anchor) resolves,
the three core pages exist and are linked from the README, and the
harness docstring examples pass under doctest."""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)


def doc_pages():
    return [REPO / "README.md"] + sorted(DOCS.glob("*.md"))


def iter_links():
    for page in doc_pages():
        for match in LINK_RE.finditer(page.read_text()):
            yield page, match.group(1)


def slugify(heading):
    """GitHub-style anchor slug for a heading."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


class TestDocsTree:
    def test_core_pages_exist(self):
        for name in ("architecture.md", "sweep-engine.md", "reproducing.md"):
            assert (DOCS / name).is_file(), "missing docs/%s" % name

    def test_readme_links_every_core_page(self):
        readme = (REPO / "README.md").read_text()
        for name in ("architecture.md", "sweep-engine.md", "reproducing.md"):
            assert "docs/%s" % name in readme, \
                "README does not link docs/%s" % name

    def test_relative_links_resolve(self):
        checked = 0
        for page, link in iter_links():
            if link.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = link.partition("#")
            resolved = (page.parent / target).resolve() if target else page
            assert resolved.exists(), \
                "%s links to missing %s" % (page.name, link)
            if fragment and resolved.suffix == ".md":
                slugs = {slugify(h)
                         for h in HEADING_RE.findall(resolved.read_text())}
                assert fragment in slugs, \
                    "%s links to missing anchor %s#%s" \
                    % (page.name, target or page.name, fragment)
            checked += 1
        assert checked > 0, "no relative links found — regex broken?"

    def test_docs_mention_every_backend(self):
        from repro.harness import BACKENDS

        text = (DOCS / "sweep-engine.md").read_text()
        for name in BACKENDS:
            assert "`%s`" % name in text, \
                "sweep-engine.md does not document backend %r" % name


class TestHarnessDoctests:
    """The same examples `pytest --doctest-modules src/repro/harness`
    runs in CI, kept green by the tier-1 suite."""

    @pytest.mark.parametrize("module_name", (
        "repro.harness.cache",
        "repro.harness.remote",
        "repro.harness.runner",
        "repro.harness.sweep",
        "repro.harness.variants",
    ))
    def test_module_doctests(self, module_name):
        module = __import__(module_name, fromlist=["_"])
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0
        assert result.attempted > 0, \
            "%s lost its doctest examples" % module_name
