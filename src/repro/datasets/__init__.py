"""Dataset generators shaped after Table I of the paper."""

from .bezier import BezierDataset, bezier_lines
from .graphs import (CSRGraph, from_edges, kron_graph, road_graph,
                     uniform_random_graph, web_graph)
from .sat import SATInstance, random_ksat

__all__ = [
    "BezierDataset", "bezier_lines",
    "CSRGraph", "from_edges", "kron_graph", "road_graph",
    "uniform_random_graph", "web_graph",
    "SATInstance", "random_ksat",
]
