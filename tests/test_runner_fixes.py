"""Regression tests for harness probe/measurement fixes.

Two long-standing hazards: the launch-size probe (``child_launch_sizes``)
silently ran on the *default* simulated device even when the surrounding
sweep/tuner was configured for another one, and ``RunResult.speedup_over``
silently reported 0× when the reference measured zero cycles instead of
flagging the broken measurement.
"""

import pytest

from repro.benchmarks import get_benchmark
from repro.errors import ReproError
from repro.harness import (RunResult, TuningParams, child_launch_sizes,
                           predict_threshold, threshold_candidates)
from repro.sim.config import DeviceConfig

NON_DEFAULT = DeviceConfig(num_sms=2, launch_service_interval=19,
                           host_launch_latency=777)


class _ProbeSpy:
    """Benchmark stand-in that records the device_config it was run with."""

    name = "SPY"

    def __init__(self, sizes=(64, 256)):
        self.seen_configs = []
        self._sizes = sizes

    def run(self, data, variant="cdp", config=None, device_config=None,
            cost_model=None):
        self.seen_configs.append(device_config)

        class _Grid:
            is_dynamic = True

            def __init__(self, total):
                self.grid_dim = 1
                self.block_dim = total

        class _Device:
            class trace:
                grids = [_Grid(total) for total in self._sizes]

        return {}, None, _Device()


class TestChildLaunchSizesConfig:
    def test_probe_forwards_device_config(self):
        spy = _ProbeSpy()
        child_launch_sizes(spy, data=None, device_config=NON_DEFAULT)
        assert spy.seen_configs == [NON_DEFAULT]

    def test_probe_default_remains_none(self):
        spy = _ProbeSpy()
        child_launch_sizes(spy, data=None)
        assert spy.seen_configs == [None]

    def test_threshold_candidates_forwards_device_config(self):
        spy = _ProbeSpy(sizes=(2048,))
        candidates = threshold_candidates(spy, data=None,
                                          device_config=NON_DEFAULT)
        assert spy.seen_configs == [NON_DEFAULT]
        assert candidates[-1] <= 2048

    def test_predict_threshold_forwards_device_config(self):
        spy = _ProbeSpy(sizes=(8, 8, 8, 1024))
        predict_threshold(spy, data=None, device_config=NON_DEFAULT)
        assert spy.seen_configs == [NON_DEFAULT]

    def test_real_benchmark_accepts_non_default_config(self):
        bench = get_benchmark("BFS")
        data = bench.build_dataset("KRON", 0.05)
        sizes = child_launch_sizes(bench, data, device_config=NON_DEFAULT)
        assert sizes
        assert all(size > 0 for size in sizes)
        # The trace is a functional artifact: the same launches happen on
        # any simulated device, so the probe's *sizes* must agree too.
        assert sizes == child_launch_sizes(bench, data)


def _result(total_time):
    return RunResult(benchmark="BFS", dataset="KRON", label="CDP",
                     params=TuningParams(), total_time=total_time,
                     breakdown={}, device_launches=0, host_agg_launches=0,
                     launch_queue_wait=0)


class TestSpeedupOver:
    def test_normal_ratio(self):
        assert _result(100).speedup_over(_result(300)) == 3.0
        assert _result(300).speedup_over(_result(100)) == pytest.approx(1 / 3)

    def test_zero_self_raises(self):
        with pytest.raises(ReproError):
            _result(0).speedup_over(_result(100))

    def test_zero_reference_raises(self):
        """The old behavior silently returned 0.0 here, poisoning geomeans."""
        with pytest.raises(ReproError):
            _result(100).speedup_over(_result(0))

    def test_negative_raises_symmetrically(self):
        with pytest.raises(ReproError):
            _result(-5).speedup_over(_result(100))
        with pytest.raises(ReproError):
            _result(100).speedup_over(_result(-5))
