"""Shared infrastructure for the three transformation passes.

Each pass is source-to-source (Sec. VI): it takes a program AST and rewrites
it in place, recording what it did in a :class:`ModuleMeta` that the host
runtime consumes (tunable macro values, aggregation buffer layouts,
grid-granularity host launches). Passes are composed by
:mod:`repro.transforms.pipeline` in the paper's order T → C → A.
"""

from dataclasses import dataclass, field
from ..minicuda import ast
from ..minicuda.visitor import Transformer


# -- metadata the runtime needs --------------------------------------------

@dataclass
class AggSpec:
    """Layout of one aggregated launch site.

    The aggregation pass appends buffer parameters to the parent kernel's
    signature; the host runtime allocates/zeroes them per launch using the
    sizes implied by the launch configuration, and — for grid granularity —
    performs the aggregated child launch itself after the parent completes.
    """

    parent: str
    site_index: int
    agg_kernel: str
    original_child: str
    granularity: str            # 'warp' | 'block' | 'multiblock' | 'grid'
    group_blocks: int           # blocks per group (multiblock; 1 for block)
    arg_types: list             # child param Types at aggregation time
    buffer_params: list         # appended parent param names, in order
    host_launch: bool = False   # grid granularity: host launches agg kernel
    agg_threshold: bool = False

    @property
    def per_thread_buffers(self):
        """Names of buffers with one slot per parent thread."""
        return [p for p in self.buffer_params
                if "_scan" in p or "_bdimarr" in p or "_args" in p]

    @property
    def per_group_buffers(self):
        return [p for p in self.buffer_params
                if p not in self.per_thread_buffers]


@dataclass
class PromotionSpec:
    """Buffer layout for one promoted self-recursive kernel (KLAP's
    promotion optimization, Sec. IX): one slot per original parameter plus
    the relaunch flag."""

    kernel: str
    arg_types: list
    buffer_params: list


@dataclass
class ModuleMeta:
    """Everything the engine/runtime must know beyond the source text."""

    macros: dict = field(default_factory=dict)
    serial_functions: list = field(default_factory=list)
    coarsened_kernels: dict = field(default_factory=dict)
    agg_specs: list = field(default_factory=list)
    promotion_specs: list = field(default_factory=list)
    thresholded_sites: int = 0
    skipped_sites: list = field(default_factory=list)

    def merge(self, other):
        self.macros.update(other.macros)
        self.serial_functions.extend(other.serial_functions)
        self.coarsened_kernels.update(other.coarsened_kernels)
        self.agg_specs.extend(other.agg_specs)
        self.promotion_specs.extend(other.promotion_specs)
        self.thresholded_sites += other.thresholded_sites
        self.skipped_sites.extend(other.skipped_sites)

    def agg_specs_for(self, parent_name):
        return [s for s in self.agg_specs if s.parent == parent_name]

    def promotion_spec_for(self, kernel_name):
        for spec in self.promotion_specs:
            if spec.kernel == kernel_name:
                return spec
        return None


def _type_to_dict(type_):
    return {"name": type_.name, "pointers": type_.pointers,
            "const": type_.const}


def _type_from_dict(data):
    return ast.Type(data["name"], data["pointers"], data["const"])


def meta_to_dict(meta):
    """Serialize a :class:`ModuleMeta` to plain JSON-able data (used by the
    CLI to persist the sidecar metadata next to transformed sources)."""
    return {
        "macros": dict(meta.macros),
        "serial_functions": list(meta.serial_functions),
        "coarsened_kernels": dict(meta.coarsened_kernels),
        "thresholded_sites": meta.thresholded_sites,
        "skipped_sites": [list(s) for s in meta.skipped_sites],
        "agg_specs": [
            {
                "parent": s.parent,
                "site_index": s.site_index,
                "agg_kernel": s.agg_kernel,
                "original_child": s.original_child,
                "granularity": s.granularity,
                "group_blocks": s.group_blocks,
                "arg_types": [_type_to_dict(t) for t in s.arg_types],
                "buffer_params": list(s.buffer_params),
                "host_launch": s.host_launch,
                "agg_threshold": s.agg_threshold,
            }
            for s in meta.agg_specs
        ],
        "promotion_specs": [
            {
                "kernel": s.kernel,
                "arg_types": [_type_to_dict(t) for t in s.arg_types],
                "buffer_params": list(s.buffer_params),
            }
            for s in meta.promotion_specs
        ],
    }


def meta_from_dict(data):
    """Inverse of :func:`meta_to_dict`."""
    meta = ModuleMeta(
        macros=dict(data.get("macros", {})),
        serial_functions=list(data.get("serial_functions", [])),
        coarsened_kernels=dict(data.get("coarsened_kernels", {})),
        thresholded_sites=data.get("thresholded_sites", 0),
        skipped_sites=[tuple(s) for s in data.get("skipped_sites", [])],
    )
    for spec in data.get("agg_specs", []):
        meta.agg_specs.append(AggSpec(
            parent=spec["parent"],
            site_index=spec["site_index"],
            agg_kernel=spec["agg_kernel"],
            original_child=spec["original_child"],
            granularity=spec["granularity"],
            group_blocks=spec["group_blocks"],
            arg_types=[_type_from_dict(t) for t in spec["arg_types"]],
            buffer_params=list(spec["buffer_params"]),
            host_launch=spec["host_launch"],
            agg_threshold=spec["agg_threshold"],
        ))
    for spec in data.get("promotion_specs", []):
        meta.promotion_specs.append(PromotionSpec(
            kernel=spec["kernel"],
            arg_types=[_type_from_dict(t) for t in spec["arg_types"]],
            buffer_params=list(spec["buffer_params"]),
        ))
    return meta


@dataclass
class TransformResult:
    """A transformed program plus the metadata accumulated by the passes."""

    program: ast.Program
    meta: ModuleMeta

    @property
    def source(self):
        from ..minicuda.printer import print_source
        return print_source(self.program)


# -- substitution utilities ----------------------------------------------

class _ReservedSubstituter(Transformer):
    """Replace uses of reserved index/dimension variables.

    ``member_map`` maps ("blockIdx", "x") → replacement Expr;
    ``ident_map`` maps "gridDim" → replacement Expr (used when the whole
    dim3 variable is re-pointed at a parameter, as in Fig. 3/6).
    """

    def __init__(self, member_map, ident_map):
        self.member_map = member_map
        self.ident_map = ident_map

    def visit_Member(self, node):
        if isinstance(node.obj, ast.Ident):
            key = (node.obj.name, node.attr)
            if key in self.member_map:
                return self.member_map[key].clone()
        return node

    def visit_Ident(self, node):
        if node.name in self.ident_map:
            return self.ident_map[node.name].clone()
        return node


def substitute_reserved(node, member_map=None, ident_map=None):
    """Apply reserved-variable substitution in place; returns the new root."""
    substituter = _ReservedSubstituter(member_map or {}, ident_map or {})
    return substituter.visit(node)


class _IdentitySwap(Transformer):
    """Replace one exact node object (used to swap the Fig. 4 subexpression
    for ``_threads`` without duplicating side effects)."""

    def __init__(self, target, replacement):
        self.target = target
        self.replacement = replacement
        self.done = False

    def visit(self, node):
        if node is self.target:
            self.done = True
            return self.replacement
        return super().visit(node)


def swap_node(root, target, replacement):
    """Replace *target* (by identity) under *root*; returns the new root."""
    swapper = _IdentitySwap(target, replacement)
    new_root = swapper.visit(root)
    return new_root, swapper.done


class _LaunchRewriter(Transformer):
    """Replace ``ExprStmt(Launch)`` statements via a callback.

    The callback receives the Launch node and returns a statement (or list
    of statements) to splice in its place, or None to leave it unchanged.
    """

    def __init__(self, callback):
        self.callback = callback

    def visit_ExprStmt(self, node):
        if isinstance(node.expr, ast.Launch):
            replacement = self.callback(node.expr)
            if replacement is not None:
                return replacement
        return node


def rewrite_launches(func, callback):
    """Rewrite every launch statement in *func* through *callback*."""
    _LaunchRewriter(callback).visit(func)


def insert_after(program, anchor_name, new_decl):
    """Insert a declaration right after the function named *anchor_name*."""
    index = program.index_of(anchor_name)
    program.decls.insert(index + 1, new_decl)


def insert_before(program, anchor_name, new_decl):
    """Insert a declaration right before the function named *anchor_name*."""
    index = program.index_of(anchor_name)
    program.decls.insert(index, new_decl)
