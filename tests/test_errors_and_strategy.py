"""Error-hierarchy tests and the exhaustive tuning strategy."""

import pytest

from repro.benchmarks import get_benchmark
from repro.errors import (AnalysisError, CodegenError, LexError,
                          NotTransformable, ParseError, ReproError,
                          RuntimeLaunchError, SimulationError,
                          TransformError)
from repro.harness import tune
from repro.harness.tuning import DEFAULT_CFACTORS


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (LexError, ParseError, AnalysisError, TransformError,
                    NotTransformable, CodegenError, SimulationError,
                    RuntimeLaunchError):
            assert issubclass(exc, ReproError)

    def test_not_transformable_is_transform_error(self):
        assert issubclass(NotTransformable, TransformError)

    def test_lex_error_position_formatting(self):
        err = LexError("bad char", line=3, col=7)
        assert "3:7" in str(err)

    def test_parse_error_token_context(self):
        from repro.minicuda.tokens import Token, PUNCT
        err = ParseError("expected ';'", Token(PUNCT, "}", 2, 1))
        assert "2:1" in str(err) and "'}'" in str(err)

    def test_single_except_catches_everything(self):
        from repro.minicuda import parse
        with pytest.raises(ReproError):
            parse("__global__ void k( {")


class TestExhaustiveStrategy:
    def test_exhaustive_covers_more_points_than_guided(self):
        bench = get_benchmark("SP")
        data = bench.build_dataset("RAND-3", 0.06)
        guided = tune(bench, data, "CDP+T+C+A", strategy="guided")
        exhaustive = tune(bench, data, "CDP+T+C+A", strategy="exhaustive")
        assert len(exhaustive.evaluated) > len(guided.evaluated)
        assert exhaustive.best_time <= guided.best_time

    def test_exhaustive_sweeps_cfactors(self):
        bench = get_benchmark("SP")
        data = bench.build_dataset("RAND-3", 0.06)
        outcome = tune(bench, data, "CDP+C", strategy="exhaustive")
        factors = {p.coarsen_factor for p, _ in outcome.evaluated}
        assert factors == set(DEFAULT_CFACTORS)

    def test_exhaustive_includes_warp_granularity(self):
        bench = get_benchmark("SP")
        data = bench.build_dataset("RAND-3", 0.06)
        outcome = tune(bench, data, "CDP+T+A", strategy="exhaustive")
        grans = {p.granularity for p, _ in outcome.evaluated}
        assert "warp" in grans and "multiblock" in grans
