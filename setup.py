"""Setup shim: enables legacy editable installs in offline environments
where the 'wheel' package is unavailable (pip falls back to setup.py develop).
All project metadata lives in pyproject.toml."""
from setuptools import setup

setup()
