"""Aggregation transformation tests (Fig. 7 structure, all granularities)."""

import pytest

from repro.errors import TransformError
from repro.minicuda import ast, parse, print_source
from repro.minicuda.ast import region_of
from repro.minicuda.visitor import find_all
from repro.transforms import AggregationPass


def run_pass(source, granularity="multiblock", group_blocks=8,
             agg_threshold=None):
    program = parse(source)
    meta = AggregationPass(granularity, group_blocks, agg_threshold)\
        .run(program)
    return program, meta


class TestAggKernel:
    def test_agg_kernel_created(self, bfs_like_source):
        program, meta = run_pass(bfs_like_source)
        spec = meta.agg_specs[0]
        assert spec.agg_kernel == "child_agg"
        agg = program.function("child_agg")
        assert agg.is_kernel

    def test_agg_kernel_signature(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        agg = program.function("child_agg")
        # one array per original param + scan + bdim arrays + count
        child = program.function("child")
        assert len(agg.params) == len(child.params) + 3
        assert agg.params[-1].name == "_nParents"
        # arg arrays are pointers to the original param types
        assert agg.params[0].type.pointers == \
            child.params[0].type.pointers + 1

    def test_binary_search_present(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        agg = program.function("child_agg")
        whiles = find_all(agg, ast.While)
        assert len(whiles) == 1

    def test_disagg_statements_region_tagged(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        agg = program.function("child_agg")
        regions = [region_of(s) for s in agg.body.stmts]
        assert "disagg" in regions

    def test_body_guarded_by_bdim(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        text = print_source(program)
        assert "if (threadIdx.x < _bDimX)" in text


class TestParentRewrite:
    def test_buffer_params_appended(self, bfs_like_source):
        program, meta = run_pass(bfs_like_source)
        parent = program.function("parent")
        spec = meta.agg_specs[0]
        appended = [p.name for p in parent.params][-len(spec.buffer_params):]
        assert appended == spec.buffer_params

    def test_store_code_replaces_launch(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        parent = program.function("parent")
        launches = find_all(parent, ast.Launch)
        # only the aggregated launch in the epilogue remains
        assert len(launches) == 1
        assert launches[0].kernel == "child_agg"

    def test_epilogue_has_fence_sync_and_counter(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        text = print_source(program)
        assert "__threadfence()" in text
        assert "__syncthreads()" in text
        assert "_nfinished" in text

    def test_body_wrapped_in_dowhile(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        parent = program.function("parent")
        assert find_all(parent, ast.DoWhile)

    def test_agg_statements_region_tagged(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source)
        parent = program.function("parent")
        tagged = [s for s in parent.body.walk()
                  if isinstance(s, ast.Stmt) and region_of(s) == "agg"]
        assert tagged

    def test_parent_return_becomes_break(self):
        source = """
        __global__ void c(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { p[t] = t; }
        }
        __global__ void parent(int *p, int *sizes, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t >= n) { return; }
            c<<<(sizes[t] + 31) / 32, 32>>>(p, sizes[t]);
        }
        """
        program, _ = run_pass(source)
        parent = program.function("parent")
        assert not find_all(parent, ast.Return)
        assert find_all(parent, ast.Break)

    def test_parent_return_in_loop_rejected(self):
        source = """
        __global__ void c(int *p, int n) {
            int t = blockIdx.x * blockDim.x + threadIdx.x;
            if (t < n) { p[t] = t; }
        }
        __global__ void parent(int *p, int *sizes, int n) {
            for (int i = 0; i < n; ++i) {
                if (sizes[i] < 0) { return; }
                c<<<(sizes[i] + 31) / 32, 32>>>(p, sizes[i]);
            }
        }
        """
        with pytest.raises(TransformError):
            run_pass(source)


class TestGranularities:
    def test_block_granularity_group_of_one(self, bfs_like_source):
        _, meta = run_pass(bfs_like_source, "block")
        assert meta.agg_specs[0].group_blocks == 1

    def test_multiblock_macro(self, bfs_like_source):
        _, meta = run_pass(bfs_like_source, "multiblock", group_blocks=16)
        assert meta.macros["_AGG_GRANULARITY"] == 16

    def test_warp_granularity_no_syncthreads(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source, "warp")
        text = print_source(program)
        assert "__syncthreads" not in text

    def test_grid_granularity_host_launch(self, bfs_like_source):
        program, meta = run_pass(bfs_like_source, "grid")
        spec = meta.agg_specs[0]
        assert spec.host_launch
        # No device-side aggregated launch remains.
        parent = program.function("parent")
        assert not find_all(parent, ast.Launch)
        # No completion counter buffer for grid granularity.
        assert not any("_nfinished" in p for p in spec.buffer_params)

    def test_unknown_granularity_rejected(self):
        with pytest.raises(TransformError):
            AggregationPass("banana")


class TestAggThreshold:
    def test_part_buffer_added(self, bfs_like_source):
        _, meta = run_pass(bfs_like_source, "block", agg_threshold=16)
        spec = meta.agg_specs[0]
        assert spec.agg_threshold
        assert any("_part" in p for p in spec.buffer_params)

    def test_direct_launch_fallback_present(self, bfs_like_source):
        program, _ = run_pass(bfs_like_source, "block", agg_threshold=16)
        parent = program.function("parent")
        launches = find_all(parent, ast.Launch)
        kernels = {l.kernel for l in launches}
        assert kernels == {"child", "child_agg"}

    def test_macro_recorded(self, bfs_like_source):
        _, meta = run_pass(bfs_like_source, "block", agg_threshold=16)
        assert meta.macros["_AGG_THRESHOLD"] == 16

    def test_grid_with_threshold_rejected(self):
        with pytest.raises(TransformError):
            AggregationPass("grid", agg_threshold=4)

    def test_multiblock_with_threshold_rejected(self):
        with pytest.raises(TransformError):
            AggregationPass("multiblock", agg_threshold=4)


class TestOutputValidity:
    @pytest.mark.parametrize("granularity", ["warp", "block", "multiblock",
                                             "grid"])
    def test_output_reparses(self, bfs_like_source, granularity):
        program, _ = run_pass(bfs_like_source, granularity)
        text = print_source(program)
        assert print_source(parse(text)) == text
