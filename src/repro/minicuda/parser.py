"""Recursive-descent parser for the miniCUDA dialect.

The grammar is the C expression/statement core plus the CUDA constructs the
paper's transformations operate on: ``__global__``/``__device__`` functions,
declaration qualifiers, ``dim3``, and the dynamic launch form
``kernel<<<grid, block[, shmem[, stream]]>>>(args)``.
"""

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import CHAR, EOF, FLOAT, IDENT, INT, KEYWORD, PUNCT, STRING

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})

_BASE_TYPE_KEYWORDS = frozenset(
    {"void", "int", "long", "short", "unsigned", "float", "double", "bool",
     "char"})

_DECL_QUALIFIERS = frozenset(
    {"__global__", "__device__", "__host__", "__shared__", "__constant__",
     "extern", "static", "inline", "__forceinline__"})

# Identifier-spelled type names (not C keywords).
_TYPE_IDENTS = frozenset({"dim3", "size_t", "uint"})


class Parser:
    """Parser over a token list. Use :func:`parse` for the common case."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def _check_punct(self, value):
        return self._peek().is_punct(value)

    def _accept_punct(self, value):
        if self._check_punct(value):
            return self._advance()
        return None

    def _expect_punct(self, value):
        if not self._check_punct(value):
            raise ParseError("expected %r" % value, self._peek())
        return self._advance()

    def _accept_keyword(self, value):
        if self._peek().is_keyword(value):
            return self._advance()
        return None

    def _expect_ident(self):
        token = self._peek()
        if token.kind != IDENT:
            raise ParseError("expected identifier", token)
        return self._advance().value

    # -- types -------------------------------------------------------------

    def _at_type(self, offset=0):
        """True if the token at *offset* starts a type (not counting quals)."""
        token = self._peek(offset)
        if token.kind == KEYWORD and token.value in _BASE_TYPE_KEYWORDS:
            return True
        if token.kind == KEYWORD and token.value == "const":
            return self._at_type(offset + 1)
        return token.kind == IDENT and token.value in _TYPE_IDENTS

    def _at_declaration(self):
        offset = 0
        while (self._peek(offset).kind == KEYWORD
               and self._peek(offset).value in _DECL_QUALIFIERS):
            offset += 1
        return self._at_type(offset)

    def _parse_qualifiers(self):
        qualifiers = []
        while (self._peek().kind == KEYWORD
               and self._peek().value in _DECL_QUALIFIERS):
            qualifiers.append(self._advance().value)
        return tuple(qualifiers)

    def _parse_base_type(self):
        const = bool(self._accept_keyword("const"))
        token = self._peek()
        words = []
        while (self._peek().kind == KEYWORD
               and self._peek().value in _BASE_TYPE_KEYWORDS):
            words.append(self._advance().value)
        if not words:
            if token.kind == IDENT and token.value in _TYPE_IDENTS:
                words.append(self._advance().value)
            else:
                raise ParseError("expected type name", token)
        if not const:
            const = bool(self._accept_keyword("const"))
        return ast.Type(" ".join(words), 0, const)

    def _parse_pointers(self, base):
        result = base
        while self._accept_punct("*"):
            self._accept_keyword("const")
            while self._peek().is_keyword("__restrict__"):
                self._advance()
            result = result.pointer_to()
        return result

    def _parse_type(self):
        return self._parse_pointers(self._parse_base_type())

    # -- expressions ---------------------------------------------------------

    def parse_expression(self):
        return self._parse_assignment()

    def _parse_assignment(self):
        left = self._parse_ternary()
        token = self._peek()
        if token.kind == PUNCT and token.value in _ASSIGN_OPS:
            op = self._advance().value
            value = self._parse_assignment()
            return ast.Assign(op, left, value)
        return left

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self._accept_punct("?"):
            then = self._parse_assignment()
            self._expect_punct(":")
            orelse = self._parse_assignment()
            return ast.Ternary(cond, then, orelse)
        return cond

    def _parse_binary(self, min_precedence):
        left = self._parse_unary()
        while True:
            token = self._peek()
            precedence = _BINARY_PRECEDENCE.get(
                token.value if token.kind == PUNCT else None, -1)
            if precedence < min_precedence or precedence == -1:
                return left
            op = self._advance().value
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(op, left, right)

    def _parse_unary(self):
        token = self._peek()
        if token.kind == PUNCT and token.value in ("-", "+", "!", "~", "&", "*"):
            self._advance()
            return ast.Unary(token.value, self._parse_unary())
        if token.kind == PUNCT and token.value in ("++", "--"):
            self._advance()
            return ast.Unary(token.value, self._parse_unary())
        if token.is_punct("(") and self._at_type(1):
            # A cast: "(" type ")" unary.
            self._advance()
            cast_type = self._parse_type()
            self._expect_punct(")")
            return ast.Cast(cast_type, self._parse_unary())
        if token.is_keyword("sizeof"):
            self._advance()
            self._expect_punct("(")
            if self._at_type():
                self._parse_type()
            else:
                self.parse_expression()
            self._expect_punct(")")
            # sizeof of our scalar types is modelled as 4 bytes.
            return ast.IntLit(4, "sizeof")
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            if self._accept_punct("["):
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index)
            elif self._check_punct("<<<") and isinstance(expr, ast.Ident):
                expr = self._parse_launch(expr.name)
            elif self._accept_punct("("):
                args = self._parse_call_args()
                expr = ast.Call(expr, args)
            elif self._accept_punct("."):
                expr = ast.Member(expr, self._expect_ident())
            elif self._accept_punct("->"):
                expr = ast.Member(expr, self._expect_ident(), arrow=True)
            elif self._check_punct("++") or self._check_punct("--"):
                op = self._advance().value
                expr = ast.Unary(op, expr, postfix=True)
            else:
                return expr

    def _parse_call_args(self):
        args = []
        if not self._check_punct(")"):
            args.append(self.parse_expression())
            while self._accept_punct(","):
                args.append(self.parse_expression())
        self._expect_punct(")")
        return args

    def _parse_launch(self, kernel_name):
        self._expect_punct("<<<")
        grid = self.parse_expression()
        self._expect_punct(",")
        block = self.parse_expression()
        shmem = stream = None
        if self._accept_punct(","):
            shmem = self.parse_expression()
            if self._accept_punct(","):
                stream = self.parse_expression()
        self._expect_punct(">>>")
        self._expect_punct("(")
        args = self._parse_call_args()
        return ast.Launch(kernel_name, grid, block, args, shmem, stream)

    def _parse_primary(self):
        token = self._peek()
        if token.kind == INT:
            self._advance()
            text = token.value
            base = 16 if text.lower().startswith("0x") else 10
            return ast.IntLit(int(text.rstrip("uUlL"), base), text)
        if token.kind == FLOAT:
            self._advance()
            return ast.FloatLit(float(token.value.rstrip("fFlL")), token.value)
        if token.kind == STRING:
            self._advance()
            return ast.StrLit(token.value)
        if token.kind == CHAR:
            self._advance()
            value = token.value
            return ast.IntLit(ord(value[0]) if value else 0, "'%s'" % value)
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLit(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLit(False)
        if token.kind == IDENT:
            self._advance()
            return ast.Ident(token.value)
        if self._accept_punct("("):
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError("expected expression", token)

    # -- statements -----------------------------------------------------------

    def parse_statement(self):
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_compound()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self.parse_expression()
            self._expect_punct(";")
            return ast.Return(value)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break()
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue()
        if token.is_punct(";"):
            self._advance()
            return ast.Compound([])
        if self._at_declaration():
            decl = self._parse_decl_stmt()
            self._expect_punct(";")
            return decl
        expr = self.parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr)

    def _parse_compound(self):
        self._expect_punct("{")
        stmts = []
        while not self._check_punct("}"):
            if self._peek().kind == EOF:
                raise ParseError("unterminated block", self._peek())
            stmts.append(self.parse_statement())
        self._advance()
        return ast.Compound(stmts)

    def _parse_decl_stmt(self):
        qualifiers = self._parse_qualifiers()
        base = self._parse_base_type()
        decls = []
        while True:
            decl_type = self._parse_pointers(base.clone())
            name = self._expect_ident()
            array_size = None
            if self._accept_punct("["):
                if not self._check_punct("]"):
                    array_size = self.parse_expression()
                self._expect_punct("]")
            init = None
            if self._accept_punct("="):
                init = self._parse_assignment()
            decls.append(
                ast.VarDecl(decl_type, name, init, qualifiers, array_size))
            if not self._accept_punct(","):
                break
        return ast.DeclStmt(decls)

    def _parse_if(self):
        self._advance()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        then = self.parse_statement()
        orelse = None
        if self._accept_keyword("else"):
            orelse = self.parse_statement()
        return ast.If(cond, then, orelse)

    def _parse_for(self):
        self._advance()
        self._expect_punct("(")
        init = None
        if not self._check_punct(";"):
            if self._at_declaration():
                init = self._parse_decl_stmt()
            else:
                init = ast.ExprStmt(self.parse_expression())
        self._expect_punct(";")
        cond = None
        if not self._check_punct(";"):
            cond = self.parse_expression()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body)

    def _parse_while(self):
        self._advance()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        return ast.While(cond, self.parse_statement())

    def _parse_do_while(self):
        self._advance()
        body = self.parse_statement()
        if not self._accept_keyword("while"):
            raise ParseError("expected 'while' after do-body", self._peek())
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body, cond)

    # -- declarations ------------------------------------------------------

    def parse_program(self):
        decls = []
        while self._peek().kind != EOF:
            decls.append(self._parse_top_level())
        return ast.Program(decls)

    def _parse_top_level(self):
        qualifiers = self._parse_qualifiers()
        base = self._parse_base_type()
        decl_type = self._parse_pointers(base)
        name = self._expect_ident()
        if self._check_punct("("):
            return self._parse_function(qualifiers, decl_type, name)
        # File-scope variable (e.g. __device__ int counter;).
        array_size = None
        if self._accept_punct("["):
            if not self._check_punct("]"):
                array_size = self.parse_expression()
            self._expect_punct("]")
        init = None
        if self._accept_punct("="):
            init = self._parse_assignment()
        self._expect_punct(";")
        return ast.DeclStmt(
            [ast.VarDecl(decl_type, name, init, qualifiers, array_size)])

    def _parse_function(self, qualifiers, ret_type, name):
        self._expect_punct("(")
        params = []
        if not self._check_punct(")"):
            params.append(self._parse_param())
            while self._accept_punct(","):
                params.append(self._parse_param())
        self._expect_punct(")")
        if self._accept_punct(";"):
            return ast.FunctionDef(qualifiers, ret_type, name, params, None)
        body = self._parse_compound()
        return ast.FunctionDef(qualifiers, ret_type, name, params, body)

    def _parse_param(self):
        param_type = self._parse_type()
        name = self._expect_ident()
        return ast.Param(param_type, name)


def parse(source):
    """Parse miniCUDA *source* text into a :class:`~repro.minicuda.ast.Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_expr(source):
    """Parse a single expression (used by tests and analyses)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    if parser._peek().kind != EOF:
        raise ParseError("trailing input after expression", parser._peek())
    return expr


def parse_stmt(source):
    """Parse a single statement (used by tests and transforms)."""
    parser = Parser(tokenize(source))
    stmt = parser.parse_statement()
    if parser._peek().kind != EOF:
        raise ParseError("trailing input after statement", parser._peek())
    return stmt
