#!/usr/bin/env python
"""The HTTP query service, end to end: start, query cold, query warm.

Starts `repro serve` in-process on an ephemeral port, issues the same
`/point` query cold (miss path: the sweep engine simulates and fills the
cache) and warm (hit path: answered from `ResultCache` without touching
the simulator), fetches a figure through the read-through artifact
cache, and prints the latency of each request — the point of the serving
path is the cold/warm gap.

The same service is started from the shell with
`python -m repro serve --port 8070 --cache-dir .repro-cache`; endpoint
reference and ops runbook in docs/serving.md.

Run:  python examples/query_service.py [scale]
      python examples/query_service.py 0.08
"""

import json
import sys
import tempfile
import threading
import time
import urllib.request

from repro.harness.serve import ServeServer


def fetch(base, path, data=None):
    """One JSON request; returns (payload, seconds)."""
    body = json.dumps(data).encode() if data is not None else None
    started = time.perf_counter()
    with urllib.request.urlopen(urllib.request.Request(base + path,
                                                       data=body),
                                timeout=300) as resp:
        payload = json.loads(resp.read())
    return payload, time.perf_counter() - started


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-")
    server = ServeServer(cache_dir=cache_dir)
    host, port = server.start()
    base = "http://%s:%d" % (host, port)
    print("service up at %s (cache: %s)\n" % (base, cache_dir))

    health, elapsed = fetch(base, "/healthz")
    print("GET /healthz              %7.1f ms   backend=%s"
          % (elapsed * 1e3, health["backend"]))

    point = ("/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
             "&threshold=16&scale=%g" % scale)
    cold, cold_s = fetch(base, point)
    print("GET /point (cold)         %7.1f ms   cache=%-4s cycles=%d"
          % (cold_s * 1e3, cold["cache"], cold["result"]["total_time"]))

    warm, warm_s = fetch(base, point)
    print("GET /point (warm)         %7.1f ms   cache=%-4s cycles=%d"
          % (warm_s * 1e3, warm["cache"], warm["result"]["total_time"]))
    assert warm["result"] == cold["result"]

    grid = {"pairs": ["BFS:KRON", "SSSP:KRON"],
            "variants": ["CDP", "CDP+T"],
            "params": {"threshold": 16}, "scale": scale}
    sweep, sweep_s = fetch(base, "/sweep", data=grid)
    print("POST /sweep (4 points)    %7.1f ms   %s"
          % (sweep_s * 1e3, sweep["stats"]))

    figure = "/figure/fig11?benchmark=BFS&dataset=KRON&scale=%g" % scale
    _, fig_cold_s = fetch(base, figure)
    fig, fig_warm_s = fetch(base, figure)
    print("GET /figure/fig11 (cold)  %7.1f ms" % (fig_cold_s * 1e3))
    print("GET /figure/fig11 (warm)  %7.1f ms   cache=%s"
          % (fig_warm_s * 1e3, fig["cache"]))

    # Two concurrent cold requests for one fresh spec: the scheduler
    # dedups them into a single simulation (docs/serving.md).
    dedup = point.replace("threshold=16", "threshold=64")
    outcomes = []

    def cold_hit():
        outcomes.append(fetch(base, dedup))

    threads = [threading.Thread(target=cold_hit) for _ in range(2)]
    dedup_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    dedup_s = time.perf_counter() - dedup_started
    assert outcomes[0][0]["result"] == outcomes[1][0]["result"]

    info, _ = fetch(base, "/cache/info")
    print("2x GET /point (same cold) %7.1f ms   simulated once, "
          "%d dedup join(s)" % (dedup_s * 1e3,
                                info["queue"]["dedup_joins"]))

    with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
        series = sum(1 for line in resp.read().decode().splitlines()
                     if line and not line.startswith("#"))
    print("GET /metrics              %7d Prometheus samples" % series)

    print("\ncache after the session: %d result entries, %d figure "
          "artifacts (%d bytes)"
          % (info["info"]["result_entries"],
             info["info"]["artifact_entries"],
             info["info"]["total_bytes"]))
    print("speedup warm over cold: %.0fx on /point, %.0fx on /figure"
          % (cold_s / max(warm_s, 1e-9),
             fig_cold_s / max(fig_warm_s, 1e-9)))
    server.close()


if __name__ == "__main__":
    main()
