"""Registry of the seven Table I benchmarks."""

from .bfs import BFSBenchmark
from .bt import BTBenchmark
from .mstf import MSTFBenchmark
from .mstv import MSTVBenchmark
from .sp import SPBenchmark
from .sssp import SSSPBenchmark
from .tc import TCBenchmark

_BENCHMARK_CLASSES = (
    BFSBenchmark, BTBenchmark, MSTFBenchmark, MSTVBenchmark,
    SPBenchmark, SSSPBenchmark, TCBenchmark,
)


def all_benchmarks():
    """Fresh instances of every benchmark, in Table I order."""
    return [cls() for cls in _BENCHMARK_CLASSES]


def get_benchmark(name):
    for cls in _BENCHMARK_CLASSES:
        if cls.name == name.upper():
            return cls()
    raise KeyError("unknown benchmark %r (have %s)"
                   % (name, ", ".join(c.name for c in _BENCHMARK_CLASSES)))


#: Benchmark/dataset pairs of the paper's main evaluation (Fig. 9).
FIG9_PAIRS = (
    ("BFS", "KRON"), ("BFS", "CNR"),
    ("BT", "T0032-C16"), ("BT", "T2048-C64"),
    ("MSTF", "KRON"), ("MSTF", "CNR"),
    ("MSTV", "KRON"), ("MSTV", "CNR"),
    ("SP", "RAND-3"), ("SP", "5-SAT"),
    ("SSSP", "KRON"), ("SSSP", "CNR"),
    ("TC", "KRON"), ("TC", "CNR"),
)

#: Graph benchmarks evaluated on the road graph in Fig. 12.
FIG12_BENCHMARKS = ("BFS", "MSTF", "MSTV", "SSSP", "TC")
