"""CLI tests (python -m repro ...)."""

import json

import pytest

from repro.cli import main
from repro.engine import Module
from repro.minicuda import parse
from repro.transforms.base import meta_from_dict, meta_to_dict
from repro.transforms import OptConfig, transform

from .conftest import BFS_LIKE_SRC


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "kernel.cu"
    path.write_text(BFS_LIKE_SRC)
    return str(path)


class TestTransformCommand:
    def test_prints_to_stdout(self, source_file, capsys):
        assert main(["transform", source_file, "--threshold", "64"]) == 0
        out = capsys.readouterr().out
        assert "_THRESHOLD" in out
        assert "child_serial" in out

    def test_writes_output_and_meta(self, source_file, tmp_path, capsys):
        out_cu = str(tmp_path / "out.cu")
        out_meta = str(tmp_path / "meta.json")
        code = main(["transform", source_file, "--threshold", "32",
                     "--coarsen", "4", "--aggregate", "multiblock",
                     "-o", out_cu, "--meta", out_meta])
        assert code == 0
        transformed = open(out_cu).read()
        parse(transformed)  # must be valid miniCUDA
        meta = json.load(open(out_meta))
        assert meta["macros"]["_THRESHOLD"] == 32
        assert meta["agg_specs"][0]["granularity"] == "multiblock"

    def test_identity_without_flags(self, source_file, capsys):
        assert main(["transform", source_file]) == 0
        out = capsys.readouterr().out
        assert "child<<<" in out


class TestAnalyzeCommand:
    def test_reports_sites_and_count(self, source_file, capsys):
        assert main(["analyze", source_file]) == 0
        out = capsys.readouterr().out
        assert "parent -> child" in out
        assert "degree" in out
        assert "thresholdable=True" in out


class TestBenchCommand:
    def test_runs_variant(self, capsys):
        code = main(["bench", "BFS", "KRON", "--variant", "CDP+T",
                     "--threshold", "16", "--scale", "0.08"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated cycles" in out
        assert "T=16" in out


class TestFigureCommand:
    def test_table1(self, tmp_path, capsys):
        out = str(tmp_path / "t1.txt")
        assert main(["figure", "table1", "--scale", "0.08",
                     "-o", out]) == 0
        assert "Table I" in open(out).read()

    def test_fig11_panel(self, capsys):
        assert main(["figure", "fig11", "--benchmark", "SP",
                     "--dataset", "RAND-3", "--scale", "0.08"]) == 0
        assert "Figure 11" in capsys.readouterr().out


class TestSweepCommand:
    ARGS = ["sweep", "--pairs", "BFS:KRON", "--variants", "CDP", "CDP+T",
            "--threshold", "16", "--scale", "0.08", "--jobs", "2"]

    def test_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        cold = capsys.readouterr()
        assert "CDP+T" in cold.out
        assert "2 simulated" in cold.err
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        warm = capsys.readouterr()
        assert "2 cached, 0 simulated" in warm.err
        assert warm.out == cold.out

    def test_no_cache_json(self, capsys):
        assert main(self.ARGS + ["--no-cache", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["label"] for row in rows] == ["CDP", "CDP+T"]
        assert all(row["total_time"] > 0 for row in rows)

    def test_bad_pair_spec(self, capsys):
        assert main(["sweep", "--pairs", "BFSKRON", "--no-cache"]) == 2

    def test_unknown_benchmark_dataset_variant(self, capsys):
        assert main(["sweep", "--pairs", "NOPE:KRON", "--no-cache"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
        assert main(["sweep", "--pairs", "BFS:NOPE", "--no-cache"]) == 2
        assert "unknown dataset" in capsys.readouterr().err
        assert main(["sweep", "--pairs", "BFS:KRON", "--variants", "CDPTCA",
                     "--no-cache"]) == 2
        assert "unknown variant" in capsys.readouterr().err


class TestSweepBackendFlag:
    @pytest.mark.parametrize("backend", ("serial", "process", "thread",
                                         "futures"))
    def test_backend_selected(self, backend, capsys):
        args = ["sweep", "--pairs", "BFS:KRON", "--variants", "CDP",
                "--scale", "0.08", "--no-cache", "--jobs", "2",
                "--backend", backend]
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "backend=%s" % backend in err

    def test_backends_bit_identical(self, capsys):
        args = ["sweep", "--pairs", "BFS:KRON", "--variants", "CDP", "CDP+T",
                "--threshold", "16", "--scale", "0.08", "--no-cache",
                "--json"]
        outputs = set()
        for backend in ("serial", "process", "thread"):
            assert main(args + ["--jobs", "2", "--backend", backend]) == 0
            outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1

    def test_backend_alone_forces_executor(self, capsys):
        # --backend without --jobs/--cache-dir must still route through
        # the sweep engine on `figure` (serial executor, no cache).
        assert main(["figure", "fig11", "--benchmark", "BFS",
                     "--dataset", "KRON", "--scale", "0.08", "--no-cache",
                     "--backend", "serial"]) == 0
        assert "Figure 11" in capsys.readouterr().out


class TestWorkerCommand:
    SWEEP = ["sweep", "--pairs", "BFS:KRON", "--variants", "CDP", "CDP+T",
             "--threshold", "16", "--scale", "0.08", "--no-cache", "--json"]

    @pytest.fixture
    def fleet(self):
        from .conftest import worker_fleet

        with worker_fleet() as servers:
            yield ",".join("%s:%d" % server.address for server in servers)

    def test_ping(self, fleet, capsys):
        address = fleet.split(",")[0]
        assert main(["worker", "ping", address]) == 0
        out = capsys.readouterr().out
        from repro.harness.remote import PROTOCOL_VERSION
        assert "alive" in out and "protocol %d" % PROTOCOL_VERSION in out

    def test_ping_unreachable(self, capsys):
        assert main(["worker", "ping", "127.0.0.1:1"]) == 1
        assert "unreachable" in capsys.readouterr().err

    def test_ping_bad_address(self, capsys):
        assert main(["worker", "ping", "nocolon"]) == 2

    def test_ping_rejects_multiple_addresses(self, capsys):
        assert main(["worker", "ping", "127.0.0.1:1,127.0.0.1:2"]) == 2
        assert "exactly one HOST:PORT" in capsys.readouterr().err

    def test_ping_reports_version_skew_not_unreachable(self, capsys):
        from repro.harness import WorkerServer

        server = WorkerServer(quiet=True, cache_version=-1)
        address = "%s:%d" % server.start()
        try:
            assert main(["worker", "ping", address]) == 1
            err = capsys.readouterr().err
            assert "rejected handshake" in err
            assert "unreachable" not in err
        finally:
            server.close()

    def test_worker_timeout_without_remote_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "fig11", "--benchmark", "BFS",
                  "--dataset", "KRON", "--scale", "0.08",
                  "--worker-timeout", "5"])
        assert "remote" in capsys.readouterr().err

    def test_remote_sweep_matches_serial(self, fleet, capsys):
        assert main(self.SWEEP + ["--backend", "serial"]) == 0
        serial = capsys.readouterr()
        assert main(self.SWEEP + ["--backend", "remote",
                                  "--workers", fleet]) == 0
        remote = capsys.readouterr()
        assert remote.out == serial.out
        assert "backend=remote" in remote.err

    def test_workers_flag_alone_implies_remote(self, fleet, capsys):
        assert main(self.SWEEP + ["--workers", fleet]) == 0
        assert "backend=remote" in capsys.readouterr().err

    def test_remote_without_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SWEEP + ["--backend", "remote"])
        assert "--workers" in capsys.readouterr().err

    def test_workers_with_local_backend_rejected(self, fleet, capsys):
        with pytest.raises(SystemExit):
            main(self.SWEEP + ["--backend", "process", "--workers", fleet])
        assert "--backend remote" in capsys.readouterr().err


class TestCacheCommand:
    def _fill(self, cache):
        return main(["sweep", "--pairs", "BFS:KRON", "--variants", "CDP",
                     "--scale", "0.08", "--cache-dir", cache])

    def test_info_reports_entries(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert self._fill(cache) == 0
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "result entries :      1" in out
        assert cache in out

    def test_prune_bounds_entries_and_sweeps_tmp(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["sweep", "--pairs", "BFS:KRON", "--variants",
                     "CDP", "CDP+T", "--threshold", "16", "--scale", "0.08",
                     "--cache-dir", str(cache)]) == 0
        (cache / "stranded.tmp").write_text("x")
        capsys.readouterr()
        assert main(["cache", "prune", "--cache-dir", str(cache),
                     "--max-entries", "1", "--tmp-age", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 entries" in out
        assert "swept 1 stale .tmp" in out
        assert not (cache / "stranded.tmp").exists()

    def test_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert self._fill(cache) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "cleared 1 files" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", cache]) == 0
        assert "result entries :      0" in capsys.readouterr().out

    def test_missing_cache_dir(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["cache", "info", "--cache-dir", missing]) == 0
        assert main(["cache", "clear", "--cache-dir", missing]) == 2


class TestFigureArtifactCLI:
    def test_warm_figure_hits_artifact_cache(self, tmp_path, capsys,
                                             monkeypatch):
        cache = str(tmp_path / "cache")
        args = ["figure", "fig11", "--benchmark", "BFS", "--dataset",
                "KRON", "--scale", "0.08", "--cache-dir", cache]
        assert main(args) == 0
        cold = capsys.readouterr().out
        import repro.harness.figures as figures_mod

        def banned(*a, **k):
            raise AssertionError("simulated on a warm figure run")

        monkeypatch.setattr(figures_mod, "run_variant", banned)
        assert main(args) == 0
        assert capsys.readouterr().out == cold


class TestMetaRoundtrip:
    def test_meta_dict_roundtrip_runs(self):
        """A meta serialized to JSON and back still drives the runtime."""
        import numpy as np
        from repro.runtime import Device, blocks

        result = transform(BFS_LIKE_SRC,
                           OptConfig(threshold=8, aggregate="block"))
        reloaded = meta_from_dict(
            json.loads(json.dumps(meta_to_dict(result.meta))))
        module = Module(result.program, reloaded)
        dev = Device(module)
        n = 60
        rng = np.random.default_rng(0)
        deg = rng.integers(0, 20, n)
        row = np.zeros(n + 1, dtype=np.int64)
        row[1:] = np.cumsum(deg)
        edges = rng.integers(0, n, int(row[-1]))
        d_row = dev.upload(row)
        d_edges = dev.upload(edges)
        dist = dev.alloc("int", n, fill=-1)
        dev.launch("parent", blocks(n, 64), 64, d_row, d_edges, dist, n, 3)
        dev.sync()
        assert dev.finish().total_time > 0


class TestPromoteFlag:
    def test_transform_with_promote(self, tmp_path, capsys):
        source = tmp_path / "rec.cu"
        source.write_text("""
__global__ void rec(int *p, int depth) {
    if (threadIdx.x == 0 && p[0] > 0 && depth < 8) {
        p[0] = p[0] - 1;
        rec<<<1, 32>>>(p, depth + 1);
    }
}
""")
        out_meta = str(tmp_path / "meta.json")
        assert main(["transform", str(source), "--promote",
                     "--meta", out_meta]) == 0
        out = capsys.readouterr().out
        assert "_prom_again" in out
        assert "rec<<<" not in out
        meta = json.load(open(out_meta))
        assert meta["promotion_specs"][0]["kernel"] == "rec"
