"""Shared benchmark configuration.

Every bench regenerates one table or figure of the paper and writes the
formatted result to ``benchmarks/out/``. Scales are chosen so the full
suite completes in minutes on a laptop; pass ``--repro-scale`` to raise
them (EXPERIMENTS.md records runs at scale 0.5).
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def pytest_addoption(parser):
    parser.addoption("--repro-scale", action="store", type=float,
                     default=0.35,
                     help="dataset scale for figure regeneration benches "
                          "(EXPERIMENTS.md records runs at this default)")


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def out_dir():
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def save(out_dir, name, text):
    path = os.path.join(out_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
