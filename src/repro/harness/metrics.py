"""In-process metrics: counters, gauges, and histograms with Prometheus
text exposition — stdlib only.

Every serving-path layer (HTTP service, request scheduler, sweep
executor, result/figure caches, remote fleet) records into one shared
:class:`MetricsRegistry` (:data:`REGISTRY`); ``repro serve`` exposes it
as ``GET /metrics`` in the Prometheus text format (version 0.0.4), so a
stock Prometheus/Grafana stack can scrape a running service without any
third-party client library.

The model is deliberately small:

* :class:`Counter` — monotonically increasing totals
  (``repro_serve_requests_total``);
* :class:`Gauge` — instantaneous values that go both ways
  (``repro_queue_depth``);
* :class:`Histogram` — cumulative-bucket latency distributions
  (``repro_sweep_point_seconds``).

Metrics may carry labels; a metric object handed out by the registry is
shared by name, so repeated ``REGISTRY.counter("x", ...)`` calls return
the same object (with the same label names — a mismatch is a bug and
raises). All operations are thread-safe.

>>> registry = MetricsRegistry()
>>> hits = registry.counter("demo_hits_total", "demo hits", ("kind",))
>>> hits.inc(kind="warm"); hits.inc(2, kind="warm")
>>> hits.value(kind="warm")
3.0
>>> print(registry.render().splitlines()[2])
demo_hits_total{kind="warm"} 3
"""

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
           "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds (seconds): sub-millisecond warm
#: hits through multi-minute cold fleet sweeps.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

_INF = float("inf")


def _format_value(value):
    """Prometheus sample value: integers render without the trailing .0."""
    if value == _INF:
        return "+Inf"
    if value == float(int(value)):
        return "%d" % int(value)
    return repr(value)


def _escape_label(value):
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_suffix(labelnames, labelvalues, extra=()):
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (name, _escape_label(value))
                             for name, value in pairs)


class _Metric:
    """Shared bookkeeping: one named metric, samples keyed by label values."""

    kind = None

    def __init__(self, name, help_text, labelnames, lock):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._samples = {}

    def _key(self, labels):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "%s %s takes labels %r, got %r"
                % (self.kind, self.name, self.labelnames,
                   tuple(sorted(labels))))
        return tuple(str(labels[name]) for name in self.labelnames)

    def clear(self):
        """Drop every sample (tests; a live service never calls this)."""
        with self._lock:
            self._samples.clear()


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ValueError("counters only go up (amount=%r)" % (amount,))
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels):
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def _render(self, lines):
        for key, value in sorted(self._samples.items()):
            lines.append("%s%s %s" % (self.name,
                                      _label_suffix(self.labelnames, key),
                                      _format_value(value)))
        if not self._samples and not self.labelnames:
            lines.append("%s 0" % self.name)


class Gauge(_Metric):
    """An instantaneous value that can move both ways."""

    kind = "gauge"

    def set(self, value, **labels):
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount=1, **labels):
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount=1, **labels):
        self.inc(-amount, **labels)

    def value(self, **labels):
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))

    def _render(self, lines):
        for key, value in sorted(self._samples.items()):
            lines.append("%s%s %s" % (self.name,
                                      _label_suffix(self.labelnames, key),
                                      _format_value(value)))
        if not self._samples and not self.labelnames:
            lines.append("%s 0" % self.name)


class Histogram(_Metric):
    """Cumulative-bucket distribution (the Prometheus histogram type)."""

    kind = "histogram"

    def __init__(self, name, help_text, labelnames, lock,
                 buckets=DEFAULT_BUCKETS):
        super().__init__(name, help_text, labelnames, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram %s needs at least one bucket" % name)

    def observe(self, value, **labels):
        key = self._key(labels)
        value = float(value)
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = self._samples[key] = \
                    {"counts": [0] * len(self.buckets), "sum": 0.0,
                     "count": 0}
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    sample["counts"][index] += 1
            sample["sum"] += value
            sample["count"] += 1

    def count(self, **labels):
        with self._lock:
            sample = self._samples.get(self._key(labels))
            return 0 if sample is None else sample["count"]

    def sum(self, **labels):
        with self._lock:
            sample = self._samples.get(self._key(labels))
            return 0.0 if sample is None else sample["sum"]

    def _render(self, lines):
        for key, sample in sorted(self._samples.items()):
            # ``observe`` increments every bucket the value fits in, so
            # the stored counts are already cumulative (the Prometheus
            # histogram contract).
            for bound, count in zip(self.buckets, sample["counts"]):
                lines.append("%s_bucket%s %s" % (
                    self.name,
                    _label_suffix(self.labelnames, key,
                                  extra=(("le", _format_value(bound)),)),
                    _format_value(count)))
            lines.append("%s_bucket%s %s" % (
                self.name,
                _label_suffix(self.labelnames, key,
                              extra=(("le", "+Inf"),)),
                _format_value(sample["count"])))
            suffix = _label_suffix(self.labelnames, key)
            lines.append("%s_sum%s %s" % (self.name, suffix,
                                          _format_value(sample["sum"])))
            lines.append("%s_count%s %s" % (self.name, suffix,
                                            _format_value(sample["count"])))


class MetricsRegistry:
    """A named collection of metrics with one text exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    registers the metric, later calls return the same object (and verify
    the kind and label names still agree, so two subsystems cannot
    silently fight over one name).
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics = {}

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls) \
                        or metric.labelnames != tuple(labelnames):
                    raise ValueError(
                        "metric %r already registered as a %s with labels "
                        "%r" % (name, metric.kind, metric.labelnames))
                return metric
            metric = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help_text, labelnames=()):
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name, help_text, labelnames=()):
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name, help_text, labelnames=(),
                  buckets=DEFAULT_BUCKETS):
        return self._get_or_create(Histogram, name, help_text, labelnames,
                                   buckets=buckets)

    def names(self):
        with self._lock:
            return sorted(self._metrics)

    def series_count(self):
        """Number of live (metric, labelset) series — the summary figure
        ``/cache/info`` reports."""
        with self._lock:
            return sum(max(1, len(m._samples)) if not m.labelnames
                       else len(m._samples)
                       for m in self._metrics.values())

    def reset(self):
        """Drop every sample but keep registrations (tests only — module-
        level metric objects stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._samples.clear()

    def render(self):
        """The full registry in Prometheus text exposition format 0.0.4
        (the ``GET /metrics`` response body)."""
        lines = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                lines.append("# HELP %s %s"
                             % (name, metric.help.replace("\\", "\\\\")
                                .replace("\n", "\\n")))
                lines.append("# TYPE %s %s" % (name, metric.kind))
                metric._render(lines)
        return "\n".join(lines) + "\n"


#: The process-wide registry every harness layer records into and
#: ``GET /metrics`` renders.
REGISTRY = MetricsRegistry()
