"""Arithmetic helpers with C semantics, used by generated code."""

import numpy as np

_FLOATS = (float, np.floating)


def c_div(a, b):
    """C division: float division if either operand is float, else integer
    division truncating toward zero (Python ``//`` floors)."""
    if isinstance(a, _FLOATS) or isinstance(b, _FLOATS):
        return a / b
    quotient = a // b
    if quotient < 0 and quotient * b != a:
        quotient += 1
    return quotient


def c_mod(a, b):
    """C remainder: same sign as the dividend."""
    if isinstance(a, _FLOATS) or isinstance(b, _FLOATS):
        return np.fmod(a, b)
    return a - c_div(a, b) * b


def local_array(size, type_name):
    """A per-thread fixed-size local array (``T buf[n]`` in kernel code)."""
    zero = 0.0 if type_name in ("float", "double") else 0
    return [zero] * int(size)
