"""Per-client admission control for the serving miss path.

``repro serve`` used to have exactly one fairness knob: the global
``--max-pending`` bound, a single 503 valve any one client could fill to
starve everyone else. This module gives the serve tier real multi-tenant
controls, keyed off the client identity the PR 7
:class:`~repro.harness.task.Provenance` record already carries:

* :class:`ClientQuota` — one client's allocation: a **token bucket**
  (``rate`` requests/second refill, ``burst`` bucket capacity) plus a
  cap on **concurrent in-flight misses** (``max_inflight``);
* :class:`QuotaManager` — the per-client bucket map the service consults
  *only on the miss path*: :meth:`~QuotaManager.admit` either returns a
  :class:`QuotaLease` (release it when the miss wait ends) or raises
  :class:`~repro.errors.QuotaExceededError` (HTTP 429 with a
  ``Retry-After`` header). Warm cache hits are never metered and never
  touch any quota lock;
* :class:`ApiKeyAuth` + :func:`load_api_keys` — optional API-key
  authentication (``repro serve --api-keys-file``): a JSON file maps
  each key to a client name and optional per-client quota overrides;
  lookups compare every known key with :func:`hmac.compare_digest`, so
  the scan cost is independent of where (or whether) the presented key
  matches.

Client identity resolves, in order, to the API key's client name, the
``X-Repro-Client`` header, then the remote address. Because the header
is client-supplied, metric label values are bounded the same way the
scheduler bounds priority labels: clients named in the quota overrides
or the API-key file get their own ``client`` label, every other identity
buckets under ``other`` (the per-client *buckets* stay exact — only the
metric label is coarsened).

Quota decisions are counted on ``repro_quota_rejections_total
{client,reason}``; admitted traffic mirrors its bucket level onto the
``repro_quota_tokens{client}`` gauge and its concurrency onto
``repro_quota_inflight{client}``.

>>> clock = iter([0.0, 0.0, 0.0, 0.5]).__next__
>>> manager = QuotaManager(default=ClientQuota(rate=2, burst=1),
...                        clock=clock)
>>> lease = manager.admit("alice")          # burst token spent at t=0
>>> manager.admit("alice")                  # empty bucket at t=0
Traceback (most recent call last):
  ...
repro.errors.QuotaExceededError: client 'alice' is over its rate quota (2.0/s after a burst of 1); retry in 0.50s
>>> lease.release()
>>> manager.admit("alice") is not None      # 0.5s later: refilled
True
"""

import hmac
import json
import threading
import time

from ..errors import AuthError, QuotaExceededError, ReproError
from .metrics import REGISTRY

__all__ = ["ApiKey", "ApiKeyAuth", "ClientQuota", "METRIC_CLIENT_OTHER",
           "QuotaLease", "QuotaManager", "load_api_keys"]

#: Metric label bucketing every client identity that is not explicitly
#: configured (quota override or API-key client name): identities arrive
#: from client-supplied headers, so labeling them verbatim would let
#: callers mint unbounded label values (the same reasoning as
#: :func:`~repro.harness.task.metric_priority_label`).
METRIC_CLIENT_OTHER = "other"

#: ``Retry-After`` fallback (seconds) for rejections that are not a
#: simple bucket refill away (the in-flight cap frees up when a running
#: miss finishes, which has no schedule).
DEFAULT_RETRY_AFTER = 1.0

_REJECTIONS = REGISTRY.counter(
    "repro_quota_rejections_total",
    "Miss-path admissions rejected by the per-client quota layer "
    "(rate: token bucket empty; inflight: concurrent miss cap)",
    ("client", "reason"))
_TOKENS = REGISTRY.gauge(
    "repro_quota_tokens",
    "Token-bucket level per client after its latest admission decision",
    ("client",))
_INFLIGHT = REGISTRY.gauge(
    "repro_quota_inflight",
    "In-flight miss admissions currently leased per client", ("client",))


class ClientQuota:
    """One client's allocation. All fields optional: ``rate`` (tokens
    per second) with ``burst`` (bucket capacity, default ``2 * rate``),
    and ``max_inflight`` (concurrent in-flight misses). ``None`` means
    unlimited on that axis; a quota with every axis ``None`` admits
    everything."""

    __slots__ = ("rate", "burst", "max_inflight")

    def __init__(self, rate=None, burst=None, max_inflight=None):
        if rate is not None and rate <= 0:
            raise ReproError("quota rate must be > 0, not %r" % (rate,))
        if burst is not None and burst < 1:
            raise ReproError("quota burst must be >= 1, not %r" % (burst,))
        if max_inflight is not None and max_inflight < 1:
            raise ReproError("quota max_inflight must be >= 1, not %r"
                             % (max_inflight,))
        self.rate = None if rate is None else float(rate)
        self.burst = (float(burst) if burst is not None
                      else None if rate is None
                      else max(1.0, 2.0 * float(rate)))
        self.max_inflight = (None if max_inflight is None
                            else int(max_inflight))

    @property
    def unlimited(self):
        return self.rate is None and self.max_inflight is None

    def merged(self, override):
        """This quota with *override*'s non-``None`` axes applied (the
        per-client override semantics of the API-keys file)."""
        if override is None:
            return self
        return ClientQuota(
            rate=self.rate if override.rate is None else override.rate,
            burst=self.burst if override.burst is None else override.burst,
            max_inflight=(self.max_inflight
                          if override.max_inflight is None
                          else override.max_inflight))

    def to_dict(self):
        return {"rate": self.rate, "burst": self.burst,
                "max_inflight": self.max_inflight}

    def __repr__(self):
        return ("ClientQuota(rate=%r, burst=%r, max_inflight=%r)"
                % (self.rate, self.burst, self.max_inflight))


class QuotaLease:
    """An admitted in-flight miss allocation. :meth:`release` returns the
    in-flight slots to the client's bucket (tokens are rate, not a pool —
    they are never returned); idempotent, so ``finally`` blocks can
    release unconditionally."""

    __slots__ = ("_bucket", "_cost", "_released")

    def __init__(self, bucket, cost):
        self._bucket = bucket
        self._cost = cost
        self._released = False

    def release(self):
        if self._released or self._bucket is None:
            return
        self._released = True
        self._bucket.release(self._cost)


#: The no-op lease handed out when quotas are disabled (or the client is
#: unlimited), so callers release unconditionally.
_FREE_LEASE = QuotaLease(None, 0)


class _ClientBucket:
    """One client's live state: token level, last-refill stamp, in-flight
    count — guarded by its own lock, so one client's admission storm
    never contends another client's hot path."""

    __slots__ = ("quota", "metric_client", "tokens", "refilled_at",
                 "inflight", "_lock", "_clock")

    def __init__(self, quota, metric_client, clock):
        self.quota = quota
        self.metric_client = metric_client
        self.tokens = quota.burst if quota.rate is not None else 0.0
        self.refilled_at = clock()
        self.inflight = 0
        self._lock = threading.Lock()
        self._clock = clock

    def admit(self, client, cost):
        quota = self.quota
        with self._lock:
            if quota.max_inflight is not None \
                    and self.inflight + cost > quota.max_inflight:
                _REJECTIONS.inc(client=self.metric_client,
                                reason="inflight")
                raise QuotaExceededError(
                    "client %r already has %d in-flight miss(es) "
                    "(cap %d); retry when they finish"
                    % (client, self.inflight, quota.max_inflight),
                    reason="inflight", retry_after=DEFAULT_RETRY_AFTER)
            if quota.rate is not None:
                now = self._clock()
                self.tokens = min(
                    quota.burst,
                    self.tokens + (now - self.refilled_at) * quota.rate)
                self.refilled_at = now
                if self.tokens < cost:
                    retry_after = (cost - self.tokens) / quota.rate
                    _TOKENS.set(self.tokens, client=self.metric_client)
                    _REJECTIONS.inc(client=self.metric_client,
                                    reason="rate")
                    raise QuotaExceededError(
                        "client %r is over its rate quota (%.1f/s after "
                        "a burst of %d); retry in %.2fs"
                        % (client, quota.rate, quota.burst, retry_after),
                        reason="rate", retry_after=retry_after)
                self.tokens -= cost
                _TOKENS.set(self.tokens, client=self.metric_client)
            self.inflight += cost
            _INFLIGHT.inc(cost, client=self.metric_client)
        return QuotaLease(self, cost)

    def release(self, cost):
        with self._lock:
            self.inflight -= cost
            _INFLIGHT.dec(cost, client=self.metric_client)

    def stats_dict(self):
        with self._lock:
            return {"quota": self.quota.to_dict(),
                    "tokens": (round(self.tokens, 3)
                               if self.quota.rate is not None else None),
                    "inflight": self.inflight}


class QuotaManager:
    """Per-client admission control: ``default`` applies to every client,
    ``overrides`` (client name -> :class:`ClientQuota`) replace its axes
    per client. Buckets materialize lazily per identity; metric labels
    stay bounded (*known* clients — override names plus any extra names
    the caller configures, e.g. every API-key client — label verbatim,
    everything else :data:`METRIC_CLIENT_OTHER`). *clock* is injectable
    for tests (monotonic seconds)."""

    def __init__(self, default=None, overrides=None, known=None,
                 clock=time.monotonic):
        self.default = default if default is not None else ClientQuota()
        self.overrides = dict(overrides or {})
        self.known = set(self.overrides) | set(known or ())
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = {}

    def quota_for(self, client):
        return self.default.merged(self.overrides.get(client))

    def metric_label(self, client):
        """Bounded-cardinality ``client`` label: configured names
        verbatim, anything else :data:`METRIC_CLIENT_OTHER`."""
        return client if client in self.known else METRIC_CLIENT_OTHER

    def _bucket(self, client):
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = _ClientBucket(
                    self.quota_for(client), self.metric_label(client),
                    self._clock)
            return bucket

    def admit(self, client, cost=1):
        """Admit *cost* in-flight misses for *client* (consuming *cost*
        bucket tokens) or raise
        :class:`~repro.errors.QuotaExceededError`. Returns a
        :class:`QuotaLease`; release it when the miss wait ends —
        success, failure, or timeout alike — so the in-flight cap always
        returns to zero."""
        client = client or "<unknown>"
        if cost <= 0:
            return _FREE_LEASE
        quota = self.quota_for(client)
        if quota.unlimited:
            return _FREE_LEASE
        return self._bucket(client).admit(client, cost)

    def inflight(self, client):
        bucket = self._buckets.get(client)
        return 0 if bucket is None else bucket.stats_dict()["inflight"]

    def total_inflight(self):
        with self._lock:
            buckets = list(self._buckets.values())
        return sum(bucket.stats_dict()["inflight"] for bucket in buckets)

    def stats_dict(self):
        """JSON-able per-client snapshot (the ``quota`` block of
        ``GET /cache/info``)."""
        with self._lock:
            buckets = sorted(self._buckets.items())
        return {"default": self.default.to_dict(),
                "clients": {client: bucket.stats_dict()
                            for client, bucket in buckets}}


# -- API-key authentication ---------------------------------------------------

class ApiKey:
    """One key's identity: the secret, the client name it maps to, and
    an optional per-client :class:`ClientQuota` override."""

    __slots__ = ("key", "client", "quota")

    def __init__(self, key, client, quota=None):
        self.key = key
        self.client = client
        self.quota = quota


def _quota_from_entry(entry, where):
    axes = {"rate": entry.get("rate"), "burst": entry.get("burst"),
            "max_inflight": entry.get("max_inflight")}
    if all(value is None for value in axes.values()):
        return None
    try:
        return ClientQuota(**axes)
    except ReproError as exc:
        raise ReproError("%s: %s" % (where, exc))


def load_api_keys(path):
    """Parse an ``--api-keys-file``: a JSON object mapping each API key
    to either a client-name string or an object with ``client`` plus
    optional ``rate``/``burst``/``max_inflight`` quota overrides::

        {
          "k-alice-f3a9": {"client": "alice", "rate": 20, "burst": 40},
          "k-batch-77c1": {"client": "batch", "max_inflight": 2},
          "k-probe-0d55": "probe"
        }

    Returns ``{key: ApiKey}``. Raises :class:`~repro.errors.ReproError`
    on unreadable files, non-object JSON, empty keys/client names, or
    malformed quota values — a serve tier must fail to *start* on a bad
    keys file, not fail open at request time.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ReproError("cannot read api-keys file %s: %s" % (path, exc))
    except ValueError as exc:
        raise ReproError("api-keys file %s is not valid JSON: %s"
                         % (path, exc))
    if not isinstance(data, dict) or not data:
        raise ReproError("api-keys file %s must be a non-empty JSON "
                         "object mapping key -> client" % path)
    keys = {}
    for key, entry in data.items():
        if not isinstance(key, str) or not key.strip():
            raise ReproError("api-keys file %s: empty API key" % path)
        if isinstance(entry, str):
            entry = {"client": entry}
        if not isinstance(entry, dict):
            raise ReproError(
                "api-keys file %s: entry for key %r must be a client "
                "name or an object, not %r" % (path, key[:8], entry))
        unknown = sorted(set(entry) - {"client", "rate", "burst",
                                       "max_inflight"})
        if unknown:
            raise ReproError("api-keys file %s: unknown field(s) %s for "
                             "key %r" % (path, ", ".join(unknown), key[:8]))
        client = entry.get("client")
        if not isinstance(client, str) or not client.strip():
            raise ReproError("api-keys file %s: key %r needs a non-empty "
                             "client name" % (path, key[:8]))
        keys[key] = ApiKey(key, client.strip(),
                           _quota_from_entry(entry, "api-keys file %s "
                                             "key %r" % (path, key[:8])))
    return keys


class ApiKeyAuth:
    """Constant-time API-key lookup over a ``{key: ApiKey}`` map.

    :meth:`authenticate` compares the presented key against **every**
    known key with :func:`hmac.compare_digest` and never exits early, so
    response timing leaks neither which key prefix matched nor whether
    any did.
    """

    def __init__(self, keys):
        if not keys:
            raise ReproError("ApiKeyAuth needs at least one key")
        self._keys = dict(keys)

    def __len__(self):
        return len(self._keys)

    @property
    def clients(self):
        return sorted({record.client for record in self._keys.values()})

    def quota_overrides(self):
        """client name -> :class:`ClientQuota` for every key that carries
        one (feeds :class:`QuotaManager` overrides, which also bounds the
        metric labels to configured client names)."""
        return {record.client: record.quota
                for record in self._keys.values()
                if record.quota is not None}

    def authenticate(self, presented):
        """Return the matching :class:`ApiKey` or raise
        :class:`~repro.errors.AuthError` (missing and wrong keys get the
        same message — don't tell an attacker which failure they hit)."""
        presented = presented or ""
        matched = None
        for key, record in self._keys.items():
            if hmac.compare_digest(presented.encode("utf-8"),
                                   key.encode("utf-8")):
                matched = record
        if matched is None:
            raise AuthError("missing or invalid API key (send "
                            "X-Repro-Api-Key; /healthz and /metrics "
                            "need no key)")
        return matched
