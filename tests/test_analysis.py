"""Analysis-pass unit tests: symbols, kernel properties, launch sites."""

import pytest

from repro.analysis import (NameAllocator, SymbolTable, analyze_kernel,
                            analyze_program, child_kernels, declared_names,
                            find_launch_sites, is_recursive,
                            parent_child_pairs, resolve_child, used_names)
from repro.errors import AnalysisError
from repro.minicuda import parse


class TestNameAllocator:
    def test_fresh_returns_stem_when_free(self):
        alloc = NameAllocator({"x"})
        assert alloc.fresh("_threads") == "_threads"

    def test_fresh_suffixes_on_collision(self):
        alloc = NameAllocator({"_threads"})
        assert alloc.fresh("_threads") == "_threads_2"
        assert alloc.fresh("_threads") == "_threads_3"

    def test_for_program_sees_all_names(self, bfs_like_source):
        alloc = NameAllocator.for_program(parse(bfs_like_source))
        assert alloc.fresh("tid") != "tid"
        assert alloc.fresh("child") != "child"

    def test_reserve(self):
        alloc = NameAllocator()
        alloc.reserve("mine")
        assert alloc.fresh("mine") == "mine_2"


class TestSymbols:
    def test_declared_names(self, bfs_like_source):
        program = parse(bfs_like_source)
        names = declared_names(program.function("parent"))
        assert {"row", "edges", "dist", "n", "level", "tid", "start",
                "degree"} <= names

    def test_used_names_include_launch_target(self, bfs_like_source):
        assert "child" in used_names(parse(bfs_like_source))

    def test_kind_classification(self, bfs_like_source):
        program = parse(bfs_like_source)
        table = SymbolTable(program, program.function("parent"))
        assert table.kind_of("row") == "param"
        assert table.kind_of("tid") == "local"
        assert table.kind_of("blockIdx") == "reserved"
        assert table.kind_of("child") == "function"
        assert table.kind_of("atomicAdd") == "intrinsic"
        assert table.kind_of("mystery") == "unknown"

    def test_global_kind(self):
        program = parse(
            "__device__ int counter;\n"
            "__global__ void k(int x) { counter = x; }")
        table = SymbolTable(program, program.function("k"))
        assert table.kind_of("counter") == "global"

    def test_type_of(self, bfs_like_source):
        program = parse(bfs_like_source)
        table = SymbolTable(program, program.function("parent"))
        assert table.type_of("row").pointers == 1
        assert table.type_of("tid").name == "int"
        assert table.type_of("nothere") is None


class TestKernelProperties:
    def test_plain_child_is_thresholdable(self, bfs_like_source):
        program = parse(bfs_like_source)
        props = analyze_kernel(program, "child")
        assert props.thresholdable
        assert not props.is_multidimensional

    def test_barrier_child_rejected(self, barrier_child_source):
        program = parse(barrier_child_source)
        props = analyze_kernel(program, "reduce_child")
        assert props.uses_barrier
        assert props.uses_shared_memory
        assert not props.thresholdable

    def test_warp_primitive_detected(self):
        program = parse(
            "__global__ void k(int *p) { int v = __shfl_down_sync(0, p[0], 1); }")
        assert analyze_kernel(program, "k").uses_warp_primitives

    def test_transitive_barrier_through_device_function(self):
        program = parse("""
            __device__ void helper(int x) { __syncthreads(); }
            __global__ void k(int *p) { helper(p[0]); }
        """)
        assert analyze_kernel(program, "k").uses_barrier

    def test_dims_used(self):
        program = parse(
            "__global__ void k(int *p) { p[blockIdx.y] = threadIdx.x; }")
        props = analyze_kernel(program, "k")
        assert props.dims_used == frozenset({"x", "y"})
        assert props.is_multidimensional

    def test_launches_found(self, bfs_like_source):
        program = parse(bfs_like_source)
        assert len(analyze_kernel(program, "parent").launches) == 1

    def test_analyze_program_covers_all_kernels(self, bfs_like_source):
        props = analyze_program(parse(bfs_like_source))
        assert set(props) == {"child", "parent"}

    def test_recursive_call_does_not_loop(self):
        program = parse("""
            __device__ int even(int n) { return n == 0 ? 1 : odd(n - 1); }
            __device__ int odd(int n) { return n == 0 ? 0 : even(n - 1); }
            __global__ void k(int *p) { p[0] = even(p[1]); }
        """)
        assert analyze_kernel(program, "k").thresholdable


class TestLaunchSites:
    def test_dynamic_sites_found(self, bfs_like_source):
        sites = find_launch_sites(parse(bfs_like_source))
        assert len(sites) == 1
        assert sites[0].parent.name == "parent"
        assert sites[0].child_name == "child"

    def test_host_function_launches_excluded_by_default(self):
        program = parse("""
            __global__ void k(int *p) { p[0] = 1; }
            void host_main(int *p) { k<<<1, 32>>>(p); }
        """)
        assert find_launch_sites(program) == []
        assert len(find_launch_sites(program, include_host=True)) == 1

    def test_child_kernels(self, bfs_like_source):
        assert child_kernels(parse(bfs_like_source)) == {"child"}

    def test_resolve_child_errors(self):
        program = parse(
            "__global__ void p(int *x) { ghost<<<1, 1>>>(x); }")
        with pytest.raises(AnalysisError):
            resolve_child(program, find_launch_sites(program)[0])

    def test_launch_of_device_function_rejected(self):
        program = parse("""
            __device__ void f(int *x) { x[0] = 1; }
            __global__ void p(int *x) { f<<<1, 1>>>(x); }
        """)
        with pytest.raises(AnalysisError):
            parent_child_pairs(program)

    def test_recursion_detected(self):
        program = parse("""
            __global__ void rec(int *p, int d) {
                if (d > 0) {
                    rec<<<1, 32>>>(p, d - 1);
                }
            }
        """)
        assert is_recursive(program, "rec")

    def test_mutual_recursion_detected(self):
        program = parse("""
            __global__ void a(int *p, int d);
            __global__ void b(int *p, int d) {
                if (d > 0) { a<<<1, 1>>>(p, d - 1); }
            }
            __global__ void a(int *p, int d) {
                if (d > 0) { b<<<1, 1>>>(p, d - 1); }
            }
        """)
        assert is_recursive(program, "a")

    def test_non_recursive(self, bfs_like_source):
        assert not is_recursive(parse(bfs_like_source), "parent")
