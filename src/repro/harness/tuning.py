"""Parameter tuning (Sec. VII / VIII-C).

The paper tunes three parameters per (benchmark, dataset, variant): the
launch threshold, the coarsening factor, and the aggregation granularity.
Two strategies are provided:

* ``exhaustive`` — full cross product (the paper's methodology for Figs. 9,
  11, 12);
* ``guided`` — the Sec. VIII-C observations: the best threshold admits a
  bounded number of dynamic launches, performance is insensitive to the
  coarsening factor once it is large enough (> 8), and warp granularity is
  never favorable; under ten runs usually land within a few percent of the
  tuned optimum.
"""

from dataclasses import dataclass, field

from ..sim.config import DeviceConfig
from .runner import child_launch_sizes, run_variant
from .variants import (ALL_GRANULARITIES, KLAP_GRANULARITIES, TuningParams,
                       uses)

#: Fig. 11's threshold axis (powers of two).
FULL_THRESHOLDS = tuple(1 << i for i in range(16))  # 1 .. 32768

DEFAULT_CFACTORS = (2, 8, 32)
DEFAULT_GROUP_BLOCKS = (2, 8, 32)


@dataclass
class TuneOutcome:
    """Best parameters found plus every point evaluated."""

    best: TuningParams
    best_time: int
    evaluated: list = field(default_factory=list)   # (params, total_time)


def threshold_candidates(bench, data, cap_to_largest=True, coarse=False,
                         device_config=None):
    """Power-of-two thresholds up to the largest dynamic launch size.

    Sec. VII: "the threshold is not tuned beyond the largest dynamic launch
    size to ensure at least one dynamic launch is performed". With
    ``cap_to_largest=False`` one value beyond the largest launch is added —
    the Fig. 12 methodology, where CDP+T degenerates to serializing
    everything.
    """
    sizes = child_launch_sizes(bench, data, device_config=device_config)
    largest = max(sizes) if sizes else 1
    candidates = [t for t in FULL_THRESHOLDS if t <= largest]
    if not candidates:
        candidates = [1]
    if coarse:
        candidates = candidates[::2] or candidates
    if not cap_to_largest:
        beyond = next((t for t in FULL_THRESHOLDS if t > largest),
                      FULL_THRESHOLDS[-1])
        if beyond > candidates[-1]:
            candidates.append(beyond)
    return candidates


def _spaces(bench, data, label, strategy, klap_mode, uncapped=False,
            device_config=None):
    if strategy == "exhaustive":
        thresholds = threshold_candidates(bench, data,
                                          cap_to_largest=not uncapped,
                                          device_config=device_config)
        cfactors = DEFAULT_CFACTORS
        granularities = KLAP_GRANULARITIES if klap_mode else ALL_GRANULARITIES
        groups = DEFAULT_GROUP_BLOCKS
    else:
        thresholds = threshold_candidates(bench, data, coarse=True,
                                          cap_to_largest=not uncapped,
                                          device_config=device_config)
        # Sec. VIII-C: insensitive to the factor provided it is large enough.
        cfactors = (8,)
        # Sec. VIII-C: warp granularity is never favorable.
        granularities = tuple(
            g for g in (KLAP_GRANULARITIES if klap_mode
                        else ALL_GRANULARITIES) if g != "warp") or ("block",)
        groups = (8,)
    if not uses(label, "T"):
        thresholds = (None,)
    if not uses(label, "C"):
        cfactors = (None,)
    if not uses(label, "A"):
        granularities = (None,)
        groups = (8,)
    return thresholds, cfactors, granularities, groups


def _param_grid(thresholds, cfactors, granularities, groups):
    """The full cross product, in the historical evaluation order."""
    grid = []
    for threshold in thresholds:
        for cfactor in cfactors:
            for granularity in granularities:
                group_list = groups if granularity == "multiblock" else (8,)
                for group_blocks in group_list:
                    grid.append(TuningParams(threshold, cfactor, granularity,
                                             group_blocks))
    return grid


def tune(bench, data, label, strategy="guided", device_config=None,
         check_against=None, uncapped=False, executor=None, scale=None):
    """Search the parameter space for one variant.

    :param bench: benchmark object; *data* its built dataset.
    :param label: variant label; ``"KLAP (CDP+A)"`` restricts granularity
        to prior work's options.
    :param strategy: ``"guided"`` (Sec. VIII-C pruning, under ten runs)
        or ``"exhaustive"`` (full cross product).
    :param check_against: reference outputs; every evaluated point is
        verified against it (executor mode verifies the best point once —
        workers return timings only).
    :param uncapped: permit thresholds beyond the largest launch
        (the Fig. 12 methodology).
    :param executor: optional
        :class:`~repro.harness.sweep.SweepExecutor`; together with the
        dataset *scale* it fans the whole grid out through the sweep
        engine — parallel, cacheable, and shardable across remote
        workers. Failures always raise
        :class:`~repro.harness.sweep.SweepPointError` here (the tuner
        has no representation for a failed point), regardless of the
        executor's ``on_error``.
    :returns: a :class:`TuneOutcome` with the best params, its time, and
        every ``(params, total_time)`` evaluated.
    """
    klap_mode = label == "KLAP (CDP+A)"
    thresholds, cfactors, granularities, groups = _spaces(
        bench, data, label, strategy, klap_mode, uncapped,
        device_config=device_config)
    grid = _param_grid(thresholds, cfactors, granularities, groups)
    if executor is not None and scale is not None:
        from .sweep import SweepPoint
        device_config = device_config or DeviceConfig()
        dataset_name = getattr(data, "name", "?")
        points = [SweepPoint(bench.name, dataset_name, label, params,
                             device_config, scale) for params in grid]
        # The tuner has no representation for a failed point, so force
        # failures to raise (with attribution) whatever the executor's
        # default on_error is.
        results = executor.run(points, on_error="raise")
        evaluated = [(params, result.total_time)
                     for params, result in zip(grid, results)]
    else:
        evaluated = []
        for params in grid:
            result = run_variant(bench, data, label, params, device_config,
                                 check_against=check_against)
            evaluated.append((params, result.total_time))
    best = None
    best_time = None
    for params, total_time in evaluated:
        if best_time is None or total_time < best_time:
            best, best_time = params, total_time
    if executor is not None and scale is not None and check_against is not None:
        run_variant(bench, data, label, best, device_config,
                    check_against=check_against)
    return TuneOutcome(best, best_time, evaluated)
