"""`repro serve`: a long-lived HTTP query service over the warm caches.

Every consumer of a paper result — Table 1 rows, Figure 9-12 points,
tuner outputs — used to shell out to ``repro figure``/``repro sweep``
even when the answer was already sitting warm in the
:class:`~repro.harness.cache.ResultCache`. This module fronts the caches
with a stdlib-only threaded HTTP server (``repro serve`` on the CLI) and
uses the sweep engine — including the ``--workers`` remote fleet — as its
miss path, so results become queryable at interactive latency.

Endpoints (the full reference with request/response examples lives in
``docs/serving.md``; :data:`ENDPOINTS` is the machine-readable list):

* ``GET /healthz`` — liveness, versions, uptime, request count;
* ``GET /cache/info`` — JSON :meth:`~repro.harness.cache.CacheInfo.to_dict`
  plus result/figure hit counters, cumulative executor stats, and the
  miss scheduler's queue counters;
* ``GET /metrics`` — the process-wide
  :data:`~repro.harness.metrics.REGISTRY` in Prometheus text exposition
  format (serve, queue, sweep, cache, and remote-fleet series);
* ``GET /point?benchmark=..&dataset=..&label=..&threshold=..`` — one
  sweep point. Params are canonicalized through
  :func:`~repro.harness.variants.mask_params`, so any URL describing the
  same *effective* configuration lands on the same cache key; a warm hit
  never touches the executor, a miss is scheduled on the
  :class:`~repro.harness.queue.RequestScheduler` and populates the cache;
* ``POST /sweep`` — a (pairs × variants) grid spec; per-point results
  with :class:`~repro.harness.sweep.PointFailure` entries surfaced as
  structured JSON under the documented ``on_error`` contract
  (``docs/sweep-engine.md``);
* ``GET /figure/<name>`` — read-through
  :class:`~repro.harness.cache.FigureArtifactCache`; structured JSON by
  default, ``?format=text`` for the formatted table;
* ``POST /shutdown`` — loopback-only graceful drain (the HTTP form of
  SIGTERM).

Results travel as :func:`~repro.harness.cache.encode_result` payloads —
the same encoding the disk cache and the remote TCP protocol use, so the
three consumers share one contract.

Concurrency model: the cache hit path is lock-free (content-addressed
files, atomically replaced — concurrent readers can never observe a torn
entry), so warm traffic scales with the server's thread pool. Miss-path
work for ``/point`` and ``/sweep`` flows through a bounded
priority-queue :class:`~repro.harness.queue.RequestScheduler`
(``--miss-workers`` executors, each with its own backend, sharing one
cache; per-point in-flight dedup; ``--max-pending`` backpressure mapped
to 503). Requests may carry a **priority class** and a **deadline**
(``X-Repro-Priority`` / ``X-Repro-Deadline-Ms`` headers, or the
``priority``/``deadline_ms`` body fields of ``POST /sweep``): higher
priorities run first (FIFO within a class), expired work is shed without
simulating and mapped to a structured 504 with ``"retry": true``, as is
a miss that outlives ``--request-timeout`` (the handler's bounded wait —
the simulation keeps running and lands in the cache for the retry).
Figure *builds* stay serialized behind one dedicated executor (a figure
is a whole tuning campaign, not a point), but warm figures answer
lock-free. Shutdown drains: queued and in-flight misses finish before
the process exits, so a killed service never tears a cache write.

Multi-tenant hardening: a :class:`~repro.harness.quota.QuotaManager`
(``--quota-rps``/``--quota-burst``/``--quota-max-inflight``, plus
per-client overrides from the api-keys file) meters the *miss* path per
client — over-quota misses 429 with a ``Retry-After`` header and
``"retry": true``; warm hits are never metered and never touch the
limiter lock. Client identity comes from the authenticated API key when
``--api-keys-file`` is set (missing/unknown keys 401 everywhere except
:data:`OPEN_ROUTES`), else the ``X-Repro-Client`` header, else the
remote address.
"""

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..benchmarks import get_benchmark
from ..errors import (AuthError, QueueError, QuotaExceededError, ReproError,
                      ServeError)
from ..sim.config import DeviceConfig
from .cache import (CACHE_VERSION, FigureArtifactCache, ResultCache,
                    encode_result, point_key)
from .figures import (figure9, figure10, figure11, figure12,
                      fixed_threshold_study, table1)
from .metrics import REGISTRY
from .queue import RequestScheduler
from .quota import ApiKeyAuth
from .sweep import (PointFailure, SweepExecutor, SweepPoint, SweepStats,
                    sweep_grid)
from .task import Provenance, parse_priority
from .variants import (ALL_GRANULARITIES, VARIANT_LABELS, TuningParams,
                       mask_params)

__all__ = ["ENDPOINTS", "QueryService", "ServeServer", "point_from_query"]

#: Every route the server registers, in documentation order.
#: ``docs/serving.md`` must document each entry verbatim (enforced by
#: ``tests/test_docs.py``).
ENDPOINTS = ("GET /healthz", "GET /cache/info", "GET /metrics",
             "GET /point", "POST /sweep", "GET /figure/<name>",
             "POST /shutdown")

#: Upper bound on one ``POST /sweep`` body; anything larger is a client
#: error, not a grid.
MAX_BODY = 16 * 1024 * 1024

#: Prometheus text exposition content type served by ``GET /metrics``.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default bound (seconds) on how long one HTTP handler waits for a miss
#: (``--request-timeout``); past it the request 504s with ``retry: true``
#: while the simulation continues toward the cache.
DEFAULT_REQUEST_TIMEOUT = 300.0

#: Routes that never require an API key even with ``--api-keys-file``
#: set: liveness probes and metric scrapers must not need credentials.
OPEN_ROUTES = ("/healthz", "/metrics")

#: Variant labels whose ``+`` arrived as a space because the client did
#: not URL-encode it (``+`` means space in a query string).
_LABEL_BY_SPACED = {label.replace("+", " "): label
                    for label in VARIANT_LABELS}

_POINT_KEYS = ("benchmark", "dataset", "label", "scale", "threshold",
               "coarsen", "aggregate", "group_blocks")

_SWEEP_KEYS = ("pairs", "variants", "scale", "params", "on_error",
               "priority", "deadline_ms")

_PARAM_KEYS = ("threshold", "coarsen", "aggregate", "group_blocks")

# -- serving metrics ----------------------------------------------------------

_REQUESTS = REGISTRY.counter(
    "repro_serve_requests_total",
    "HTTP requests by route and status code", ("route", "code"))
_REQUEST_SECONDS = REGISTRY.histogram(
    "repro_serve_request_seconds",
    "End-to-end request latency by route", ("route",))
_POINT_CACHE = REGISTRY.counter(
    "repro_serve_point_cache_total",
    "GET /point requests by which path served them", ("state",))
_FIGURE_CACHE = REGISTRY.counter(
    "repro_serve_figure_cache_total",
    "GET /figure requests by which path served them", ("state",))


def _canonical_label(label):
    """Resolve a variant label from a query string, tolerating the
    ``+`` → space mangling of unencoded URLs.

    >>> _canonical_label("CDP T")
    'CDP+T'
    >>> _canonical_label("No CDP")
    'No CDP'
    >>> _canonical_label("KLAP (CDP A)")
    'KLAP (CDP+A)'
    """
    if label in VARIANT_LABELS:
        return label
    if label in _LABEL_BY_SPACED:
        return _LABEL_BY_SPACED[label]
    raise ServeError("unknown variant label %r (have %s)"
                     % (label, ", ".join(VARIANT_LABELS)))


def _parse_int(raw, name):
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ServeError("%s must be an integer, not %r" % (name, raw))


def _parse_float(raw, name):
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise ServeError("%s must be a number, not %r" % (name, raw))


def _parse_granularity(raw):
    if raw is None or raw in ALL_GRANULARITIES:
        return raw
    raise ServeError("aggregate must be one of %s, not %r"
                     % (", ".join(ALL_GRANULARITIES), raw))


def _validate_pair(benchmark, dataset):
    """Resolve one benchmark/dataset pair; 400s on unknown names."""
    try:
        bench = get_benchmark(benchmark)
    except KeyError as exc:
        raise ServeError(exc.args[0])
    if dataset not in bench.dataset_names:
        raise ServeError("unknown dataset %r for %s (have %s)"
                         % (dataset, bench.name,
                            ", ".join(bench.dataset_names)))
    return bench.name


def _params_from(mapping, where):
    unknown = sorted(set(mapping) - set(_PARAM_KEYS))
    if unknown:
        raise ServeError("unknown %s parameter(s) %s (have %s)"
                         % (where, ", ".join(unknown),
                            ", ".join(_PARAM_KEYS)))
    kwargs = {}
    if mapping.get("threshold") is not None:
        kwargs["threshold"] = _parse_int(mapping["threshold"], "threshold")
    if mapping.get("coarsen") is not None:
        kwargs["coarsen_factor"] = _parse_int(mapping["coarsen"], "coarsen")
    kwargs["granularity"] = _parse_granularity(mapping.get("aggregate"))
    if mapping.get("group_blocks") is not None:
        kwargs["group_blocks"] = _parse_int(mapping["group_blocks"],
                                            "group_blocks")
    return TuningParams(**kwargs)


def point_from_query(query):
    """Build the canonical :class:`~repro.harness.sweep.SweepPoint` for a
    ``GET /point`` query-parameter mapping.

    Tuning params are canonicalized through
    :func:`~repro.harness.variants.mask_params`, so two URLs describing
    the same effective configuration (e.g. a plain ``CDP`` point with or
    without a stray ``threshold=``) resolve to the same point — and
    therefore the same cache key. Raises :class:`~repro.errors.ServeError`
    (HTTP 400) on unknown parameters, names, or labels.
    """
    unknown = sorted(set(query) - set(_POINT_KEYS))
    if unknown:
        raise ServeError("unknown /point parameter(s) %s (have %s)"
                         % (", ".join(unknown), ", ".join(_POINT_KEYS)))
    for required in ("benchmark", "dataset"):
        if not query.get(required):
            raise ServeError("/point needs a %r parameter" % required)
    label = _canonical_label(query.get("label", "CDP"))
    benchmark = _validate_pair(query["benchmark"], query["dataset"])
    scale = _parse_float(query.get("scale", "0.25"), "scale")
    tuning = {key: query[key] for key in _PARAM_KEYS if key in query}
    params = mask_params(label, _params_from(tuning, "/point"))
    return SweepPoint(benchmark, query["dataset"], label, params,
                      DeviceConfig(), scale)


def _priority_from(raw):
    """Wire priority -> int class; ServeError (HTTP 400) on garbage."""
    try:
        return parse_priority(raw)
    except ValueError as exc:
        raise ServeError(str(exc))


def _deadline_from(raw, where):
    """Wire ``deadline_ms`` -> absolute ``time.monotonic()`` deadline (or
    None); ServeError (HTTP 400) on garbage."""
    if raw is None or raw == "":
        return None
    try:
        millis = float(raw)
    except (TypeError, ValueError):
        raise ServeError("%s must be a number of milliseconds, not %r"
                         % (where, raw))
    if millis < 0:
        raise ServeError("%s must be >= 0, not %r" % (where, raw))
    return time.monotonic() + millis / 1000.0


def _failure_payload(failure):
    """Structured JSON for one :class:`~repro.harness.sweep.PointFailure`
    (the ``on_error`` contract of ``docs/sweep-engine.md``, over HTTP).
    Deadline sheds additionally carry ``"retry": true`` — the point is
    still computable, the caller's time budget just ran out."""
    payload = {"status": "error",
               "error": failure.error,
               "message": failure.message,
               "point": failure.point.spec(),
               "describe": failure.point.describe()}
    if failure.error == "DeadlineExceededError":
        payload["retry"] = True
    return payload


def _timeout_payload(describe, timeout):
    """Structured 504 body for a bounded miss wait that ran out; the
    simulation keeps running, so a retry picks up the cached result.
    *timeout* is the wait that actually expired — the tighter of the
    request deadline and ``--request-timeout`` — or None (defensive:
    an unbounded wait should never time out)."""
    waited = "its wait budget" if timeout is None else "%.3fs" % timeout
    return {"status": "error",
            "error": "TimeoutError",
            "message": "%s not done within %s; work continues toward "
                       "the cache — retry" % (describe, waited),
            "retry": True}


class _ArtifactMiss(Exception):
    """Internal: the optimistic figure pass found no cached artifact."""


class _ArtifactProbe:
    """Read-only view of a :class:`~repro.harness.cache.FigureArtifactCache`
    for the lock-free warm-figure pass: serves hits, aborts the build on
    a miss (so the probe never reaches executor work). The miss stays
    uncounted — the locked rebuild's own ``get`` is the authoritative
    one."""

    def __init__(self, inner):
        self._inner = inner

    def get(self, name, spec):
        artifact = self._inner.get(name, spec, count_miss=False)
        if artifact is None:
            raise _ArtifactMiss(name)
        return artifact


# -- figure registry ----------------------------------------------------------

def _strategy_from(query):
    strategy = query.get("strategy", "guided")
    if strategy not in ("guided", "exhaustive"):
        raise ServeError("strategy must be 'guided' or 'exhaustive', "
                         "not %r" % (strategy,))
    return strategy


def _fig11_args(query):
    benchmark = query.get("benchmark", "BFS")
    dataset = query.get("dataset", "KRON")
    return _validate_pair(benchmark, dataset), dataset


#: name -> (allowed query params, builder(query, executor, artifacts)).
#: The names match ``repro figure`` so the docs describe one vocabulary.
FIGURES = {
    "table1": (
        ("scale",),
        lambda query, executor, artifacts: table1(
            scale=_parse_float(query.get("scale", "1.0"), "scale"),
            artifacts=artifacts)),
    "fig9": (
        ("scale", "strategy"),
        lambda query, executor, artifacts: figure9(
            scale=_parse_float(query.get("scale", "0.25"), "scale"),
            strategy=_strategy_from(query), executor=executor,
            artifacts=artifacts)),
    "fig10": (
        ("scale", "strategy"),
        lambda query, executor, artifacts: figure10(
            scale=_parse_float(query.get("scale", "0.25"), "scale"),
            strategy=_strategy_from(query), executor=executor,
            artifacts=artifacts)),
    "fig11": (
        ("scale", "benchmark", "dataset"),
        lambda query, executor, artifacts: figure11(
            *_fig11_args(query),
            scale=_parse_float(query.get("scale", "0.25"), "scale"),
            executor=executor, artifacts=artifacts)),
    "fig12": (
        ("scale", "strategy"),
        lambda query, executor, artifacts: figure12(
            scale=_parse_float(query.get("scale", "0.25"), "scale"),
            strategy=_strategy_from(query), executor=executor,
            artifacts=artifacts)),
    "fixed-threshold": (
        ("scale", "strategy"),
        lambda query, executor, artifacts: fixed_threshold_study(
            scale=_parse_float(query.get("scale", "0.25"), "scale"),
            strategy=_strategy_from(query), executor=executor,
            artifacts=artifacts)),
}


# -- the service --------------------------------------------------------------

class QueryService:
    """The serving-path brain: caches + scheduler + executors, HTTP-free.

    All request semantics live here (the HTTP handler only routes and
    serializes), so tests and embedders can drive the service without a
    socket. Every public method returns ``(payload, http_status)``.

    ``miss_workers`` executors (each with its own backend instance,
    sharing one cache) drain the bounded miss queue concurrently; one
    extra dedicated executor (:attr:`executor`) serves figure builds, so
    a figure campaign and point misses never contend for one backend.
    ``max_pending`` bounds the queue — submissions past it are rejected
    with :class:`~repro.errors.QueueFullError` (HTTP 503).

    With ``cache_dir=None`` the service still works but every request
    takes the miss path — useful only for smoke tests; production
    serving wants a cache pre-warmed by ``repro sweep`` (the runbook in
    ``docs/serving.md``).
    """

    def __init__(self, cache_dir=".repro-cache", jobs=1, backend=None,
                 workers=None, worker_timeout=None, quiet=True,
                 miss_workers=2, max_pending=64,
                 request_timeout=DEFAULT_REQUEST_TIMEOUT,
                 quota=None, api_keys=None):
        self.cache_dir = str(cache_dir) if cache_dir else None
        #: Per-client admission control for the miss path (a
        #: :class:`~repro.harness.quota.QuotaManager`, or None = no
        #: quotas). Consulted only after the warm-cache pre-check misses,
        #: so warm hits never take a quota lock.
        self.quota = quota
        #: Optional API-key auth (a ``{key: ApiKey}`` map or a ready
        #: :class:`~repro.harness.quota.ApiKeyAuth`); when set, every
        #: route except :data:`OPEN_ROUTES` requires a valid
        #: ``X-Repro-Api-Key`` and the key's client name becomes the
        #: request's quota/provenance identity.
        if api_keys is not None and not isinstance(api_keys, ApiKeyAuth):
            api_keys = ApiKeyAuth(api_keys)
        self.auth = api_keys
        self.request_timeout = (None if request_timeout is None
                                or request_timeout <= 0
                                else float(request_timeout))
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.artifacts = FigureArtifactCache(cache_dir) if cache_dir else None
        miss_workers = max(1, int(miss_workers))

        def make_executor():
            return SweepExecutor(jobs=jobs, cache=self.cache,
                                 backend=backend, workers=workers,
                                 worker_timeout=worker_timeout,
                                 on_error="continue")

        #: The figure-path executor (also the one ``/healthz`` reports).
        self.executor = make_executor()
        #: One executor per scheduler worker; backends are not safe for
        #: concurrent ``map`` calls, so concurrency means N executors.
        self.miss_executors = [make_executor() for _ in range(miss_workers)]
        self.scheduler = RequestScheduler(self.miss_executors,
                                          max_pending=max_pending)
        self.quiet = quiet
        self.started = time.time()
        self.requests = 0
        # Figure builds are whole campaigns driving self.executor; they
        # stay serialized. The warm-figure path never takes this lock.
        self._figure_lock = threading.Lock()
        self._count_lock = threading.Lock()

    # -- bookkeeping ----------------------------------------------------------

    def count_request(self):
        with self._count_lock:
            self.requests += 1

    def executor_stats(self):
        """Cumulative :class:`~repro.harness.sweep.SweepStats` aggregated
        across the figure executor and every miss worker (the
        ``executor`` block of ``GET /cache/info``)."""
        total = SweepStats()
        for executor in [self.executor] + self.miss_executors:
            stats = executor.stats
            total.points += stats.points
            total.hits += stats.hits
            total.simulated += stats.simulated
            total.failed += stats.failed
        return total

    # -- endpoints ------------------------------------------------------------

    def health(self):
        """``GET /healthz``."""
        return ({"status": "ok",
                 "version": __version__,
                 "cache_version": CACHE_VERSION,
                 "backend": self.executor.backend.name,
                 "cache_dir": self.cache_dir,
                 "miss_workers": self.scheduler.workers,
                 "request_timeout": self.request_timeout,
                 "auth": self.auth is not None,
                 "quota": self.quota is not None,
                 "uptime_seconds": round(time.time() - self.started, 3),
                 "requests": self.requests,
                 "endpoints": list(ENDPOINTS)}, 200)

    def cache_info(self):
        """``GET /cache/info``."""
        payload = {
            "cache_dir": self.cache_dir,
            "info": self.cache.info().to_dict() if self.cache else None,
            "results": ({"hits": self.cache.hits,
                         "misses": self.cache.misses}
                        if self.cache else None),
            "figures": ({"hits": self.artifacts.hits,
                         "misses": self.artifacts.misses}
                        if self.artifacts else None),
            "executor": self.executor_stats().to_dict(),
            "queue": self.scheduler.stats_dict(),
            "quota": (self.quota.stats_dict()
                      if self.quota is not None else None),
            "index": (self.cache.index.stats_dict()
                      if self.cache else None),
            "metrics": {"series": REGISTRY.series_count(),
                        "endpoint": "GET /metrics"},
            "backend": self.executor.backend.name,
        }
        return (payload, 200)

    def metrics(self):
        """``GET /metrics``: the Prometheus text exposition. Returned as
        ``(text, status)``; the handler serves it unserialized with
        :data:`METRICS_CONTENT_TYPE`."""
        return (REGISTRY.render(), 200)

    def _admit_misses(self, context, cost):
        """Charge *cost* cold points to the request's client before
        anything reaches the scheduler. Returns a lease to release when
        the miss wait ends (every exit path — result, failure, timeout —
        so the in-flight cap can never leak). Raises
        :class:`~repro.errors.QuotaExceededError` (HTTP 429) over quota;
        warm hits never get here."""
        if self.quota is None or cost <= 0:
            return None
        return self.quota.admit(context.get("client"), cost=cost)

    def _miss_wait_timeout(self, deadline, wait_deadline=None):
        """Seconds to block on a miss: the tighter of the request's
        deadline and the service's ``request_timeout`` budget (None =
        unbounded)."""
        bounds = []
        if wait_deadline is not None:
            bounds.append(wait_deadline)
        elif self.request_timeout is not None:
            bounds.append(time.monotonic() + self.request_timeout)
        if deadline is not None:
            bounds.append(deadline)
        if not bounds:
            return None
        return max(0.0, min(bounds) - time.monotonic())

    def lookup_point(self, query, context=None):
        """``GET /point``: warm answers straight from the cache
        (lock-free), misses through the request scheduler — which dedups
        concurrent requests for one masked spec into a single
        computation and populates the cache, so the second identical
        request is a hit.

        *context* carries the HTTP layer's ``X-Repro-Priority`` /
        ``X-Repro-Deadline-Ms`` / ``X-Repro-Request-Id`` headers plus the
        client address. An expired deadline sheds the miss (504,
        ``retry: true``); so does a miss that outlives the request
        timeout (the simulation keeps running toward the cache)."""
        context = context or {}
        priority = _priority_from(context.get("priority"))
        deadline = _deadline_from(context.get("deadline_ms"),
                                  "X-Repro-Deadline-Ms")
        point = point_from_query(query)
        # Optimistic lock-free pre-check; the executor's own get() is the
        # authoritative (counted) miss, so this one stays uncounted.
        result = (self.cache.get(point, count_miss=False)
                  if self.cache is not None else None)
        cache_state = "hit"
        if result is None:
            cache_state = "miss"
            # Quota gate: misses (and only misses) are metered, before
            # the scheduler sees the point. Over quota -> 429, nothing
            # queued.
            lease = self._admit_misses(context, cost=1)
            try:
                task = self.scheduler.submit(
                    point, priority=priority, deadline=deadline,
                    provenance=Provenance(
                        client=context.get("client"),
                        request_id=context.get("request_id"),
                        source="point"))
                timeout = self._miss_wait_timeout(deadline)
                try:
                    result = self.scheduler.result(task, timeout=timeout)
                except TimeoutError:
                    _POINT_CACHE.inc(state=cache_state)
                    return (dict(_timeout_payload(point.describe(),
                                                  timeout),
                                 point=point.spec()), 504)
            finally:
                if lease is not None:
                    lease.release()
        _POINT_CACHE.inc(state=cache_state)
        if isinstance(result, PointFailure):
            code = 504 if result.error == "DeadlineExceededError" else 500
            return (_failure_payload(result), code)
        return ({"point": point.spec(),
                 "key": point_key(point),
                 "cache": cache_state,
                 "result": encode_result(result)}, 200)

    def run_sweep(self, body, context=None):
        """``POST /sweep``: a grid spec; per-point results in grid order,
        failures as structured entries (``on_error="continue"``), or one
        500 naming the first failure (``on_error="raise"``). Warm points
        resolve lock-free; the misses are scheduled as one batch
        (deduplicated against in-flight work, FIFO within the request's
        priority class) and awaited together.

        ``priority``/``deadline_ms`` body fields (falling back to the
        ``X-Repro-*`` headers) apply to the whole batch. Deadline-shed
        misses surface as structured ``DeadlineExceededError`` entries
        and count in ``stats.shed``; if the whole request came up empty
        (no warm hits, every miss shed) — or the batch outlives the
        request timeout — the response is a 504 with ``retry: true``.
        Warm hits are served regardless of deadline."""
        context = context or {}
        if not isinstance(body, dict):
            raise ServeError("POST /sweep body must be a JSON object")
        unknown = sorted(set(body) - set(_SWEEP_KEYS))
        if unknown:
            raise ServeError("unknown /sweep key(s) %s (have %s)"
                             % (", ".join(unknown), ", ".join(_SWEEP_KEYS)))
        priority = _priority_from(body.get("priority",
                                           context.get("priority")))
        deadline = _deadline_from(body.get("deadline_ms",
                                           context.get("deadline_ms")),
                                  "deadline_ms")
        on_error = body.get("on_error", "continue")
        if on_error not in ("continue", "raise"):
            raise ServeError("on_error must be 'continue' or 'raise', "
                             "not %r" % (on_error,))
        pairs = []
        for item in body.get("pairs") or ():
            if isinstance(item, str):
                benchmark, _, dataset = item.partition(":")
            elif isinstance(item, (list, tuple)) and len(item) == 2:
                benchmark, dataset = item
            else:
                raise ServeError("bad pairs entry %r (want 'BENCH:DATASET' "
                                 "or [bench, dataset])" % (item,))
            if not benchmark or not dataset:
                raise ServeError("bad pairs entry %r (want 'BENCH:DATASET' "
                                 "or [bench, dataset])" % (item,))
            pairs.append((_validate_pair(benchmark, dataset), dataset))
        if not pairs:
            raise ServeError("POST /sweep needs a non-empty 'pairs' list")
        variants = [_canonical_label(label)
                    for label in body.get("variants") or ()]
        if not variants:
            raise ServeError("POST /sweep needs a non-empty 'variants' list")
        scale = _parse_float(body.get("scale", 0.25), "scale")
        params_body = body.get("params") or {}
        if not isinstance(params_body, dict):
            raise ServeError("'params' must be a JSON object")
        params = _params_from(params_body, "/sweep params")
        points = sweep_grid(pairs, variants, scale=scale, params=params)
        results = [None] * len(points)
        miss_indices = []
        for index, point in enumerate(points):
            cached = (self.cache.get(point, count_miss=False)
                      if self.cache is not None else None)
            if cached is not None:
                results[index] = cached
            else:
                miss_indices.append(index)
        stats = {"points": len(points),
                 "hits": len(points) - len(miss_indices),
                 "simulated": 0, "failed": 0, "shed": 0}
        if miss_indices:
            wait_deadline = (None if self.request_timeout is None
                             else time.monotonic() + self.request_timeout)
            # Quota gate: each cold point costs one token, charged as
            # one batch before anything is enqueued — over quota the
            # whole request is 429 and the scheduler never sees it.
            lease = self._admit_misses(context, cost=len(miss_indices))
            try:
                tasks = self.scheduler.submit_all(
                    [points[index] for index in miss_indices],
                    priority=priority, deadline=deadline,
                    provenance=Provenance(
                        client=context.get("client"),
                        request_id=context.get("request_id"),
                        source="sweep"))
                for index, task in zip(miss_indices, tasks):
                    timeout = self._miss_wait_timeout(deadline,
                                                      wait_deadline)
                    try:
                        results[index] = self.scheduler.result(task,
                                                               timeout)
                    except TimeoutError:
                        # Report the wait that actually expired, not
                        # request_timeout: the request deadline may have
                        # been the tighter bound, and with
                        # --request-timeout 0 the budget is None entirely.
                        return (_timeout_payload(
                            "sweep (%d points)" % len(points),
                            timeout), 504)
            finally:
                if lease is not None:
                    lease.release()
            for index in miss_indices:
                result = results[index]
                if not isinstance(result, PointFailure):
                    stats["simulated"] += 1
                elif result.error == "DeadlineExceededError":
                    stats["shed"] += 1
                else:
                    stats["failed"] += 1
        entries = [_failure_payload(result)
                   if isinstance(result, PointFailure)
                   else {"status": "ok", "result": encode_result(result)}
                   for result in results]
        if miss_indices and stats["shed"] == len(miss_indices) \
                and stats["hits"] == 0:
            # Nothing useful came back — every point expired before
            # running — so say so at the top level. Any warm hit keeps
            # the request a 200 with per-point shed entries instead.
            return ({"error": "DeadlineExceededError",
                     "message": "deadline expired before any of the %d "
                                "cold points ran" % len(miss_indices),
                     "retry": True, "points": len(points),
                     "results": entries, "stats": stats}, 504)
        failures = [r for r in results if isinstance(r, PointFailure)]
        if failures and on_error == "raise":
            return (_failure_payload(failures[0]), 500)
        return ({"points": len(points), "results": entries,
                 "stats": stats}, 200)

    def figure(self, name, query):
        """``GET /figure/<name>``: read-through the figure artifact
        cache; a miss rebuilds the figure through the dedicated figure
        executor (grid points still resolve against the result cache
        first). Structured JSON by default; ``?format=text`` returns the
        formatted table (the pre-PR-5 shape)."""
        if name not in FIGURES:
            return ({"error": "NotFound",
                     "message": "unknown figure %r" % (name,),
                     "figures": sorted(FIGURES)}, 404)
        response_format = query.pop("format", "json")
        if response_format not in ("json", "text"):
            raise ServeError("format must be 'json' or 'text', not %r"
                             % (response_format,))
        allowed, build = FIGURES[name]
        unknown = sorted(set(query) - set(allowed))
        if unknown:
            raise ServeError("unknown /figure/%s parameter(s) %s (have %s)"
                             % (name, ", ".join(unknown),
                                ", ".join(allowed)))
        started = time.perf_counter()
        # Optimistic lock-free pass: a probe view of the artifact cache
        # serves a warm hit immediately (never touching the executor) and
        # aborts the build on a miss, so warm figures stay interactive
        # while a slow cold build holds the figure lock.
        cache_state = "hit"
        result = None
        if self.artifacts is not None:
            try:
                result = build(query, None, _ArtifactProbe(self.artifacts))
            except _ArtifactMiss:
                result = None
        if result is None:
            cache_state = "miss"
            with self._figure_lock:
                result = build(query, self.executor, self.artifacts)
        _FIGURE_CACHE.inc(state=cache_state)
        payload = {"figure": name,
                   "cache": cache_state,
                   "elapsed_seconds":
                       round(time.perf_counter() - started, 6)}
        if response_format == "text":
            payload["text"] = result.format()
        else:
            payload["data"] = result.to_dict()
            payload["provenance"] = {
                "version": __version__,
                "cache_version": CACHE_VERSION,
                "backend": self.executor.backend.name,
                "query": dict(query),
            }
        return (payload, 200)

    def log(self, message):
        if not self.quiet:
            print("repro serve: %s" % message, flush=True)

    def close(self, drain=True, timeout=None):
        """Drain the scheduler (or abandon the queue with
        ``drain=False``), then release every executor's
        pool/connections. Idempotent."""
        self.scheduler.close(drain=drain, timeout=timeout)
        self.executor.close()
        for executor in self.miss_executors:
            executor.close()


# -- the HTTP front-end -------------------------------------------------------

class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service = None

    def request_shutdown(self):
        """Stop ``serve_forever`` from a handler thread without
        deadlocking (``shutdown()`` blocks until the serve loop exits, so
        it must run off-thread)."""
        threading.Thread(target=self.shutdown, daemon=True).start()


class _ServeHandler(BaseHTTPRequestHandler):
    """Thin routing/serialization shell around :class:`QueryService`."""

    server_version = "repro-serve/" + __version__
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):       # noqa: A002 (stdlib name)
        service = self.server.service
        if service is not None and not service.quiet:
            service.log("%s %s" % (self.address_string(), format % args))

    def _send_bytes(self, code, blob, content_type, extra_headers=()):
        if code >= 400:
            # An errored request may have an unread body; never reuse
            # the connection in that state.
            self.close_connection = True
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            for name, value in extra_headers:
                self.send_header(name, value)
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(blob)
        except OSError:
            pass                                # client hung up mid-reply

    def _send(self, code, payload, extra_headers=()):
        blob = (json.dumps(payload, indent=2, sort_keys=True) + "\n") \
            .encode("utf-8")
        self._send_bytes(code, blob, "application/json", extra_headers)

    def _read_json_body(self):
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise ServeError("bad Content-Length header")
        if length <= 0:
            raise ServeError("POST needs a JSON body (Content-Length > 0)")
        if length > MAX_BODY:
            raise ServeError("body too large (%d bytes; limit %d)"
                             % (length, MAX_BODY))
        blob = self.rfile.read(length)
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError("body is not valid JSON: %s" % exc)

    def _api_key(self):
        """The presented API key: ``X-Repro-Api-Key``, falling back to
        ``Authorization: Bearer <key>``."""
        key = self.headers.get("X-Repro-Api-Key")
        if key:
            return key
        authorization = self.headers.get("Authorization") or ""
        scheme, _, value = authorization.partition(" ")
        if scheme.lower() == "bearer":
            return value.strip()
        return None

    def _request_context(self):
        """Per-request scheduling context for the service layer: the
        ``X-Repro-*`` headers (priority class, deadline budget, request
        id) plus the client identity — the raw material for
        :class:`~repro.harness.task.Task` provenance and the quota
        layer. The identity is the authenticated API key's client name
        when auth is on, else the ``X-Repro-Client`` header, else the
        remote address."""
        identity = getattr(self, "_identity", None)
        if identity is not None:
            client = identity.client
        else:
            client = (self.headers.get("X-Repro-Client")
                      or self.client_address[0])
        return {"client": client,
                "request_id": self.headers.get("X-Repro-Request-Id"),
                "priority": self.headers.get("X-Repro-Priority"),
                "deadline_ms": self.headers.get("X-Repro-Deadline-Ms")}

    def _loopback_only(self):
        host = self.client_address[0]
        if host not in ("127.0.0.1", "::1", "::ffff:127.0.0.1"):
            return ({"error": "Forbidden",
                     "message": "POST /shutdown is loopback-only "
                                "(got %s)" % host}, 403)
        return None

    def _shutdown(self):
        """``POST /shutdown``: acknowledge, then stop the serve loop —
        the owner's ``close()`` drains the miss queue before the
        process exits (``docs/serving.md`` runbook). The actual
        ``shutdown()`` fires *after* the response is written (see
        ``_route``), so the acknowledging client always gets its 200
        before the listener dies."""
        service = self.server.service
        forbidden = self._loopback_only()
        if forbidden is not None:
            return forbidden
        service.log("shutdown requested by %s" % (self.client_address,))
        return ({"status": "draining",
                 "queue": service.scheduler.stats_dict()}, 200)

    def _route(self, method):
        service = self.server.service
        service.count_request()
        route = None
        shutdown_after_send = False
        extra_headers = ()
        started = time.perf_counter()
        self._identity = None
        try:
            split = urlsplit(self.path)
            path = split.path.rstrip("/") or "/"
            query = {key: values[-1] for key, values in
                     parse_qs(split.query, keep_blank_values=True).items()}
            # Auth gate: with --api-keys-file set, every route except
            # the open ones (liveness, metrics scrape) needs a valid
            # key; the key's client name becomes the request identity.
            if service.auth is not None and path not in OPEN_ROUTES:
                self._identity = service.auth.authenticate(self._api_key())
            if path == "/healthz":
                route = "/healthz"
                payload, code = self._only("GET", method, service.health)
            elif path == "/cache/info":
                route = "/cache/info"
                payload, code = self._only("GET", method, service.cache_info)
            elif path == "/metrics":
                route = "/metrics"
                payload, code = self._only("GET", method, service.metrics)
                if code == 200:
                    # Text exposition, not JSON: bypass _send.
                    _REQUESTS.inc(route=route, code=str(code))
                    _REQUEST_SECONDS.observe(
                        time.perf_counter() - started, route=route)
                    self._send_bytes(code, payload.encode("utf-8"),
                                     METRICS_CONTENT_TYPE)
                    return
            elif path == "/point":
                route = "/point"
                payload, code = self._only("GET", method,
                                           lambda: service.lookup_point(
                                               query,
                                               self._request_context()))
            elif path == "/sweep":
                route = "/sweep"
                payload, code = self._only(
                    "POST", method,
                    lambda: service.run_sweep(self._read_json_body(),
                                              self._request_context()))
            elif path.startswith("/figure/"):
                route = "/figure"
                name = path[len("/figure/"):]
                payload, code = self._only("GET", method,
                                           lambda: service.figure(name,
                                                                  query))
            elif path == "/shutdown":
                route = "/shutdown"
                payload, code = self._only("POST", method, self._shutdown)
                shutdown_after_send = code == 200
            else:
                payload, code = ({"error": "NotFound",
                                  "message": "no route for %r" % path,
                                  "endpoints": list(ENDPOINTS)}, 404)
        except ServeError as exc:
            payload, code = ({"error": "ServeError",
                              "message": str(exc)}, 400)
        except AuthError as exc:
            payload, code = ({"error": "AuthError",
                              "message": str(exc)}, 401)
        except QuotaExceededError as exc:
            # The *service* had room; this client is over its
            # allocation. Retry-After tells it when the bucket refills.
            payload, code = ({"error": "QuotaExceededError",
                              "message": str(exc),
                              "retry": True,
                              "reason": exc.reason}, 429)
            extra_headers = (
                ("Retry-After",
                 str(max(1, math.ceil(exc.retry_after)))),)
        except QueueError as exc:
            # Well-formed but unservable right now: back off and retry.
            payload, code = ({"error": type(exc).__name__,
                              "message": str(exc),
                              "retry": True}, 503)
        except ReproError as exc:
            payload, code = ({"error": type(exc).__name__,
                              "message": str(exc)}, 500)
        except Exception as exc:                 # keep the server alive
            payload, code = ({"error": type(exc).__name__,
                              "message": str(exc)}, 500)
        _REQUESTS.inc(route=route or "<other>", code=str(code))
        _REQUEST_SECONDS.observe(time.perf_counter() - started,
                                 route=route or "<other>")
        if shutdown_after_send:
            # The acknowledgement must reach the client before the
            # listener stops; never reuse this connection afterwards.
            self.close_connection = True
        self._send(code, payload, extra_headers)
        if shutdown_after_send:
            self.server.request_shutdown()

    def _only(self, allowed, method, call):
        if method != allowed:
            return ({"error": "MethodNotAllowed",
                     "message": "use %s (see docs/serving.md)"
                                % allowed}, 405)
        return call()

    def do_GET(self):
        self._route("GET")

    def do_POST(self):
        self._route("POST")


class ServeServer:
    """A ``repro serve`` daemon: :class:`QueryService` behind a threaded
    stdlib HTTP server.

    Binds ``host:port`` (port 0 picks an ephemeral port — read it back
    from :attr:`address`). Service configuration (``cache_dir``,
    ``jobs``, ``backend``, ``workers``, ``worker_timeout``,
    ``miss_workers``, ``max_pending``) is forwarded to
    :class:`QueryService` unless a ready-made *service* is given.
    Mirrors :class:`~repro.harness.remote.WorkerServer`'s lifecycle:
    :meth:`serve_forever` for the CLI, :meth:`start` for tests and
    embedding, :meth:`close` to drain the miss queue and release the
    socket and executors. ``POST /shutdown`` (loopback-only) stops
    :meth:`serve_forever` so the owner's ``close()`` runs the same
    graceful drain SIGTERM does.
    """

    def __init__(self, host="127.0.0.1", port=0, service=None, quiet=True,
                 **service_kwargs):
        if service is None:
            service = QueryService(quiet=quiet, **service_kwargs)
        self.service = service
        self._server = _ServeHTTPServer((host, port), _ServeHandler)
        self._server.service = service
        self._thread = None

    @property
    def address(self):
        """The bound ``(host, port)`` pair."""
        return self._server.server_address[:2]

    def serve_forever(self):
        """Serve until :meth:`close`, ``POST /shutdown``, or Ctrl-C."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self):
        """Serve on a daemon thread (for tests/embedding); returns
        :attr:`address`."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self.address

    def close(self, drain=True, timeout=None):
        """Stop accepting connections, drain in-flight misses (unless
        ``drain=False``), and release the socket and the executors."""
        if self._thread is not None and self._thread.is_alive():
            self._server.shutdown()
            self._thread.join(timeout=5.0)
        self._server.server_close()
        self.service.close(drain=drain, timeout=timeout)
