"""Open-loop serving load benchmark: the ``BENCH_load.json`` artifact.

Drives a live in-process ``repro serve`` (quotas enabled) with an
**open-loop** Poisson workload: each synthetic client fires requests at
its offered RPS on exponential inter-arrival gaps, regardless of how
fast the server answers — the arrival process never slows down to match
service capacity, which is what makes overload behaviour (429/503)
observable at all. A closed loop (request, wait, repeat) can never
offer more load than the server absorbs.

Synthetic tenants (distinct ``X-Repro-Client`` identities with distinct
quotas and priorities):

* ``steady`` — a well-behaved interactive tenant: generous quota,
  normal priority, traffic drawn from a prewarmed **hot** pool plus a
  small **warm** pool (cold on first touch, cached after);
* ``greedy`` — a tenant offering far more *cold* (simulating) traffic
  than its tight token bucket admits: low priority, drawn from a small
  cold pool (so concurrent arrivals also exercise dedup joins).

The artifact records p50/p95/p99 per traffic class per client, achieved
vs offered RPS, 429/503/504 counts, the dedup ratio, and a set of
**conservation self-checks** — every issued request is accounted for by
exactly one status; after drain the scheduler's ``submitted`` equals
``completed`` (nothing used deadlines, so ``shed`` must be 0); the
quota layer's in-flight gauges return to zero (no leaked leases) — plus
the **quota-isolation proof**: the greedy tenant collects 429s (with a
``Retry-After`` header) while the steady tenant sees zero 429s and a
warm p50 within a generous multiple of its unloaded baseline.

Standalone on purpose (stdlib only), same contract as
``bench_serve.py``: CI's ``bench-trend`` job runs it at a small pinned
RPS and uploads the artifact per commit.

    PYTHONPATH=src python benchmarks/bench_load.py --out BENCH_load.json

Exit status is non-zero when any self-check fails — a lying benchmark
is worse than none.
"""

import argparse
import json
import random
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

#: Pinned workload knobs — changing them breaks trend comparability
#: (bump ``schema`` if you must). Scale 0.02 keeps one cold simulation
#: well under a second so CI finishes in seconds, not minutes.
SCALE = 0.02
HOT_THRESHOLDS = (16, 32, 64)           # prewarmed before the run
WARM_THRESHOLDS = (128, 256)            # cold on first touch, then cached
COLD_THRESHOLDS = (300, 301, 302, 303, 304, 305)    # greedy's pool
BASELINE_SAMPLES = 15

#: The steady tenant must stay within this factor of its unloaded warm
#: p50 while the greedy tenant is being throttled next to it. Generous
#: on purpose: shared CI runners jitter, and the claim under test is
#: "not starved", not "zero interference".
ISOLATION_FACTOR = 20.0
ISOLATION_FLOOR_SECONDS = 0.25


def point_path(threshold):
    return ("/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
            "&threshold=%d&scale=%s" % (threshold, SCALE))


def request(address, path, headers=None, timeout=300):
    """(status, headers, payload) treating HTTP errors as data — the
    whole point of this benchmark is counting the 4xx/5xx."""
    url = "http://%s:%d%s" % (*address, path)
    try:
        with urllib.request.urlopen(
                urllib.request.Request(url, headers=headers or {}),
                timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


class ClientLoad:
    """One synthetic tenant: an arrival thread firing each request on
    its own thread (open loop), recording (class, status, latency,
    Retry-After presence) per request."""

    def __init__(self, name, address, rps, duration, choose, headers,
                 seed):
        self.name = name
        self.address = address
        self.rps = float(rps)
        self.duration = float(duration)
        self.choose = choose            # rng -> (traffic_class, path)
        self.headers = dict(headers)
        self.rng = random.Random(seed)
        self.records = []
        self._lock = threading.Lock()
        self._threads = []

    def _fire(self, traffic_class, path):
        started = time.perf_counter()
        status, headers, _payload = request(self.address, path,
                                            headers=self.headers)
        elapsed = time.perf_counter() - started
        with self._lock:
            self.records.append(
                {"class": traffic_class, "status": status,
                 "seconds": elapsed,
                 "retry_after": headers.get("Retry-After")})

    def run(self):
        """Open loop: sleep exponential gaps, fire-and-forget. Returns
        once the offered window closes; join() collects stragglers."""
        deadline = time.monotonic() + self.duration
        while True:
            gap = self.rng.expovariate(self.rps)
            now = time.monotonic()
            if now + gap >= deadline:
                break
            time.sleep(gap)
            traffic_class, path = self.choose(self.rng)
            thread = threading.Thread(target=self._fire,
                                      args=(traffic_class, path),
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def join(self, timeout=120):
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))

    # -- reductions -----------------------------------------------------------

    def issued(self):
        return len(self._threads)

    def by_status(self):
        counts = {}
        for record in self.records:
            key = str(record["status"])
            counts[key] = counts.get(key, 0) + 1
        return counts

    def latency_percentiles(self):
        """{traffic_class: {p50, p95, p99, samples}} over 200s only —
        a 429 answers in microseconds and would flatter the tail."""
        out = {}
        for traffic_class in sorted({r["class"] for r in self.records}):
            samples = sorted(r["seconds"] for r in self.records
                             if r["class"] == traffic_class
                             and r["status"] == 200)
            if not samples:
                out[traffic_class] = {"samples": 0}
                continue
            out[traffic_class] = {
                "p50": round(percentile(samples, 50), 6),
                "p95": round(percentile(samples, 95), 6),
                "p99": round(percentile(samples, 99), 6),
                "samples": len(samples)}
        return out


def percentile(sorted_samples, pct):
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (pct / 100.0) * (len(sorted_samples) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_samples) - 1)
    return sorted_samples[low] + (sorted_samples[high] - sorted_samples[low]) \
        * (rank - low)


def check(condition, message, failures):
    if not condition:
        failures.append(message)
        print("FAIL: %s" % message, file=sys.stderr)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_load.json",
                        help="artifact path (default BENCH_load.json)")
    parser.add_argument("--duration", type=float, default=6.0,
                        metavar="SECONDS",
                        help="offered-load window per client (default 6)")
    parser.add_argument("--steady-rps", type=float, default=8.0,
                        help="steady tenant offered RPS (default 8)")
    parser.add_argument("--greedy-rps", type=float, default=10.0,
                        help="greedy tenant offered RPS (default 10; its "
                             "quota admits ~1/s, so most of this 429s)")
    parser.add_argument("--miss-workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=20220402,
                        help="arrival-process RNG seed (default pinned)")
    args = parser.parse_args(argv)

    from repro import __version__
    from repro.harness.cache import CACHE_VERSION
    from repro.harness.quota import ClientQuota, QuotaManager
    from repro.harness.serve import ServeServer

    failures = []
    quota = QuotaManager(
        default=ClientQuota(rate=2.0, burst=4),
        overrides={"steady": ClientQuota(rate=50.0, burst=100),
                   "greedy": ClientQuota(rate=1.0, burst=2,
                                         max_inflight=2)},
        known=("steady", "greedy"))
    with tempfile.TemporaryDirectory(prefix="bench-load-") as cache_dir:
        server = ServeServer(cache_dir=cache_dir,
                             miss_workers=args.miss_workers,
                             quota=quota)
        address = server.start()
        try:
            # Prewarm the hot pool (steady's bread and butter) as an
            # unthrottled anonymous client, then measure the steady
            # tenant's *unloaded* warm p50 as the isolation baseline.
            for threshold in HOT_THRESHOLDS:
                status, _, _ = request(address, point_path(threshold))
                check(status == 200,
                      "prewarm of threshold=%d got %d" % (threshold, status),
                      failures)
            baseline = []
            for index in range(BASELINE_SAMPLES):
                threshold = HOT_THRESHOLDS[index % len(HOT_THRESHOLDS)]
                started = time.perf_counter()
                status, _, payload = request(
                    address, point_path(threshold),
                    headers={"X-Repro-Client": "steady"})
                baseline.append(time.perf_counter() - started)
                check(status == 200 and payload.get("cache") == "hit",
                      "baseline probe was not a warm hit", failures)
            baseline_p50 = statistics.median(baseline)

            def choose_steady(rng):
                if rng.random() < 0.8:
                    threshold = rng.choice(HOT_THRESHOLDS)
                    return "hot", point_path(threshold)
                return "warm", point_path(rng.choice(WARM_THRESHOLDS))

            def choose_greedy(rng):
                return "cold", point_path(rng.choice(COLD_THRESHOLDS))

            clients = [
                ClientLoad("steady", address, args.steady_rps,
                           args.duration, choose_steady,
                           {"X-Repro-Client": "steady"}, args.seed),
                ClientLoad("greedy", address, args.greedy_rps,
                           args.duration, choose_greedy,
                           {"X-Repro-Client": "greedy",
                            "X-Repro-Priority": "low"}, args.seed + 1),
            ]
            info_before = request(address, "/cache/info")[2]
            wall_started = time.perf_counter()
            arrival_threads = [threading.Thread(target=client.run)
                               for client in clients]
            for thread in arrival_threads:
                thread.start()
            for thread in arrival_threads:
                thread.join()
            for client in clients:
                client.join()
            wall_seconds = time.perf_counter() - wall_started
            info_after = request(address, "/cache/info")[2]
        finally:
            server.close(drain=True)

    # -- conservation self-checks ---------------------------------------------
    # (1) Client-side: every issued request resolved to exactly one
    # recorded status — the open loop leaks nothing.
    for client in clients:
        check(client.issued() == len(client.records)
              == sum(client.by_status().values()),
              "%s: issued %d != recorded %d"
              % (client.name, client.issued(), len(client.records)),
              failures)
    # (2) Scheduler-side, after drain: everything submitted completed.
    # No request carried a deadline, so nothing may have been shed;
    # rejected (429/503) work never reaches the queue's counters.
    queue = info_after["queue"]
    check(queue["submitted"] == queue["completed"],
          "queue conservation: submitted %d != completed %d"
          % (queue["submitted"], queue["completed"]), failures)
    check(queue["shed"] == 0 and queue["depth"] == 0
          and queue["inflight"] == 0,
          "queue not clean after drain: %r" % (queue,), failures)
    # (3) Quota-side: every lease released — in-flight gauges at zero.
    quota_stats = info_after.get("quota") or {}
    for name, entry in (quota_stats.get("clients") or {}).items():
        check(entry["inflight"] == 0,
              "quota leak: client %s still holds %d in-flight"
              % (name, entry["inflight"]), failures)

    # -- quota-isolation proof --------------------------------------------
    steady, greedy = clients
    steady_statuses = steady.by_status()
    greedy_statuses = greedy.by_status()
    check(steady_statuses.get("429", 0) == 0,
          "steady tenant was throttled: %r" % (steady_statuses,), failures)
    check(greedy_statuses.get("429", 0) >= 1,
          "greedy tenant was never throttled: %r" % (greedy_statuses,),
          failures)
    throttled = [r for r in greedy.records if r["status"] == 429]
    check(all(r["retry_after"] is not None for r in throttled),
          "a 429 arrived without a Retry-After header", failures)
    steady_latency = steady.latency_percentiles()
    hot_p50 = steady_latency.get("hot", {}).get("p50")
    check(hot_p50 is not None and hot_p50 <= max(
              ISOLATION_FACTOR * baseline_p50, ISOLATION_FLOOR_SECONDS),
          "steady warm p50 %r vs unloaded baseline %.6f: tenant starved"
          % (hot_p50, baseline_p50), failures)

    submitted_delta = queue["submitted"] \
        - info_before["queue"]["submitted"]
    joins_delta = queue["dedup_joins"] - info_before["queue"]["dedup_joins"]
    dedup_ratio = round(joins_delta / submitted_delta, 4) \
        if submitted_delta else 0.0

    artifact = {
        "schema": 1,
        "versions": {"code": __version__, "cache": CACHE_VERSION},
        "workload": {
            "duration_seconds": args.duration,
            "seed": args.seed,
            "scale": SCALE,
            "miss_workers": args.miss_workers,
            "clients": {
                client.name: {
                    "offered_rps": client.rps,
                    "quota": quota.quota_for(client.name).to_dict()}
                for client in clients}},
        "wall_seconds": round(wall_seconds, 3),
        "clients": {
            client.name: {
                "issued": client.issued(),
                "offered_rps": client.rps,
                "achieved_rps": round(client.issued()
                                      / max(wall_seconds, 1e-9), 3),
                "by_status": client.by_status(),
                "latency_seconds": client.latency_percentiles()}
            for client in clients},
        "errors": {
            "429": sum(c.by_status().get("429", 0) for c in clients),
            "503": sum(c.by_status().get("503", 0) for c in clients),
            "504": sum(c.by_status().get("504", 0) for c in clients)},
        "dedup": {"submitted": submitted_delta,
                  "dedup_joins": joins_delta,
                  "ratio": dedup_ratio},
        "isolation": {
            "baseline_warm_p50": round(baseline_p50, 6),
            "loaded_hot_p50": hot_p50,
            "factor_allowed": ISOLATION_FACTOR,
            "steady_429": steady_statuses.get("429", 0),
            "greedy_429": greedy_statuses.get("429", 0)},
        "conservation": {
            "issued_equals_recorded": all(
                c.issued() == len(c.records) for c in clients),
            "submitted_equals_completed":
                queue["submitted"] == queue["completed"],
            "quota_inflight_zero": not failures or all(
                "quota leak" not in f for f in failures)},
        "counters": {"queue": queue,
                     "quota": quota_stats,
                     "executor": info_after["executor"]},
        "failures": failures,
    }
    with open(args.out, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.out)
    for client in clients:
        print("%-7s offered %.1f rps, achieved %.1f rps, statuses %s"
              % (client.name, client.rps,
                 artifact["clients"][client.name]["achieved_rps"],
                 artifact["clients"][client.name]["by_status"]))
    print("dedup ratio %.3f (%d joins / %d submitted)   429=%d 503=%d "
          "504=%d" % (dedup_ratio, joins_delta, submitted_delta,
                      artifact["errors"]["429"], artifact["errors"]["503"],
                      artifact["errors"]["504"]))
    print("isolation: steady hot p50 %s vs baseline %.4fs (greedy 429s: %d)"
          % (hot_p50, baseline_p50, greedy_statuses.get("429", 0)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
