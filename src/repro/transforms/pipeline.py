"""The compiler driver: compose thresholding, coarsening, and aggregation.

Section VI: the three passes are independent source-to-source transformations
(any combination yields correct code) but the framework applies them in the
fixed order **thresholding → coarsening → aggregation** because

* thresholding before coarsening: coarsening manipulates the grid dimension,
  obscuring the Fig. 4 thread-count pattern;
* thresholding before aggregation: small grids are hard to re-isolate once
  folded into an aggregated grid;
* coarsening before aggregation: the disaggregation logic must sit *outside*
  the coarsening loop so it is amortized over multiple original blocks.
"""

from dataclasses import dataclass, replace
from typing import Optional

from ..analysis import NameAllocator
from ..minicuda import parse
from ..minicuda.ast import Program
from .aggregation import DEFAULT_GROUP_BLOCKS, AggregationPass
from .base import ModuleMeta, TransformResult
from .coarsening import DEFAULT_CFACTOR, CoarseningPass
from .thresholding import DEFAULT_THRESHOLD, ThresholdingPass


@dataclass(frozen=True)
class OptConfig:
    """Which optimizations to apply, and their tuning parameters.

    ``None`` disables an optimization. These are the three tunables the
    paper's evaluation sweeps (launch threshold, coarsening factor,
    aggregation granularity; Sec. VII).
    """

    threshold: Optional[int] = None
    coarsen_factor: Optional[int] = None
    aggregate: Optional[str] = None          # granularity name or None
    group_blocks: int = DEFAULT_GROUP_BLOCKS
    agg_threshold: Optional[int] = None

    @property
    def label(self):
        """The paper's naming: CDP, CDP+T, CDP+T+C+A, ..."""
        parts = ["CDP"]
        if self.threshold is not None:
            parts.append("T")
        if self.coarsen_factor is not None:
            parts.append("C")
        if self.aggregate is not None:
            parts.append("A")
        return "+".join(parts)

    def with_params(self, **kwargs):
        return replace(self, **kwargs)

    @classmethod
    def from_label(cls, label, threshold=DEFAULT_THRESHOLD,
                   coarsen_factor=DEFAULT_CFACTOR, aggregate="block",
                   **kwargs):
        """Build a config from a 'CDP+T+C+A'-style label with defaults."""
        parts = set(label.upper().split("+"))
        if "CDP" not in parts:
            raise ValueError("label must start with CDP: %r" % label)
        return cls(
            threshold=threshold if "T" in parts else None,
            coarsen_factor=coarsen_factor if "C" in parts else None,
            aggregate=aggregate if "A" in parts else None,
            **kwargs)


def transform(source_or_program, config, order=("T", "C", "A")):
    """Run the configured passes over CUDA source (or a Program AST).

    Returns a :class:`TransformResult` whose ``program`` is a fresh AST (the
    input is never mutated) and whose ``meta`` carries the macro values and
    aggregation buffer layouts the host runtime needs.
    """
    if isinstance(source_or_program, Program):
        program = source_or_program.clone()
    else:
        program = parse(source_or_program)
    allocator = NameAllocator.for_program(program)
    meta = ModuleMeta()

    passes = {
        "T": (ThresholdingPass(config.threshold)
              if config.threshold is not None else None),
        "C": (CoarseningPass(config.coarsen_factor)
              if config.coarsen_factor is not None else None),
        "A": (AggregationPass(config.aggregate, config.group_blocks,
                              config.agg_threshold)
              if config.aggregate is not None else None),
    }
    for key in order:
        pass_obj = passes[key]
        if pass_obj is not None:
            meta.merge(pass_obj.run(program, allocator))
    return TransformResult(program, meta)
