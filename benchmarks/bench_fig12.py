"""Figure 12 — graph benchmarks on a road graph: low nested parallelism
(Sec. VIII-D)."""

from repro.harness import figure12

from conftest import save


def test_figure12(benchmark, repro_scale, out_dir, sweep_executor):
    fig = benchmark.pedantic(
        figure12,
        kwargs={"scale": repro_scale, "executor": sweep_executor},
        rounds=1, iterations=1)
    text = fig.format()
    save(out_dir, "figure12.txt", text)
    print()
    print(text)

    gm = fig.geomeans()
    # CDP performs substantially worse than No CDP on road graphs...
    assert gm["No CDP"] > 2.0
    # ...the optimizations recover much of the degradation...
    assert gm["CDP+T+C+A"] > 1.5
    # ...but CDP+T cannot fully recover: the mere existence of the launch
    # costs extra instructions (the cdp_code_tax in our cost model).
    assert gm["CDP+T"] <= gm["No CDP"] * 1.05
