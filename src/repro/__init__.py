"""repro — a Python reproduction of "A Compiler Framework for Optimizing
Dynamic Parallelism on GPUs" (Olabi et al., CGO 2022).

The package implements the paper's three source-to-source optimizations —
**thresholding**, **coarsening**, and **multi-block-granularity
aggregation** — over a CUDA-C subset (miniCUDA), plus everything needed to
evaluate them without a GPU: an execution engine that transpiles kernels to
Python and runs them on real data, a timing simulator with a dynamic-launch
congestion model, the paper's seven benchmarks, and a harness that
regenerates every table and figure of the evaluation.

Quick start::

    from repro import OptConfig, transform

    result = transform(cuda_source, OptConfig.from_label("CDP+T+C+A"))
    print(result.source)               # the transformed .cu text

    from repro.benchmarks import get_benchmark
    bench = get_benchmark("BFS")
    data = bench.build_dataset("KRON", scale=0.25)
    outputs, timing, device = bench.run(data, "cdp", config)
"""

from .engine import Dim3, Module, Ptr
from .errors import (AnalysisError, CodegenError, LexError, NotTransformable,
                     ParseError, ReproError, RuntimeLaunchError,
                     SimulationError, TransformError)
from .minicuda import parse, print_source
from .runtime import Device, blocks
from .sim import (Breakdown, CostModel, DeviceConfig, Trace, breakdown,
                  simulate)
from .transforms import (AggregationPass, CoarseningPass, OptConfig,
                         ThresholdingPass, TransformResult, transform)

__version__ = "1.0.0"

__all__ = [
    "Dim3", "Module", "Ptr",
    "AnalysisError", "CodegenError", "LexError", "NotTransformable",
    "ParseError", "ReproError", "RuntimeLaunchError", "SimulationError",
    "TransformError",
    "parse", "print_source",
    "Device", "blocks",
    "Breakdown", "CostModel", "DeviceConfig", "Trace", "breakdown",
    "simulate",
    "AggregationPass", "CoarseningPass", "OptConfig", "ThresholdingPass",
    "TransformResult", "transform",
    "__version__",
]
