"""AST → Python transpiler.

Every miniCUDA function becomes a Python function executed once per simulated
thread. The generated code

* accumulates a per-thread cycle count ``_c`` using the
  :class:`~repro.sim.costmodel.CostModel` weights (constants are folded at
  generation time);
* attributes the cycles of transform-inserted statements to their breakdown
  region (``_rt.reg_agg`` / ``_rt.reg_disagg``, for Fig. 10);
* reports dynamic launches to the execution context
  (``_c = _rt.launch(...)``), which records the launching block and the
  thread-cycle offset of the launch;
* compiles kernels that use ``__syncthreads()`` into *generators* that yield
  their cycle count at each barrier so the block executor can rotate threads
  and re-synchronize their clocks.

Calling conventions:

* kernel: ``k_<name>(_rt, _bix, _tix, _gdim, _bdim, *params) -> cycles``
  (generators return cycles via ``StopIteration.value``);
* device function: ``f_<name>(_rt, _bix, _tix, _gdim, _bdim, *params)
  -> value`` with its cycles added to ``_rt.tc`` (the per-thread spill
  counter reset by the executor), so device calls compose in expressions.
"""

from ..errors import CodegenError
from ..minicuda import ast
from ..minicuda.ast import region_of
from ..minicuda.visitor import find_all
from ..sim.costmodel import CostModel, call_cost

_BARRIER_CALLS = ("__syncthreads",)

_CMP_OPS = {"==": "==", "!=": "!=", "<": "<", ">": ">", "<=": "<=",
            ">=": ">="}
_ARITH_OPS = {"+": "+", "-": "-", "*": "*", "<<": "<<", ">>": ">>",
              "&": "&", "|": "|", "^": "^"}

_MATH_FUNCS = {
    "ceil": "_m.ceil", "ceilf": "_m.ceil",
    "floor": "_m.floor", "floorf": "_m.floor",
    "sqrt": "_m.sqrt", "sqrtf": "_m.sqrt",
    "exp": "_m.exp", "expf": "_m.exp",
    "log": "_m.log", "logf": "_m.log",
    "pow": "_m.pow", "powf": "_m.pow",
    "tanh": "_m.tanh", "tanhf": "_m.tanh",
    "fabs": "abs", "fabsf": "abs", "abs": "abs",
    "min": "min", "max": "max", "fminf": "min", "fmaxf": "max",
}

_ATOMIC_METHODS = {
    "atomicAdd": "atomic_add", "atomicSub": "atomic_sub",
    "atomicMax": "atomic_max", "atomicMin": "atomic_min",
    "atomicCAS": "atomic_cas", "atomicExch": "atomic_exch",
    "atomicOr": "atomic_or", "atomicAnd": "atomic_and",
}

_RESERVED_MEMBERS = {
    ("threadIdx", "x"): "_tix", ("threadIdx", "y"): "_tiy",
    ("threadIdx", "z"): "_tiz",
    ("blockIdx", "x"): "_bix", ("blockIdx", "y"): "_biy",
    ("blockIdx", "z"): "_biz",
    ("blockDim", "x"): "_bdim.x", ("blockDim", "y"): "_bdim.y",
    ("blockDim", "z"): "_bdim.z",
    ("gridDim", "x"): "_gdim.x", ("gridDim", "y"): "_gdim.y",
    ("gridDim", "z"): "_gdim.z",
}


def _mangle(name):
    return "v_" + name


class FunctionCodegen:
    """Generate Python source for one miniCUDA function."""

    def __init__(self, func, program_info, cost_model, macros):
        self.func = func
        self.info = program_info      # ProgramInfo: names of funcs/globals
        self.cm = cost_model
        self.macros = macros
        self.lines = []
        self.types = {p.name: p.type for p in func.params}
        for decl_stmt in find_all(func, ast.DeclStmt):
            for decl in decl_stmt.decls:
                self.types[decl.name] = decl.type
        self.has_barrier = any(
            isinstance(c.func, ast.Ident) and c.func.name in _BARRIER_CALLS
            for c in find_all(func, ast.Call))
        if self.has_barrier and func.is_device:
            raise CodegenError(
                "device function %r uses __syncthreads(); barriers are only "
                "supported directly inside kernels" % func.name)

    # -- entry point --------------------------------------------------------

    @property
    def _ctx_args(self):
        """Thread-context parameters threaded through every call.

        Programs that never read threadIdx/blockIdx .y/.z use the compact
        1-D context (faster: millions of simulated thread calls); programs
        with multi-dimensional kernels get the full 3-D context.
        """
        if self.info.multi_dim:
            return "_bix, _biy, _biz, _tix, _tiy, _tiz, _gdim, _bdim"
        return "_bix, _tix, _gdim, _bdim"

    def generate(self):
        func = self.func
        prefix = "k_" if func.is_kernel else "f_"
        params = ", ".join(_mangle(p.name) for p in func.params)
        header = "def %s%s(_rt, %s%s):" % (
            prefix, func.name, self._ctx_args,
            (", " + params) if params else "")
        self._emit(0, header)
        # Sec. VIII-D: the mere presence of a dynamic launch in a kernel
        # makes the compiler emit (and the hardware execute) a large number
        # of extra instructions even when the launch never happens.
        contains_launch = bool(find_all(func, ast.Launch))
        if contains_launch and func.is_kernel:
            self._emit(1, "_c = %d" % self.cm.cdp_code_tax)
        else:
            self._emit(1, "_c = 0")
        self._gen_compound(func.body, 1)
        if func.is_kernel:
            self._emit(1, "return _c")
        else:
            self._emit(1, "_rt.tc += _c")
            self._emit(1, "return None")
        return "\n".join(self.lines)

    def _emit(self, indent, text):
        self.lines.append("    " * indent + text)

    # -- cost helpers ------------------------------------------------------

    def _weight(self, expr):
        if expr is None:
            return 0
        total = 0
        for node in expr.walk():
            if isinstance(node, (ast.Binary, ast.Assign, ast.Ternary,
                                 ast.Cast)):
                total += self.cm.alu
            elif isinstance(node, ast.Unary) and node.op != "&":
                total += self.cm.alu
            elif isinstance(node, ast.Index):
                total += self.cm.mem
            elif isinstance(node, ast.Call):
                total += self._call_weight(node)
        return total

    def _call_weight(self, call):
        if isinstance(call.func, ast.Ident):
            name = call.func.name
            if name in _BARRIER_CALLS:
                return 0  # charged at the yield site
            if name in self.info.functions:
                return self.cm.call
            return call_cost(self.cm, name)
        return self.cm.call

    def _emit_cost(self, indent, weight, region):
        if weight <= 0:
            return
        self._emit(indent, "_c += %d" % weight)
        if region in ("agg", "disagg"):
            self._emit(indent, "_rt.reg_%s += %d" % (region, weight))

    # -- statements -----------------------------------------------------------

    def _gen_compound(self, compound, indent):
        if not compound.stmts:
            self._emit(indent, "pass")
            return
        # Group consecutive simple statements to merge their cost updates.
        pending = []

        def flush():
            if not pending:
                return
            weight = sum(self._stmt_weight(s) for s in pending)
            self._emit_cost(indent, weight, region_of(pending[0]))
            for simple in pending:
                self._gen_simple(simple, indent)
            pending.clear()

        prev_region = None
        for stmt in compound.stmts:
            if self._is_simple(stmt):
                if pending and region_of(stmt) != prev_region:
                    flush()
                pending.append(stmt)
                prev_region = region_of(stmt)
            else:
                flush()
                self._gen_stmt(stmt, indent)
        flush()

    def _is_simple(self, stmt):
        """Statements whose cost can be merged and emitted inline."""
        if isinstance(stmt, ast.DeclStmt):
            return True
        if isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, ast.Launch):
                return False
            if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident)
                    and expr.func.name in _BARRIER_CALLS):
                return False
            return True
        return False

    def _stmt_weight(self, stmt):
        if isinstance(stmt, ast.DeclStmt):
            return sum(self._weight(d.init) for d in stmt.decls
                       if d.init is not None)
        return self._weight(stmt.expr)

    def _gen_stmt(self, stmt, indent):
        region = region_of(stmt)
        if isinstance(stmt, ast.Compound):
            self._gen_compound(stmt, indent)
        elif isinstance(stmt, ast.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, ast.Launch):
                self._gen_launch(expr, indent)
            elif (isinstance(expr, ast.Call)
                  and isinstance(expr.func, ast.Ident)
                  and expr.func.name in _BARRIER_CALLS):
                self._gen_barrier(indent, region)
            else:
                self._emit_cost(indent, self._weight(expr), region)
                self._gen_simple(stmt, indent)
        elif isinstance(stmt, ast.DeclStmt):
            self._emit_cost(indent, self._stmt_weight(stmt), region)
            self._gen_simple(stmt, indent)
        elif isinstance(stmt, ast.If):
            self._emit_cost(indent, self._weight(stmt.cond), region)
            self._emit(indent, "if %s:" % self._cond(stmt.cond))
            self._gen_nested(stmt.then, indent + 1)
            if stmt.orelse is not None:
                self._emit(indent, "else:")
                self._gen_nested(stmt.orelse, indent + 1)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt.cond, stmt.body, indent, region)
        elif isinstance(stmt, ast.DoWhile):
            self._emit(indent, "while True:")
            self._gen_nested(stmt.body, indent + 1)
            self._emit_cost(indent + 1, self._weight(stmt.cond), region)
            self._emit(indent + 1, "if not (%s):" % self._cond(stmt.cond))
            self._emit(indent + 2, "break")
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._gen_stmt(stmt.init, indent)
            self._gen_while(stmt.cond, stmt.body, indent, region,
                            step=stmt.step)
        elif isinstance(stmt, ast.Return):
            if self.func.is_kernel:
                if stmt.value is not None:
                    raise CodegenError("kernel returning a value")
                self._emit(indent, "return _c")
            else:
                self._emit(indent, "_rt.tc += _c")
                value = ("None" if stmt.value is None
                         else self._expr(stmt.value))
                self._emit(indent, "return %s" % value)
        elif isinstance(stmt, ast.Break):
            self._emit(indent, "break")
        elif isinstance(stmt, ast.Continue):
            self._emit(indent, "continue")
        else:
            raise CodegenError(
                "cannot generate statement %r" % type(stmt).__name__)

    def _gen_nested(self, stmt, indent):
        if isinstance(stmt, ast.Compound):
            self._gen_compound(stmt, indent)
        else:
            self._gen_stmt(stmt, indent)

    def _gen_while(self, cond, body, indent, region, step=None):
        self._emit(indent, "while True:")
        if cond is not None:
            self._emit_cost(indent + 1, self._weight(cond), region)
            self._emit(indent + 1, "if not (%s):" % self._cond(cond))
            self._emit(indent + 2, "break")
        self._gen_nested(body, indent + 1)
        if step is not None:
            self._emit_cost(indent + 1, self._weight(step), region)
            self._gen_expr_effect(step, indent + 1)

    def _gen_barrier(self, indent, region):
        if not self.has_barrier:
            raise CodegenError("internal: barrier in non-barrier kernel")
        self._emit_cost(indent, self.cm.sync, region)
        self._emit(indent, "_c = yield _c")

    def _gen_launch(self, launch, indent):
        if launch.kernel not in self.info.kernels:
            raise CodegenError("launch of unknown kernel %r" % launch.kernel)
        args = "".join(self._expr(a) + ", " for a in launch.args)
        self._emit(indent, "_c = _rt.launch(%r, _D3.of(%s), _D3.of(%s), "
                           "(%s), _c)" % (
                               launch.kernel, self._expr(launch.grid),
                               self._expr(launch.block), args))

    def _gen_simple(self, stmt, indent):
        """Emit a DeclStmt or effect-only ExprStmt (cost already emitted)."""
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.array_size is not None:
                    self._gen_array_decl(decl, indent)
                else:
                    self._gen_decl(decl, indent)
        else:
            self._gen_expr_effect(stmt.expr, indent)

    def _gen_array_decl(self, decl, indent):
        """``__shared__ T buf[n]`` → one block-scoped array shared by all
        threads; a plain ``T buf[n]`` → a per-thread local array."""
        size = self._expr(decl.array_size)
        if decl.is_shared:
            self._emit(indent, "%s = _rt.shared_array(%r, %s, %r)" % (
                _mangle(decl.name), decl.name, size, decl.type.name))
        else:
            self._emit(indent, "%s = _local_array(%s, %r)" % (
                _mangle(decl.name), size, decl.type.name))

    def _gen_decl(self, decl, indent):
        name = _mangle(decl.name)
        if decl.init is None:
            default = "_D3()" if decl.type.name == "dim3" else "0"
            self._emit(indent, "%s = %s" % (name, default))
            return
        value = self._expr(decl.init)
        if decl.type.name == "dim3" and decl.type.pointers == 0:
            value = "_D3.of(%s)" % value
        self._emit(indent, "%s = %s" % (name, value))

    def _gen_expr_effect(self, expr, indent):
        """An expression evaluated for effect (assignment, call, ++/--)."""
        if isinstance(expr, ast.Assign):
            self._gen_assign(expr, indent)
        elif isinstance(expr, ast.Unary) and expr.op in ("++", "--"):
            op = "+=" if expr.op == "++" else "-="
            self._emit(indent, "%s %s 1" % (self._lvalue(expr.operand), op))
        elif isinstance(expr, ast.Call):
            if (isinstance(expr.func, ast.Ident)
                    and expr.func.name == "cudaMalloc"):
                self._cuda_malloc_stmt(expr.args, indent)
            else:
                emitted = self._expr(expr)
                if emitted != "None":
                    self._emit(indent, emitted)
        elif isinstance(expr, ast.Launch):
            self._gen_launch(expr, indent)
        else:
            # Pure expression statement: cost was counted; no effect.
            self._emit(indent, "pass")

    def _gen_assign(self, assign, indent):
        target = assign.target
        value = self._expr(assign.value)
        op = assign.op
        if op == "=":
            if (isinstance(target, ast.Ident)
                    and self._type_name(target.name) == "dim3"):
                value = "_D3.of(%s)" % value
            self._emit(indent, "%s = %s" % (self._lvalue(target), value))
        else:
            self._emit(indent, "%s %s %s" % (self._lvalue(target), op, value))

    def _type_name(self, var_name):
        var_type = self.types.get(var_name)
        if var_type is not None and var_type.pointers == 0:
            return var_type.name
        return None

    def _lvalue(self, expr):
        if isinstance(expr, ast.Ident):
            if expr.name in self.types:
                return _mangle(expr.name)
            if expr.name in self.info.global_scalars:
                return "g_%s[0]" % expr.name
            raise CodegenError("assignment to unknown name %r" % expr.name)
        if isinstance(expr, ast.Index):
            return "%s[%s]" % (self._expr(expr.base), self._expr(expr.index))
        if isinstance(expr, ast.Member):
            if isinstance(expr.obj, ast.Ident) and \
                    (expr.obj.name, expr.attr) in _RESERVED_MEMBERS:
                raise CodegenError("assignment to reserved variable")
            return "%s.%s" % (self._expr(expr.obj), expr.attr)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return "%s[0]" % self._expr(expr.operand)
        raise CodegenError(
            "unsupported assignment target %r" % type(expr).__name__)

    # -- expressions ---------------------------------------------------------

    def _cond(self, expr):
        return self._expr(expr)

    def _expr(self, expr):
        if isinstance(expr, ast.IntLit):
            return repr(expr.value)
        if isinstance(expr, ast.FloatLit):
            return repr(expr.value)
        if isinstance(expr, ast.BoolLit):
            return "True" if expr.value else "False"
        if isinstance(expr, ast.StrLit):
            return repr(expr.value)
        if isinstance(expr, ast.Ident):
            return self._ident(expr.name)
        if isinstance(expr, ast.Member):
            return self._member(expr)
        if isinstance(expr, ast.Index):
            return "%s[%s]" % (self._expr(expr.base), self._expr(expr.index))
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Ternary):
            return "(%s if %s else %s)" % (
                self._expr(expr.then), self._cond(expr.cond),
                self._expr(expr.orelse))
        if isinstance(expr, ast.Cast):
            return self._cast(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Assign):
            raise CodegenError(
                "assignment used as a value; restructure the source")
        if isinstance(expr, ast.Launch):
            raise CodegenError("launch used as a value")
        raise CodegenError(
            "cannot generate expression %r" % type(expr).__name__)

    def _ident(self, name):
        if name in self.types:
            return _mangle(name)
        if name == "warpSize":
            return "32"
        if name in self.macros:
            return repr(int(self.macros[name]))
        if name in self.info.global_scalars:
            return "g_%s[0]" % name
        if name in self.info.global_arrays:
            return "g_%s" % name
        raise CodegenError(
            "unknown identifier %r in %r (missing macro definition?)"
            % (name, self.func.name))

    def _member(self, expr):
        if isinstance(expr.obj, ast.Ident):
            key = (expr.obj.name, expr.attr)
            if key in _RESERVED_MEMBERS:
                replacement = _RESERVED_MEMBERS[key]
                if not self.info.multi_dim and replacement in (
                        "_tiy", "_tiz", "_biy", "_biz"):
                    return "0"
                return replacement
        return "%s.%s" % (self._expr(expr.obj), expr.attr)

    def _binary(self, expr):
        lhs, rhs = self._expr(expr.lhs), self._expr(expr.rhs)
        op = expr.op
        if op == "/":
            return "_div(%s, %s)" % (lhs, rhs)
        if op == "%":
            return "_mod(%s, %s)" % (lhs, rhs)
        if op == "&&":
            return "((%s) and (%s))" % (lhs, rhs)
        if op == "||":
            return "((%s) or (%s))" % (lhs, rhs)
        if op in _CMP_OPS or op in _ARITH_OPS:
            return "(%s %s %s)" % (lhs, op, rhs)
        raise CodegenError("unknown binary operator %r" % op)

    def _unary(self, expr):
        if expr.op in ("++", "--"):
            raise CodegenError(
                "++/-- only supported as statements or loop steps")
        operand = self._expr(expr.operand)
        if expr.op == "-":
            return "(-%s)" % operand
        if expr.op == "+":
            return "(+%s)" % operand
        if expr.op == "!":
            return "(not (%s))" % operand
        if expr.op == "~":
            return "(~int(%s))" % operand
        if expr.op == "*":
            return "%s[0]" % operand
        if expr.op == "&":
            raise CodegenError(
                "address-of is only supported in atomic/cudaMalloc calls")
        raise CodegenError("unknown unary operator %r" % expr.op)

    def _cast(self, expr):
        operand = self._expr(expr.operand)
        if expr.type.pointers > 0:
            return operand
        name = expr.type.name
        if name in ("float", "double"):
            return "float(%s)" % operand
        if name == "bool":
            return "bool(%s)" % operand
        return "int(%s)" % operand

    def _call(self, expr):
        if not isinstance(expr.func, ast.Ident):
            raise CodegenError("indirect calls are not supported")
        name = expr.func.name
        if name in _ATOMIC_METHODS:
            return self._atomic(name, expr.args)
        if name in _MATH_FUNCS:
            args = ", ".join(self._expr(a) for a in expr.args)
            return "%s(%s)" % (_MATH_FUNCS[name], args)
        if name == "dim3":
            args = [self._expr(a) for a in expr.args]
            while len(args) < 3:
                args.append("1")
            return "_D3(%s)" % ", ".join(args[:3])
        if name in ("__threadfence", "__threadfence_block", "__syncwarp"):
            return "None"
        if name == "printf":
            args = ", ".join(self._expr(a) for a in expr.args)
            return "_rt.printf(%s)" % args
        if name == "cudaMalloc":
            raise CodegenError("cudaMalloc is only supported as a statement")
        if name == "memset":
            ptr, value, _size = (self._expr(a) for a in expr.args)
            return "%s.fill(%s)" % (ptr, value)
        if name in self.info.functions:
            args = "".join(", " + self._expr(a) for a in expr.args)
            return "f_%s(_rt, %s%s)" % (name, self._ctx_args, args)
        raise CodegenError(
            "call to unknown function %r in %r" % (name, self.func.name))

    def _pointer_ref(self, arg):
        """Resolve an atomic's pointer argument to ('array expr', 'index')."""
        if isinstance(arg, ast.Unary) and arg.op == "&":
            inner = arg.operand
            if isinstance(inner, ast.Index):
                return self._expr(inner.base), self._expr(inner.index)
            if isinstance(inner, ast.Ident):
                if inner.name in self.info.global_scalars:
                    return "g_%s" % inner.name, "0"
                raise CodegenError(
                    "atomic on non-global scalar %r" % inner.name)
            raise CodegenError("unsupported address-of operand in atomic")
        return self._expr(arg), "0"

    def _atomic(self, name, args):
        base, index = self._pointer_ref(args[0])
        rest = "".join(", " + self._expr(a) for a in args[1:])
        return "_rt.%s(%s, %s%s)" % (
            _ATOMIC_METHODS[name], base, index, rest)

    def _cuda_malloc_stmt(self, args, indent):
        """``cudaMalloc(&p, bytes)`` → device-heap allocation into local p.

        ``sizeof(T)`` lexes to 4, so *bytes* is in 4-byte units; the element
        type comes from the pointer's declaration.
        """
        target = args[0]
        if not (isinstance(target, ast.Unary) and target.op == "&"
                and isinstance(target.operand, ast.Ident)):
            raise CodegenError("cudaMalloc target must be &local_pointer")
        var = target.operand.name
        var_type = self.types.get(var)
        if var_type is None or var_type.pointers == 0:
            raise CodegenError("cudaMalloc target %r is not a pointer" % var)
        elem = var_type.pointee()
        size = self._expr(args[1])
        self._emit(indent, "%s = _rt.device_malloc((%s) // 4, %r)" % (
            _mangle(var), size, elem.name))


class ProgramInfo:
    """Name environment shared by all functions of one program."""

    def __init__(self, program):
        self.functions = {f.name for f in program.functions()
                          if f.body is not None}
        self.multi_dim = any(
            isinstance(node, ast.Member)
            and isinstance(node.obj, ast.Ident)
            and node.obj.name in ("threadIdx", "blockIdx")
            and node.attr in ("y", "z")
            for node in program.walk())
        self.kernels = {f.name for f in program.kernels()}
        self.global_scalars = set()
        self.global_arrays = set()
        for decl in program.decls:
            if isinstance(decl, ast.DeclStmt):
                for var in decl.decls:
                    if var.array_size is not None or var.type.pointers > 0:
                        self.global_arrays.add(var.name)
                    else:
                        self.global_scalars.add(var.name)


def generate_module_source(program, macros=None, cost_model=None):
    """Python module source implementing every function of *program*.

    Returns (source, kernel_info) where kernel_info maps kernel name to a
    dict with 'has_barrier' and 'params' (list of (name, Type)).
    """
    macros = macros or {}
    cost_model = cost_model or CostModel()
    info = ProgramInfo(program)
    chunks = [
        "import math as _m",
        "from repro.engine.values import Dim3 as _D3, Ptr as _Ptr",
        "from repro.engine.builtins import (c_div as _div, c_mod as _mod,"
        " local_array as _local_array)",
        "",
    ]
    kernel_info = {}
    for func in program.functions():
        if func.body is None:
            continue
        generator = FunctionCodegen(func, info, cost_model, macros)
        chunks.append(generator.generate())
        chunks.append("")
        if func.is_kernel:
            kernel_info[func.name] = {
                "has_barrier": generator.has_barrier,
                "multi_dim": info.multi_dim,
                "params": [(p.name, p.type) for p in func.params],
            }
    return "\n".join(chunks), kernel_info
