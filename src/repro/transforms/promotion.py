"""Promotion transformation (KLAP's second optimization; paper Sec. IX).

KLAP [14] — the substrate this paper's aggregation builds on — includes a
second optimization, *promotion*, for a pattern the paper's three passes
deliberately do not cover: a single-block kernel that launches **itself**
recursively (``rec<<<1, bdim>>>(...)``). Thresholding does not apply (all
child grids have the same size), coarsening does not apply (one block), and
aggregation does not apply (a single launching thread per grid).

Promotion eliminates the recursive launches entirely by turning the
recursion into a loop inside the kernel:

* the recursive launch site stores its arguments into one-slot global
  buffers and raises a relaunch flag;
* the body is wrapped in ``do { ... } while(false)`` (thread-exit ``return``
  becomes ``break``) followed by a block barrier;
* every thread reads the flag and the new arguments, the flag is cleared,
  and the block loops for another "round" instead of paying a kernel launch.

The host runtime allocates the one-slot buffers via the
:class:`~repro.transforms.base.PromotionSpec` recorded in the metadata,
exactly like aggregation's buffers.
"""

from ..analysis import NameAllocator, declared_names, find_launch_sites
from ..errors import TransformError
from ..minicuda import ast
from ..minicuda import builders as b
from .base import ModuleMeta, PromotionSpec, rewrite_launches
from .thresholding import _ReturnToContinue


class _ReturnToBreak(_ReturnToContinue):
    def visit_Return(self, node):
        if self.loop_depth > 0:
            self.nested_return = True
            return node
        return ast.Break()


def find_promotable_sites(program):
    """Self-recursive launch sites with a literal single-block grid."""
    sites = []
    for site in find_launch_sites(program):
        if site.child_name != site.parent.name:
            continue
        grid = site.launch.grid
        if isinstance(grid, ast.IntLit) and grid.value == 1:
            sites.append(site)
    return sites


class PromotionPass:
    """Turn single-block self-recursion into an in-kernel loop."""

    def run(self, program, allocator=None):
        allocator = allocator or NameAllocator.for_program(program)
        meta = ModuleMeta()
        by_kernel = {}
        for site in find_promotable_sites(program):
            by_kernel.setdefault(site.parent.name, []).append(site)
        for kernel_name, sites in by_kernel.items():
            kernel = program.function(kernel_name)
            if len(sites) != 1:
                meta.skipped_sites.append(
                    (kernel_name, kernel_name,
                     "multiple recursive launch sites"))
                continue
            self._promote(kernel, sites[0], meta)
        return meta

    def _promote(self, kernel, site, meta):
        taken = declared_names(kernel)

        def local(stem):
            name = stem
            while name in taken:
                name = "_" + name
            taken.add(name)
            return name

        arg_bufs = [local("_prom_arg%d" % k)
                    for k in range(len(kernel.params))]
        again = local("_prom_again")
        go = local("_prom_go")
        original_params = [p.clone() for p in kernel.params]

        # 1. The recursive launch becomes stores + flag raise.
        target_launch = site.launch

        def rewrite(launch):
            if launch is not target_launch:
                return None
            stmts = []
            for buf, arg in zip(arg_bufs, launch.args):
                stmts.append(b.expr_stmt(b.assign(b.index(buf, 0), arg)))
            stmts.append(b.expr_stmt(b.assign(b.index(again, 0), 1)))
            return b.block(*stmts)

        rewrite_launches(kernel, rewrite)

        # 2. Wrap the body: round loop + barrier + flag check + arg reload.
        rewriter = _ReturnToBreak()
        body = rewriter.visit(kernel.body)
        if rewriter.nested_return:
            raise TransformError(
                "kernel %r has a return inside a loop; cannot promote"
                % kernel.name)
        round_body = ast.DoWhile(body, ast.BoolLit(False))
        reload_stmts = [
            b.expr_stmt(b.assign(p.name, b.index(buf, 0)))
            for p, buf in zip(original_params, arg_bufs)
        ]
        loop = ast.While(ast.BoolLit(True), b.block(
            round_body,
            b.expr_stmt(b.call("__syncthreads")),
            b.decl_int(go, b.index(again, 0)),
            b.expr_stmt(b.call("__syncthreads")),
            b.if_stmt(b.eq(b.member("threadIdx", "x"), 0),
                      [b.expr_stmt(b.assign(b.index(again, 0), 0))]),
            b.if_stmt(b.eq(b.ident(go), 0), [ast.Break()]),
            reload_stmts,
            b.expr_stmt(b.call("__syncthreads")),
        ))
        kernel.body = b.block(loop)

        # 3. Append the buffer parameters.
        for param, buf in zip(original_params, arg_bufs):
            kernel.params.append(ast.Param(param.type.pointer_to(), buf))
        kernel.params.append(ast.Param(ast.INT.pointer_to(), again))

        meta.promotion_specs.append(PromotionSpec(
            kernel=kernel.name,
            arg_types=[p.type.clone() for p in original_params],
            buffer_params=arg_bufs + [again],
        ))
