"""Graph datasets in CSR form, shaped after the paper's inputs (Table I).

The paper evaluates on KRON (a Kronecker/RMAT graph: heavy-tailed degrees),
CNR (a web crawl: power-law with locality), and — for the low-nested-
parallelism study of Fig. 12 — USA-road-d.NY (average degree 3, max 8).
These generators reproduce those degree-distribution *shapes* at
interpreter-friendly sizes; the degree distribution is what drives the
irregular nested parallelism the optimizations target.
"""

from dataclasses import dataclass

import numpy as np


@dataclass
class CSRGraph:
    """Compressed sparse row adjacency with optional edge weights."""

    row: np.ndarray          # int64[n+1]
    col: np.ndarray          # int64[m]
    weights: np.ndarray      # int64[m]
    name: str = "graph"

    @property
    def num_vertices(self):
        return len(self.row) - 1

    @property
    def num_edges(self):
        return len(self.col)

    def degree(self, vertex):
        return int(self.row[vertex + 1] - self.row[vertex])

    def degrees(self):
        return np.diff(self.row)

    def __repr__(self):
        return "CSRGraph(%s: %d vertices, %d edges, max deg %d)" % (
            self.name, self.num_vertices, self.num_edges,
            int(self.degrees().max(initial=0)))


def from_edges(n, src, dst, name="graph", weights=None, seed=0,
               symmetrize=True):
    """Build a CSR graph from edge lists (deduplicated, no self loops)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if len(src):
        unique = np.ones(len(src), dtype=bool)
        unique[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[unique], dst[unique]
    row = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row, src + 1, 1)
    row = np.cumsum(row)
    if weights is None:
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 64, len(dst), dtype=np.int64)
    return CSRGraph(row, dst.astype(np.int64), np.asarray(weights), name)


def kron_graph(scale=11, edge_factor=8, seed=1, name="KRON"):
    """RMAT/Kronecker generator (Graph500 parameters a=.57 b=.19 c=.19).

    Mirrors kron_g500-simple-logn16 at a reduced scale: heavy-tailed degree
    distribution with a few very-high-degree hubs.
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    a, b, c = 0.57, 0.19, 0.19
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        go_right_src = r > a + b          # lower quadrants
        r2 = rng.random(m)
        thresh = np.where(go_right_src, c / (c + (1 - a - b - c)), a / (a + b))
        go_right_dst = r2 > thresh
        src |= go_right_src.astype(np.int64) << bit
        dst |= go_right_dst.astype(np.int64) << bit
    return from_edges(n, src, dst, name=name, seed=seed)


def web_graph(n=3000, avg_degree=9, seed=2, name="CNR"):
    """Preferential-attachment web-like graph (power-law, like cnr-2000)."""
    rng = np.random.default_rng(seed)
    m = n * avg_degree // 2
    # Zipf-weighted endpoints emulate preferential attachment cheaply.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probs = 1.0 / ranks
    probs /= probs.sum()
    src = rng.choice(n, size=m, p=probs)
    dst = rng.choice(n, size=m, p=probs)
    perm = rng.permutation(n)            # avoid id-correlated hubs
    return from_edges(n, perm[src], perm[dst], name=name, seed=seed)


def road_graph(width=50, height=50, extra_fraction=0.05, seed=3,
               name="ROAD-NY"):
    """2-D lattice with a few diagonal shortcuts: degree ≤ 8, average ≈ 3-4.

    Matches the USA-road-d.NY profile of Sec. VIII-D (small uniform degrees,
    hence very low nested parallelism).
    """
    rng = np.random.default_rng(seed)
    n = width * height
    ids = np.arange(n).reshape(height, width)
    src = np.concatenate([ids[:, :-1].ravel(), ids[:-1, :].ravel()])
    dst = np.concatenate([ids[:, 1:].ravel(), ids[1:, :].ravel()])
    extra = int(n * extra_fraction)
    if extra:
        diag_src = ids[:-1, :-1].ravel()
        pick = rng.choice(len(diag_src), size=min(extra, len(diag_src)),
                          replace=False)
        src = np.concatenate([src, diag_src[pick]])
        dst = np.concatenate([dst, diag_src[pick] + width + 1])
    return from_edges(n, src, dst, name=name, seed=seed)


def uniform_random_graph(n=2000, avg_degree=10, seed=4, name="RAND"):
    """Erdős–Rényi-style graph (used by tests as a neutral baseline)."""
    rng = np.random.default_rng(seed)
    m = n * avg_degree // 2
    return from_edges(n, rng.integers(0, n, m), rng.integers(0, n, m),
                      name=name, seed=seed)
