"""Execution-time breakdown accounting (Fig. 10).

The paper decomposes execution time into five components: parent work, child
work, launch, aggregation, and disaggregation. We attribute *work cycles*
(the quantity our two-phase simulation measures exactly):

* ``agg`` / ``disagg`` — cycles of transform-tagged statements;
* ``launch`` — parent-side launch-issue cycles plus the launch-queue
  service/latency cycles and host round-trips for grid-granularity
  aggregation;
* ``parent`` — remaining cycles of host-launched grids;
* ``child`` — remaining cycles of dynamically / host-agg launched grids.

Thresholding moves child cycles into parents (serialization), exactly the
effect Fig. 10 discusses.
"""

from dataclasses import dataclass

from .config import DeviceConfig
from .trace import HOST_AGG


@dataclass
class Breakdown:
    """Cycle totals per Fig. 10 component."""

    parent: int = 0
    child: int = 0
    launch: int = 0
    agg: int = 0
    disagg: int = 0

    COMPONENTS = ("parent", "child", "launch", "agg", "disagg")

    @property
    def total(self):
        return self.parent + self.child + self.launch + self.agg + self.disagg

    def as_dict(self):
        return {name: getattr(self, name) for name in self.COMPONENTS}

    def normalized(self, denominator=None):
        base = denominator if denominator else self.total
        if base == 0:
            return {name: 0.0 for name in self.COMPONENTS}
        return {name: getattr(self, name) / base
                for name in self.COMPONENTS}


def breakdown(trace, config=None):
    """Compute the Fig. 10 component totals for one run's trace."""
    config = config or DeviceConfig()
    result = Breakdown()
    for grid in trace.grids:
        own = grid.total_cycles - grid.reg_agg - grid.reg_disagg \
            - grid.reg_launch
        result.agg += grid.reg_agg
        result.disagg += grid.reg_disagg
        result.launch += grid.reg_launch
        if grid.is_dynamic:
            result.child += own
        else:
            result.parent += own
        if grid.launch is not None:
            if grid.launch.kind == HOST_AGG:
                result.launch += config.host_agg_overhead
            elif grid.is_dynamic:
                result.launch += (config.launch_service_interval
                                  + config.device_launch_latency)
    return result
