"""The keyed cache-metadata index (repro.harness.index) and its
write-through integration with both caches (repro.harness.cache).

The contract under test: the SQLite index is an advisory *mirror* of
metadata the blobs themselves carry — hit counts, measured sim costs,
creation times — so deleting ``index.sqlite`` and running
``repro cache reindex`` reconstructs an equivalent index; and the index
feeds the introspection (``top``/``stats``) and cost-aware eviction
surfaces without ever being load-bearing for correctness. The warm hit
path stays read-only on the blob (hits bump atomically in the index);
``sync_hits`` — run implicitly by ``prune``/``reindex`` — folds the
accumulated counts back into the blobs' ``meta`` blocks.
"""

import json
import os

import pytest

from repro.harness import (FigureArtifactCache, ResultCache, SweepExecutor,
                           TuningParams, point_key, sweep_grid)
from repro.harness import cache as cache_mod
from repro.harness.index import INDEX_FILENAME, CacheIndex
from repro.harness.runner import RunResult
from repro.harness.sweep import SweepPoint

SCALE = 0.08

POINTS = sweep_grid((("BFS", "KRON"), ("SSSP", "KRON")),
                    ("CDP", "CDP+T"), scale=SCALE,
                    params=TuningParams(threshold=16))


def _filled_cache(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    SweepExecutor(cache=cache).run(POINTS)
    return cache


def make_point(threshold):
    return SweepPoint("BFS", "KRON", "CDP+T",
                      TuningParams(threshold=threshold), scale=SCALE)


def make_result(threshold):
    return RunResult("BFS", "KRON", "CDP+T",
                     TuningParams(threshold=threshold), total_time=100,
                     breakdown={"parent": 60, "child": 40},
                     device_launches=3, host_agg_launches=0,
                     launch_queue_wait=5)


def _delete_index_files(cache):
    cache.index.close()
    for suffix in ("", "-wal", "-shm"):
        try:
            os.remove(cache.index.path + suffix)
        except OSError:
            pass


class TestWriteThrough:
    def test_executor_run_populates_the_index(self, tmp_path):
        cache = _filled_cache(tmp_path)
        rows = cache.index.entries()
        assert len(rows) == len(POINTS)
        assert {row["kind"] for row in rows} == {"result"}
        assert {row["key"] for row in rows} \
            == {point_key(p) for p in POINTS}
        for row in rows:
            # The executor measures per-point sim wall time into the store.
            assert row["sim_cost_seconds"] is not None
            assert row["sim_cost_seconds"] >= 0
            assert row["bytes"] > 0
            assert row["hits"] == 0
            assert row["cache_version"] == cache_mod.CACHE_VERSION
            assert row["spec"]["benchmark"] in ("BFS", "SSSP")

    def test_hit_bumps_index_only_then_sync_folds_into_blob(self, tmp_path):
        """The hot path is read-only on the blob: hits accumulate in the
        index (atomic SQL increment) and sync_hits() folds them into the
        blob's meta block lazily."""
        cache = _filled_cache(tmp_path)
        point = POINTS[0]
        key = point_key(point)
        path = os.path.join(cache.cache_dir, key + ".json")
        before = open(path).read()
        cache.get(point)
        cache.get(point)
        assert cache.index.get(key)["hits"] == 2
        assert open(path).read() == before          # blob untouched
        assert cache.sync_hits() == 1
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["meta"]["hits"] == 2
        assert cache.index.get(key)["hits"] == 2
        assert cache.sync_hits() == 0               # idempotent

    def test_prune_folds_hits_before_evicting(self, tmp_path):
        """A real prune makes accumulated hit counts durable in the
        surviving blobs (the documented fold point)."""
        cache = _filled_cache(tmp_path)
        key = point_key(POINTS[0])
        cache.get(POINTS[0])
        cache.prune()                               # no limits: fold only
        with open(os.path.join(cache.cache_dir, key + ".json")) as handle:
            assert json.load(handle)["meta"]["hits"] == 1
        assert len(cache) == len(POINTS)

    def test_hit_resurrects_missing_index_row(self, tmp_path):
        """bump_hit falls back to a full record when the row is gone
        (e.g. a fresh index), rebuilding it from the blob's meta."""
        cache = _filled_cache(tmp_path)
        cache.get(POINTS[0])
        cache.sync_hits()
        cache.index.clear()
        assert cache.get(POINTS[0]) is not None
        row = cache.index.get(point_key(POINTS[0]))
        assert row["hits"] == 2                     # blob's 1 + this hit
        assert row["sim_cost_seconds"] is not None

    def test_direct_put_records_supplied_cost(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.put(make_point(8), make_result(8), sim_cost=1.5)
        row = cache.index.get(point_key(make_point(8)))
        assert row["sim_cost_seconds"] == 1.5

    def test_figure_entries_share_the_index(self, tmp_path):
        root = str(tmp_path / "cache")
        results = ResultCache(root)
        figures = FigureArtifactCache(root)
        figures.put("fig9", {"scale": "0.25"}, {"rows": [1, 2, 3]})
        assert figures.get("fig9", {"scale": "0.25"}) \
            == {"rows": [1, 2, 3]}
        rows = [r for r in results.index.entries() if r["kind"] == "figure"]
        assert len(rows) == 1
        assert rows[0]["hits"] == 1
        assert rows[0]["spec"] == {"figure": "fig9",
                                   "spec": {"scale": "0.25"}}

    def test_index_file_invisible_to_cache_accounting(self, tmp_path):
        cache = _filled_cache(tmp_path)
        assert os.path.exists(cache.index.path)
        info = cache.info()
        assert info.entries == len(POINTS)
        assert info.tmp_files == 0
        sizes = sum(os.path.getsize(os.path.join(cache.cache_dir, n))
                    for n in os.listdir(cache.cache_dir)
                    if n.endswith(".json"))
        assert info.total_bytes == sizes


class TestRebuild:
    def test_reindex_recovers_hits_and_costs_from_blobs(self, tmp_path):
        """The acceptance scenario: after a fold (sync_hits — prune and
        reindex run it implicitly), delete index.sqlite, rebuild from
        the blobs, and the hit counts / sim costs match the live
        index."""
        cache = _filled_cache(tmp_path)
        cache.get(POINTS[0])
        cache.get(POINTS[0])
        cache.get(POINTS[1])
        assert cache.sync_hits() == 2
        want = {row["key"]: row for row in cache.index.entries()}
        _delete_index_files(cache)

        rebuilt = ResultCache(cache.cache_dir)      # fresh connection
        assert rebuilt.reindex() == len(POINTS)
        got = {row["key"]: row for row in rebuilt.index.entries()}
        assert set(got) == set(want)
        for key, row in got.items():
            for field in ("kind", "spec", "bytes", "hits",
                          "sim_cost_seconds", "cache_version"):
                assert row[field] == want[key][field], \
                    "reindex diverged on %s of %s" % (field, key)
            assert row["created"] == pytest.approx(want[key]["created"])

    def test_reindex_covers_figures(self, tmp_path):
        root = str(tmp_path / "cache")
        cache = ResultCache(root)
        figures = FigureArtifactCache(root)
        figures.put("fig9", {"scale": "0.25"}, {"rows": []})
        figures.get("fig9", {"scale": "0.25"})
        assert cache.sync_hits() == 1       # folds the figure blob too
        _delete_index_files(cache)
        rebuilt = ResultCache(root)
        assert rebuilt.reindex() == 1
        row, = rebuilt.index.entries()
        assert row["kind"] == "figure"
        assert row["hits"] == 1

    def test_reindex_recovers_from_garbage_index_file(self, tmp_path):
        cache = _filled_cache(tmp_path)
        _delete_index_files(cache)
        with open(cache.index.path, "w") as handle:
            handle.write("this is not a sqlite database")
        rebuilt = ResultCache(cache.cache_dir)
        assert rebuilt.reindex() == len(POINTS)
        assert len(rebuilt.index.entries()) == len(POINTS)

    def test_broken_index_never_fails_the_cache(self, tmp_path):
        """Best-effort contract: with garbage where index.sqlite should
        be, stores and hits still succeed (errors are swallowed)."""
        root = str(tmp_path / "cache")
        os.makedirs(root)
        with open(os.path.join(root, INDEX_FILENAME), "w") as handle:
            handle.write("garbage")
        cache = ResultCache(root)
        assert cache.put(make_point(8), make_result(8), sim_cost=1.0)
        assert cache.get(make_point(8)) == make_result(8)
        assert cache.index.entries() == []      # unusable, not fatal

    def test_reindex_skips_unreadable_blobs(self, tmp_path):
        cache = _filled_cache(tmp_path)
        bad = os.path.join(cache.cache_dir, "0" * 64 + ".json")
        with open(bad, "w") as handle:
            handle.write("{truncated")
        assert cache.reindex() == len(POINTS)


class TestQueries:
    def _indexed(self, tmp_path, costs):
        cache = ResultCache(str(tmp_path / "cache"))
        for threshold, cost in costs.items():
            cache.put(make_point(threshold), make_result(threshold),
                      sim_cost=cost)
        return cache

    def test_top_by_hits_and_cost(self, tmp_path):
        cache = self._indexed(tmp_path, {4: 0.5, 8: 2.0, 16: 1.0})
        cache.get(make_point(16))
        cache.get(make_point(16))
        cache.get(make_point(4))
        by_hits = cache.index.top(by="hits")
        assert [r["hits"] for r in by_hits] == [2, 1, 0]
        assert by_hits[0]["key"] == point_key(make_point(16))
        by_cost = cache.index.top(by="cost")
        assert [r["sim_cost_seconds"] for r in by_cost] == [2.0, 1.0, 0.5]

    def test_top_respects_limit_and_rejects_unknown_by(self, tmp_path):
        cache = self._indexed(tmp_path, {4: 0.5, 8: 2.0, 16: 1.0})
        assert len(cache.index.top(by="bytes", limit=2)) == 2
        with pytest.raises(ValueError):
            cache.index.top(by="alphabetical")

    def test_stats_dict_rolls_up_by_kind(self, tmp_path):
        cache = self._indexed(tmp_path, {4: 0.5, 8: 2.0})
        figures = FigureArtifactCache(cache.cache_dir)
        figures.put("fig9", {"scale": "0.25"}, {"rows": []})
        stats = cache.index.stats_dict()
        assert stats["entries"] == 3
        assert stats["by_kind"]["result"]["entries"] == 2
        assert stats["by_kind"]["result"]["sim_cost_seconds"] \
            == pytest.approx(2.5)
        assert stats["by_kind"]["figure"]["entries"] == 1
        assert stats["path"] == cache.index.path

    def test_costs_by_key_skips_unknown(self, tmp_path):
        cache = self._indexed(tmp_path, {4: 1.5, 8: None})
        costs = cache.index.costs_by_key()
        assert costs == {point_key(make_point(4)): 1.5}


class TestEviction:
    def test_cost_policy_keeps_expensive_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        for threshold, cost in ((4, 0.1), (8, 5.0), (16, 3.0), (32, 0.2)):
            cache.put(make_point(threshold), make_result(threshold),
                      sim_cost=cost)
        report = cache.prune(max_entries=2, policy="cost")
        assert report.removed_entries == 2
        assert report.policy == "cost"
        surviving = {row["key"] for row in cache.index.entries()}
        assert surviving == {point_key(make_point(8)),
                             point_key(make_point(16))}
        assert cache.get(make_point(8)) is not None
        assert cache.get(make_point(4)) is None    # evicted (cheap)

    def test_unknown_policy_raises(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with pytest.raises(ValueError):
            cache.prune(max_entries=1, policy="random")

    def test_dry_run_reports_without_removing(self, tmp_path):
        cache = _filled_cache(tmp_path)
        report = cache.prune(max_entries=1, dry_run=True)
        assert report.dry_run is True
        assert report.removed_entries == len(POINTS) - 1
        assert "would prune" in report.format()
        assert len(cache) == len(POINTS)            # nothing touched
        assert len(cache.index.entries()) == len(POINTS)

    def test_prune_removes_index_rows(self, tmp_path):
        cache = _filled_cache(tmp_path)
        cache.prune(max_entries=1)
        assert len(cache.index.entries()) == 1
        assert len(cache) == 1

    def test_clear_empties_the_index(self, tmp_path):
        cache = _filled_cache(tmp_path)
        cache.clear()
        assert cache.index.entries() == []
        assert cache.index.stats_dict()["entries"] == 0

    def test_corruption_drop_removes_index_row(self, tmp_path):
        cache = _filled_cache(tmp_path)
        key = point_key(POINTS[0])
        with open(os.path.join(cache.cache_dir, key + ".json"),
                  "w") as handle:
            handle.write("{broken")
        assert cache.get(POINTS[0]) is None
        assert cache.index.get(key) is None


class TestPutCleanupRace:
    def test_put_survives_tmp_swept_by_concurrent_prune(self, tmp_path,
                                                        monkeypatch):
        """Regression: put's cleanup used an exists()-then-remove pair, so
        a concurrent prune sweeping the .tmp in between raised from the
        finally block. The quiet unconditional remove must swallow it."""
        cache = ResultCache(str(tmp_path / "cache"))
        real_replace = os.replace

        def replace_and_sweep(src, dst):
            real_replace(src, dst)      # leaves src gone, like a prune won
            raise_if = os.path.exists(src)
            assert not raise_if

        monkeypatch.setattr(cache_mod.os, "replace", replace_and_sweep)
        assert cache.put(make_point(8), make_result(8)) is True
        assert cache.get(make_point(8)) == make_result(8)

    def test_put_cleanup_swallows_oserror(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path / "cache"))
        real_remove = os.remove

        def hostile_remove(path):
            if path.endswith(".tmp"):
                raise OSError("swept by a concurrent prune")
            return real_remove(path)

        monkeypatch.setattr(cache_mod.os, "remove", hostile_remove)
        assert cache.put(make_point(8), make_result(8)) is True
        figures = FigureArtifactCache(cache.cache_dir)
        assert figures.put("fig9", {"scale": "0.25"}, {"rows": []}) is True
