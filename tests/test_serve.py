"""The HTTP query service (repro serve / repro.harness.serve).

Covers the acceptance contract of the serving path: warm ``/point`` and
``/figure`` requests answer without a single executor submission, a cold
``/point`` populates the ResultCache so the second request is a hit,
concurrent cold requests for one masked spec share exactly one
simulation (scheduler dedup) while distinct specs overlap across the
miss workers, a saturated queue answers 503, ``POST /shutdown`` drains,
``GET /metrics`` scrapes as valid Prometheus text, ``POST /sweep``
surfaces PointFailures as structured JSON under the ``on_error``
contract, and concurrent readers never observe torn cache entries or
leak ``.tmp`` files.
"""

import json
import re
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

import pytest

import repro.harness.figures as figures_mod
import repro.harness.sweep as sweep_mod
from repro.errors import ReproError
from repro.harness.serve import (ENDPOINTS, METRICS_CONTENT_TYPE,
                                 QueryService, ServeServer,
                                 point_from_query)

SCALE = "0.08"
POINT = ("/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
         "&threshold=16&scale=%s" % SCALE)


def fetch(server, path, data=None):
    """(status, decoded JSON body) for one request against *server*."""
    url = "http://%s:%d%s" % (*server.address, path)
    payload = json.dumps(data).encode() if data is not None else None
    try:
        with urllib.request.urlopen(
                urllib.request.Request(url, data=payload),
                timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def fetch_raw(server, path):
    """(status, content-type, text body) without JSON decoding."""
    url = "http://%s:%d%s" % (*server.address, path)
    try:
        with urllib.request.urlopen(url, timeout=60) as resp:
            return (resp.status, resp.headers.get("Content-Type"),
                    resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type"), \
            exc.read().decode("utf-8")


def banned(*args, **kwargs):
    raise AssertionError("executor submission on the warm hit path")


def ban_executors(monkeypatch, service):
    """Warm paths may touch no backend: ban the figure executor and
    every miss worker's."""
    for executor in [service.executor] + service.miss_executors:
        monkeypatch.setattr(executor.backend, "map", banned)


@pytest.fixture
def server(tmp_path):
    srv = ServeServer(cache_dir=str(tmp_path / "cache"))
    srv.start()
    yield srv
    srv.close()


class TestHealthAndRouting:
    def test_healthz(self, server):
        status, payload = fetch(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["endpoints"] == list(ENDPOINTS)
        assert payload["backend"] == "serial"
        assert isinstance(payload["cache_version"], int)

    def test_unknown_route_404_lists_endpoints(self, server):
        status, payload = fetch(server, "/nope")
        assert status == 404
        assert payload["endpoints"] == list(ENDPOINTS)

    def test_wrong_method_405(self, server):
        assert fetch(server, "/sweep")[0] == 405            # GET
        assert fetch(server, "/healthz", data={})[0] == 405  # POST

    def test_unknown_figure_404(self, server):
        status, payload = fetch(server, "/figure/nope")
        assert status == 404
        assert "fig9" in payload["figures"]

    def test_sweep_bad_json_body_400(self, server):
        url = "http://%s:%d/sweep" % server.address
        req = urllib.request.Request(url, data=b"not json")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=60)
        assert info.value.code == 400

    def test_server_survives_errors(self, server):
        fetch(server, "/point?benchmark=NOPE&dataset=KRON")
        assert fetch(server, "/healthz")[0] == 200


class TestPoint:
    def test_cold_then_warm_hit_without_executor(self, server, monkeypatch):
        status, cold = fetch(server, POINT)
        assert status == 200
        assert cold["cache"] == "miss"
        assert cold["result"]["total_time"] > 0
        assert cold["point"]["label"] == "CDP+T"
        # The cold miss populated the cache: the second identical request
        # must be a hit that never reaches the executor or the simulator.
        ban_executors(monkeypatch, server.service)
        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        status, warm = fetch(server, POINT)
        assert status == 200
        assert warm["cache"] == "hit"
        assert warm["result"] == cold["result"]
        assert warm["key"] == cold["key"]

    def test_unencoded_plus_label_normalized(self, server):
        assert fetch(server, POINT)[1]["cache"] == "miss"
        # "label=CDP+T" decodes to "CDP T"; the service canonicalizes it.
        spaced = POINT.replace("CDP%2BT", "CDP+T")
        status, payload = fetch(server, spaced)
        assert status == 200
        assert payload["point"]["label"] == "CDP+T"
        assert payload["cache"] == "hit"

    def test_mask_params_canonicalizes_url_specs(self, server, monkeypatch):
        base = "/point?benchmark=BFS&dataset=KRON&label=CDP&scale=" + SCALE
        status, cold = fetch(server, base)
        assert cold["cache"] == "miss"
        # CDP uses neither threshold nor coarsening: a URL carrying stray
        # values must land on the same (masked) cache key.
        ban_executors(monkeypatch, server.service)
        status, warm = fetch(server, base + "&threshold=999&coarsen=4")
        assert status == 200
        assert warm["cache"] == "hit"
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]

    def test_validation_errors_are_400(self, server):
        cases = (
            "/point?dataset=KRON",                            # no benchmark
            "/point?benchmark=NOPE&dataset=KRON",             # bad benchmark
            "/point?benchmark=BFS&dataset=NOPE",              # bad dataset
            "/point?benchmark=BFS&dataset=KRON&label=XX",     # bad label
            "/point?benchmark=BFS&dataset=KRON&scale=x",      # bad scale
            "/point?benchmark=BFS&dataset=KRON&threshold=x",  # bad int
            "/point?benchmark=BFS&dataset=KRON&aggregate=x",  # bad gran
            "/point?benchmark=BFS&dataset=KRON&bogus=1",      # unknown key
        )
        for path in cases:
            status, payload = fetch(server, path)
            assert status == 400, path
            assert payload["error"] == "ServeError", path

    def test_simulator_failure_is_structured_500(self, server, monkeypatch):
        def boom(point):
            raise ReproError("synthetic failure")

        monkeypatch.setattr(sweep_mod, "_simulate_point", boom)
        status, payload = fetch(server, POINT)
        assert status == 500
        assert payload["status"] == "error"
        assert payload["error"] == "ReproError"
        assert payload["message"] == "synthetic failure"
        assert payload["point"]["benchmark"] == "BFS"


class TestSweep:
    BODY = {"pairs": ["BFS:KRON"], "variants": ["CDP", "CDP+T"],
            "params": {"threshold": 16}, "scale": float(SCALE)}

    def test_grid_cold_then_warm(self, server):
        status, cold = fetch(server, "/sweep", data=self.BODY)
        assert status == 200
        assert [entry["status"] for entry in cold["results"]] == ["ok", "ok"]
        assert cold["stats"] == {"points": 2, "hits": 0, "simulated": 2,
                                 "failed": 0, "shed": 0}
        status, warm = fetch(server, "/sweep", data=self.BODY)
        assert warm["stats"] == {"points": 2, "hits": 2, "simulated": 0,
                                 "failed": 0, "shed": 0}
        assert [e["result"] for e in warm["results"]] == \
            [e["result"] for e in cold["results"]]

    def test_pairs_accept_lists_and_mask_shares_keys(self, server):
        body = dict(self.BODY, pairs=[["BFS", "KRON"]])
        status, payload = fetch(server, "/sweep", data=body)
        assert status == 200
        # /point for the same effective config must now be a cache hit.
        status, point = fetch(server, POINT)
        assert point["cache"] == "hit"

    def test_point_failures_surface_structured(self, server, monkeypatch):
        real = sweep_mod._simulate_point

        def fail_cdp(point):
            if point.label == "CDP":
                raise ReproError("CDP died")
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", fail_cdp)
        status, payload = fetch(server, "/sweep", data=self.BODY)
        assert status == 200
        first, second = payload["results"]
        assert first["status"] == "error"
        assert first["error"] == "ReproError"
        assert first["message"] == "CDP died"
        assert first["point"]["label"] == "CDP"
        assert "CDP" in first["describe"]
        assert second["status"] == "ok"
        assert payload["stats"]["failed"] == 1

    def test_on_error_raise_maps_to_500(self, server, monkeypatch):
        def fail_all(point):
            raise ReproError("nothing works")

        monkeypatch.setattr(sweep_mod, "_simulate_point", fail_all)
        status, payload = fetch(server, "/sweep",
                                data=dict(self.BODY, on_error="raise"))
        assert status == 500
        assert payload["status"] == "error"
        assert payload["message"] == "nothing works"

    def test_body_validation_400(self, server):
        cases = (
            {},                                              # no pairs
            dict(self.BODY, pairs=["BFSKRON"]),              # bad pair
            dict(self.BODY, pairs=[]),                       # empty pairs
            dict(self.BODY, variants=[]),                    # empty variants
            dict(self.BODY, variants=["XX"]),                # bad label
            dict(self.BODY, params={"bogus": 1}),            # bad param
            dict(self.BODY, on_error="explode"),             # bad on_error
            dict(self.BODY, bogus=1),                        # unknown key
        )
        for body in cases:
            status, payload = fetch(server, "/sweep", data=body)
            assert status == 400, body
            assert payload["error"] == "ServeError", body


class TestFigure:
    PATH = "/figure/fig11?benchmark=BFS&dataset=KRON&scale=" + SCALE

    def test_read_through_artifact_cache(self, server, monkeypatch):
        status, cold = fetch(server, self.PATH)
        assert status == 200
        assert cold["cache"] == "miss"
        data = cold["data"]
        assert data["kind"] == "threshold-sweep"
        assert data["benchmark"] == "BFS" and data["dataset"] == "KRON"
        assert data["series"] and data["thresholds"][0] == "none"
        assert cold["provenance"]["version"]
        assert cold["provenance"]["backend"] == "serial"
        # Warm fetch: neither the figure builder's direct runs nor the
        # executor may fire — the artifact cache answers alone.
        monkeypatch.setattr(figures_mod, "run_variant", banned)
        ban_executors(monkeypatch, server.service)
        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        status, warm = fetch(server, self.PATH)
        assert status == 200
        assert warm["cache"] == "hit"
        assert warm["data"] == cold["data"]

    def test_format_text_is_backward_compatible(self, server, monkeypatch):
        status, as_json = fetch(server, self.PATH)
        assert status == 200 and "text" not in as_json
        ban_executors(monkeypatch, server.service)
        status, as_text = fetch(server, self.PATH + "&format=text")
        assert status == 200
        assert as_text["cache"] == "hit"
        assert "Figure 11" in as_text["text"]
        assert "data" not in as_text
        # Every speedup the table prints appears in the structured rows.
        for label, points in as_json["data"]["series"].items():
            for value in points.values():
                assert "%.2f" % value in as_text["text"]

    def test_bad_format_400(self, server):
        assert fetch(server, self.PATH + "&format=xml")[0] == 400

    def test_unknown_param_400(self, server):
        status, payload = fetch(server, "/figure/table1?strategy=guided")
        assert status == 400
        status, payload = fetch(server, self.PATH + "&strategy=guided")
        assert status == 400

    def test_bad_strategy_400(self, server):
        assert fetch(server, "/figure/fig12?strategy=nope")[0] == 400

    def test_table1_structured_rows(self, server):
        status, payload = fetch(server, "/figure/table1?scale=" + SCALE)
        assert status == 200
        rows = payload["data"]["rows"]
        assert payload["data"]["kind"] == "table1"
        assert any(row["benchmark"] == "BFS" for row in rows)
        assert all(set(row) == {"benchmark", "dataset", "size"}
                   for row in rows)

    def test_warm_requests_bypass_the_figure_lock(self, server):
        """Warm /point and /figure hits must stay interactive while a
        slow cold figure build holds the figure lock."""
        fetch(server, POINT)
        fetch(server, self.PATH)
        with server.service._figure_lock:   # a cold build in flight
            status, point = fetch(server, POINT)
            assert status == 200 and point["cache"] == "hit"
            status, figure = fetch(server, self.PATH)
            assert status == 200 and figure["cache"] == "hit"


class TestCacheInfo:
    def test_schema_and_counters(self, server):
        fetch(server, POINT)            # miss
        fetch(server, POINT)            # hit
        status, payload = fetch(server, "/cache/info")
        assert status == 200
        assert payload["info"]["result_entries"] == 1
        assert payload["info"]["result_bytes"] > 0
        # Exactly one logical miss and one hit: the optimistic pre-check
        # must not double-count the executor's authoritative miss.
        assert payload["results"] == {"hits": 1, "misses": 1}
        assert payload["figures"] == {"hits": 0, "misses": 0}
        assert payload["executor"]["simulated"] == 1
        assert payload["backend"] == "serial"
        # The scheduler block: one miss scheduled, completed, no joins.
        queue = payload["queue"]
        assert queue["workers"] == 2 and queue["max_pending"] == 64
        assert queue["submitted"] == 1 and queue["completed"] == 1
        assert queue["dedup_joins"] == 0 and queue["rejected"] == 0
        assert queue["depth"] == 0 and queue["inflight"] == 0
        assert queue["draining"] is False
        assert payload["metrics"]["series"] > 0
        assert payload["metrics"]["endpoint"] == "GET /metrics"

    def test_cacheless_service(self, tmp_path):
        srv = ServeServer(cache_dir=None)
        srv.start()
        try:
            status, info = fetch(srv, "/cache/info")
            assert status == 200
            assert info["cache_dir"] is None and info["info"] is None
            status, point = fetch(srv, POINT)
            assert status == 200
            assert point["cache"] == "miss"
            # No cache: the "second" request is a miss too.
            assert fetch(srv, POINT)[1]["cache"] == "miss"
        finally:
            srv.close()


class TestConcurrentReaders:
    """Satellite: readers hammering a warm cache see no torn reads, and
    the PR 2 stale-.tmp sweeping can run under that load without
    disturbing them or leaving droppings behind."""

    def test_concurrent_point_and_info_reads(self, server):
        warm = {"pairs": ["BFS:KRON", "SSSP:KRON"],
                "variants": ["CDP", "CDP+T"],
                "params": {"threshold": 16}, "scale": float(SCALE)}
        status, seeded = fetch(server, "/sweep", data=warm)
        assert status == 200 and seeded["stats"]["failed"] == 0
        paths, expected = [], {}
        for bench in ("BFS", "SSSP"):
            for label in ("CDP", "CDP%2BT"):
                path = ("/point?benchmark=%s&dataset=KRON&label=%s"
                        "&threshold=16&scale=%s" % (bench, label, SCALE))
                status, payload = fetch(server, path)
                assert status == 200 and payload["cache"] == "hit"
                paths.append(path)
                expected[path] = payload["result"]

        cache = server.service.cache
        cache_dir = Path(cache.cache_dir)
        (cache_dir / "stranded.tmp").write_text("x")     # PR 2 sweep bait
        errors = []

        def reader(path):
            try:
                for _ in range(5):
                    status, payload = fetch(server, path)
                    if status != 200:
                        errors.append((path, status, payload))
                    elif payload["cache"] != "hit" \
                            or payload["result"] != expected[path]:
                        errors.append((path, "torn", payload))
                    status, info = fetch(server, "/cache/info")
                    if status != 200 or info["info"]["result_entries"] < 4:
                        errors.append(("/cache/info", status, info))
            except Exception as exc:             # noqa: BLE001
                errors.append((path, "exception", repr(exc)))

        def sweeper():
            try:
                for _ in range(5):
                    cache.prune(tmp_max_age=0)
            except Exception as exc:             # noqa: BLE001
                errors.append(("prune", "exception", repr(exc)))

        threads = [threading.Thread(target=reader, args=(path,))
                   for path in paths * 2] + \
                  [threading.Thread(target=sweeper)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[:3]
        assert not list(cache_dir.glob("*.tmp")), "stale .tmp survived"
        assert not list((cache_dir / "figures").glob("*.tmp"))
        # The four warm entries themselves must have survived the sweeps.
        assert len(list(cache_dir.glob("*.json"))) == 4


class TestConcurrentMisses:
    """The tentpole contract: concurrent cold requests for one masked
    spec share exactly one simulation; distinct cold specs overlap
    across the miss workers instead of serializing."""

    DISTINCT = ["/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
                "&threshold=%d&scale=%s" % (threshold, SCALE)
                for threshold in (8, 32)]

    def test_same_spec_runs_exactly_once(self, server, monkeypatch):
        real = sweep_mod._simulate_point
        calls, call_lock = [], threading.Lock()
        entered, gate = threading.Event(), threading.Event()

        def slow(point):
            with call_lock:
                calls.append(point.describe())
            entered.set()
            assert gate.wait(30), "test gate never opened"
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", slow)
        responses = []

        def hit_it():
            responses.append(fetch(server, POINT))

        first = threading.Thread(target=hit_it)
        first.start()
        assert entered.wait(30), "first request never reached the simulator"
        # The point is now in flight: a second identical request must
        # join it, not enqueue a duplicate.
        second = threading.Thread(target=hit_it)
        second.start()
        deadline = time.time() + 30
        while server.service.scheduler.dedup_joins < 1:
            assert time.time() < deadline, "second request never joined"
            time.sleep(0.01)
        gate.set()
        first.join(timeout=30)
        second.join(timeout=30)
        assert len(calls) == 1, calls
        assert [status for status, _ in responses] == [200, 200]
        assert responses[0][1]["result"] == responses[1][1]["result"]
        assert {payload["cache"] for _, payload in responses} == {"miss"}
        assert server.service.scheduler.dedup_joins == 1
        assert server.service.executor_stats().simulated == 1

    def test_distinct_specs_overlap(self, server, monkeypatch):
        real = sweep_mod._simulate_point
        state = {"active": 0, "peak": 0}
        lock = threading.Lock()

        def slow(point):
            with lock:
                state["active"] += 1
                state["peak"] = max(state["peak"], state["active"])
            time.sleep(0.4)
            with lock:
                state["active"] -= 1
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", slow)
        results = {}

        def hit(path):
            results[path] = fetch(server, path)

        threads = [threading.Thread(target=hit, args=(path,))
                   for path in self.DISTINCT]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        wall = time.perf_counter() - started
        assert all(status == 200 for status, _ in results.values())
        # Two 0.4s simulations on two miss workers must beat the 0.8s
        # serialized sum — i.e. they actually ran concurrently.
        assert state["peak"] >= 2, "misses never overlapped"
        assert wall < 0.75, "wall %.2fs not better than serialized" % wall


class TestBackpressure:
    def test_full_queue_is_503(self, tmp_path, monkeypatch):
        entered, gate = threading.Event(), threading.Event()
        real = sweep_mod._simulate_point

        def slow(point):
            entered.set()
            assert gate.wait(30), "test gate never opened"
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", slow)
        srv = ServeServer(cache_dir=str(tmp_path / "cache"),
                          miss_workers=1, max_pending=1)
        srv.start()
        try:
            paths = ["/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
                     "&threshold=%d&scale=%s" % (threshold, SCALE)
                     for threshold in (4, 8, 16)]
            threads = [threading.Thread(target=fetch, args=(srv, path))
                       for path in paths[:2]]
            threads[0].start()
            assert entered.wait(30)     # worker busy on the first point
            threads[1].start()          # second point fills the queue
            deadline = time.time() + 30
            while srv.service.scheduler.stats_dict()["depth"] < 1:
                assert time.time() < deadline, "queue never filled"
                time.sleep(0.01)
            status, payload = fetch(srv, paths[2])
            assert status == 503
            assert payload["error"] == "QueueFullError"
            assert payload["retry"] is True
            assert srv.service.scheduler.rejected == 1
            gate.set()
            for thread in threads:
                thread.join(timeout=60)
            # Rejected clients retry once the queue drains.
            status, payload = fetch(srv, paths[2])
            assert status == 200
        finally:
            gate.set()
            srv.close()


class TestMetricsEndpoint:
    SAMPLE_RE = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? '
        r'(-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$')

    def test_prometheus_exposition(self, server):
        from repro.harness.serve import _POINT_CACHE

        # The registry is process-global, so assert deltas, not totals.
        hits0 = _POINT_CACHE.value(state="hit")
        misses0 = _POINT_CACHE.value(state="miss")
        fetch(server, POINT)            # miss
        fetch(server, POINT)            # hit
        status, content_type, text = fetch_raw(server, "/metrics")
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        for series in ("repro_serve_requests_total",
                       "repro_serve_request_seconds",
                       "repro_serve_point_cache_total",
                       "repro_queue_submitted_total",
                       "repro_queue_depth",
                       "repro_queue_wait_seconds",
                       "repro_sweep_points_total",
                       "repro_sweep_point_seconds",
                       "repro_cache_lookups_total",
                       "repro_remote_workers_alive"):
            assert "# TYPE %s" % series in text, series
        # Every sample line is valid Prometheus text exposition.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert self.SAMPLE_RE.match(line), line
        assert _POINT_CACHE.value(state="hit") == hits0 + 1
        assert _POINT_CACHE.value(state="miss") == misses0 + 1
        assert 'repro_serve_point_cache_total{state="hit"}' in text
        assert 'repro_serve_point_cache_total{state="miss"}' in text

    def test_histogram_buckets_are_cumulative(self, server):
        fetch(server, POINT)
        _, _, text = fetch_raw(server, "/metrics")
        buckets = [
            float(self.SAMPLE_RE.match(line).group(2))
            for line in text.splitlines()
            if line.startswith('repro_queue_wait_seconds_bucket')]
        assert buckets, "wait histogram missing"
        assert buckets == sorted(buckets), "buckets not cumulative"

    def test_wrong_method_405(self, server):
        assert fetch(server, "/metrics", data={})[0] == 405


class TestShutdown:
    def test_post_shutdown_drains_and_stops(self, tmp_path):
        srv = ServeServer(cache_dir=str(tmp_path / "cache"))
        srv.start()
        try:
            fetch(srv, POINT)           # give the drain something real
            status, payload = fetch(srv, "/shutdown", data={})
            assert status == 200
            assert payload["status"] == "draining"
            assert "queue" in payload
            srv._thread.join(timeout=10)
            assert not srv._thread.is_alive(), "serve loop did not stop"
        finally:
            srv.close()
        # close() drained: the scheduler refuses new work afterwards.
        assert srv.service.scheduler.stats_dict()["draining"] is True

    def test_get_shutdown_405(self, server):
        assert fetch(server, "/shutdown")[0] == 405


class TestGracefulDrain:
    def test_close_waits_for_inflight_miss(self, tmp_path, monkeypatch):
        """An in-flight miss finishes (and lands in the cache) before
        close() returns — shutdown never tears a computation."""
        real = sweep_mod._simulate_point
        entered = threading.Event()

        def slow(point):
            entered.set()
            time.sleep(0.5)
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", slow)
        srv = ServeServer(cache_dir=str(tmp_path / "cache"))
        srv.start()
        response = {}

        def hit():
            response["got"] = fetch(srv, POINT)

        thread = threading.Thread(target=hit)
        thread.start()
        assert entered.wait(30)
        srv.close()                     # must drain, not abandon
        thread.join(timeout=30)
        status, payload = response["got"]
        assert status == 200 and payload["cache"] == "miss"
        assert srv.service.scheduler.completed == 1
        assert srv.service.scheduler.failed == 0


class TestPointFromQuery:
    def test_canonical_point_roundtrip(self):
        point = point_from_query({"benchmark": "BFS", "dataset": "KRON",
                                  "label": "CDP+T", "threshold": "16",
                                  "scale": SCALE})
        assert point.describe() == "BFS/KRON CDP+T [T=16] @0.08"

    def test_masking_applied(self):
        bare = point_from_query({"benchmark": "BFS", "dataset": "KRON"})
        noisy = point_from_query({"benchmark": "BFS", "dataset": "KRON",
                                  "threshold": "64", "coarsen": "8",
                                  "group_blocks": "4"})
        assert bare == noisy                 # CDP masks all of them

    def test_service_close_is_idempotent(self, tmp_path):
        service = QueryService(cache_dir=str(tmp_path / "c"))
        service.close()
        service.close()


def fetch_with_headers(server, path, headers, data=None):
    """Like :func:`fetch`, with extra request headers."""
    url = "http://%s:%d%s" % (*server.address, path)
    payload = json.dumps(data).encode() if data is not None else None
    request = urllib.request.Request(url, data=payload, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestPriorityAndDeadline:
    def test_expired_deadline_sheds_without_simulating(self, server,
                                                       monkeypatch):
        """A cold point whose deadline already passed is 504'd without a
        single simulator call, and the shed is visible in /metrics."""
        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        status, payload = fetch_with_headers(
            server, POINT, {"X-Repro-Deadline-Ms": "0"})
        assert status == 504
        assert payload["error"] == "DeadlineExceededError"
        assert payload["retry"] is True
        assert "point" in payload
        assert server.service.scheduler.shed == 1
        assert server.service.scheduler.completed == 0
        _, _, text = fetch_raw(server, "/metrics")
        assert 'repro_queue_shed_total{reason="expired-on-submit"}' in text

    def test_warm_hit_ignores_expired_deadline(self, server, monkeypatch):
        assert fetch(server, POINT)[0] == 200        # populate
        ban_executors(monkeypatch, server.service)
        status, payload = fetch_with_headers(
            server, POINT, {"X-Repro-Deadline-Ms": "0"})
        assert status == 200
        assert payload["cache"] == "hit"
        assert server.service.scheduler.shed == 0

    def test_priority_header_accepted(self, server):
        status, payload = fetch_with_headers(
            server, POINT, {"X-Repro-Priority": "high",
                            "X-Repro-Request-Id": "req-42"})
        assert status == 200
        assert payload["cache"] == "miss"

    def test_bad_priority_is_400(self, server):
        status, payload = fetch_with_headers(
            server, POINT, {"X-Repro-Priority": "urgent"})
        assert status == 400
        assert "priority" in payload["message"]

    def test_bad_deadline_is_400(self, server):
        for bad in ("-5", "soon"):
            status, payload = fetch_with_headers(
                server, POINT, {"X-Repro-Deadline-Ms": bad})
            assert status == 400
            assert "Deadline" in payload["message"]

    def test_request_timeout_bounds_miss_waits(self, tmp_path, monkeypatch):
        """Satellite: a miss slower than --request-timeout answers a
        structured 504 with retry:true; the task still finishes and
        lands in the cache, so the retry is warm."""
        entered, gate = threading.Event(), threading.Event()
        real = sweep_mod._simulate_point

        def slow(point):
            entered.set()
            assert gate.wait(30), "test gate never opened"
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", slow)
        srv = ServeServer(cache_dir=str(tmp_path / "cache"),
                          miss_workers=1, request_timeout=0.2)
        srv.start()
        try:
            status, payload = fetch(srv, POINT)
            assert status == 504
            assert payload["error"] == "TimeoutError"
            assert payload["retry"] is True
            gate.set()
            deadline = time.time() + 30
            while srv.service.scheduler.completed < 1:
                assert time.time() < deadline, "miss never completed"
                time.sleep(0.01)
            status, payload = fetch(srv, POINT)
            assert status == 200
            assert payload["cache"] == "hit"
        finally:
            gate.set()
            srv.close()

    def test_sweep_deadline_timeout_without_request_timeout(
            self, tmp_path, monkeypatch):
        """Regression: with --request-timeout 0 (unbounded budget) a
        deadline-bounded /sweep wait that expires mid-simulation must
        answer the structured 504 retry payload — it used to format None
        ('%.3f' % None → TypeError) and fall through to a generic 500.
        The payload must also report the wait that actually expired (the
        deadline), never the request-timeout budget."""
        entered, gate = threading.Event(), threading.Event()
        real = sweep_mod._simulate_point

        def slow(point):
            entered.set()
            assert gate.wait(30), "test gate never opened"
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", slow)
        srv = ServeServer(cache_dir=str(tmp_path / "cache"),
                          miss_workers=1, request_timeout=0)
        srv.start()
        try:
            status, payload = fetch(srv, "/sweep", data={
                "pairs": ["BFS:KRON"], "variants": ["CDP+T"],
                "params": {"threshold": 16}, "scale": float(SCALE),
                "deadline_ms": 1000})
            assert status == 504
            assert payload["error"] == "TimeoutError"
            assert payload["retry"] is True
            assert "not done within" in payload["message"]
        finally:
            gate.set()
            srv.close()

    def test_timeout_payload_guards_unbounded_wait(self):
        from repro.harness.serve import _timeout_payload
        payload = _timeout_payload("sweep (3 points)", None)
        assert payload["error"] == "TimeoutError"
        assert payload["retry"] is True
        assert "sweep (3 points)" in payload["message"]

    def test_sweep_all_misses_shed_is_504(self, server, monkeypatch):
        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        status, payload = fetch(server, "/sweep", data={
            "pairs": ["BFS:KRON"], "variants": ["CDP", "CDP+T"],
            "params": {"threshold": 16}, "scale": float(SCALE),
            "deadline_ms": 0})
        assert status == 504
        assert payload["error"] == "DeadlineExceededError"
        assert payload["retry"] is True
        assert payload["stats"]["shed"] == 2
        assert payload["stats"]["points"] == 2
        assert len(payload["results"]) == 2
        for entry in payload["results"]:
            assert entry["status"] == "error"
            assert entry["error"] == "DeadlineExceededError"
            assert entry["retry"] is True

    def test_sweep_partial_shed_stays_200(self, server, monkeypatch):
        """Warm points answer under an expired deadline; only the cold
        remainder sheds, so the request succeeds with stats.shed set."""
        warm = fetch(server, "/sweep", data={
            "pairs": ["BFS:KRON"], "variants": ["CDP"],
            "scale": float(SCALE)})
        assert warm[0] == 200
        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        status, payload = fetch(server, "/sweep", data={
            "pairs": ["BFS:KRON"], "variants": ["CDP", "CDP+T"],
            "params": {"threshold": 16}, "scale": float(SCALE),
            "deadline_ms": 0})
        assert status == 200
        assert payload["stats"]["hits"] == 1
        assert payload["stats"]["shed"] == 1
        assert payload["stats"]["failed"] == 0
        statuses = [entry["status"] for entry in payload["results"]]
        assert sorted(statuses) == ["error", "ok"]

    def test_sweep_body_priority_and_bad_priority(self, server):
        status, payload = fetch(server, "/sweep", data={
            "pairs": ["BFS:KRON"], "variants": ["CDP"],
            "scale": float(SCALE), "priority": "low"})
        assert status == 200
        status, payload = fetch(server, "/sweep", data={
            "pairs": ["BFS:KRON"], "variants": ["CDP"],
            "scale": float(SCALE), "priority": "whenever"})
        assert status == 400

    def test_cache_info_reports_index_and_priority_blocks(self, server):
        fetch(server, POINT)            # miss -> store
        fetch(server, POINT)            # hit -> meta bump
        status, payload = fetch(server, "/cache/info")
        assert status == 200
        index = payload["index"]
        assert index["entries"] == 1
        assert index["by_kind"]["result"]["hits"] == 1
        assert index["by_kind"]["result"]["sim_cost_seconds"] >= 0
        queue = payload["queue"]
        assert queue["by_priority"] == {}
        assert queue["shed"] == 0

    def test_healthz_reports_request_timeout(self, server):
        status, payload = fetch(server, "/healthz")
        assert status == 200
        assert payload["request_timeout"] == pytest.approx(300.0)
