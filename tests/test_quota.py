"""Per-client quotas + API-key auth (repro.harness.quota + serve).

Covers the multi-tenant hardening contract: token-bucket admission
(refill math, burst caps, Retry-After arithmetic) and the in-flight
miss cap, per-client isolation (one tenant's storm never consumes
another's tokens), lease release on every exit path, the api-keys file
loader's fail-at-startup validation, constant-time key lookup, and the
HTTP mapping — 401 for missing/bad keys with ``/healthz``/``/metrics``
open, 429 with a ``Retry-After`` header for over-quota misses, warm
cache hits never metered (enforced structurally: the quota layer is
banned outright on the hit path) — plus bounded metric label
cardinality for client-supplied identities.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import AuthError, QuotaExceededError, ReproError
from repro.harness.quota import (ApiKey, ApiKeyAuth, ClientQuota,
                                 METRIC_CLIENT_OTHER, QuotaManager,
                                 load_api_keys)
from repro.harness.serve import ServeServer

SCALE = "0.08"


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def manager(clock, **kwargs):
    return QuotaManager(clock=clock, **kwargs)


class TestClientQuota:
    def test_burst_defaults_to_twice_rate(self):
        assert ClientQuota(rate=5).burst == 10.0
        assert ClientQuota(rate=0.25).burst == 1.0     # floor of 1
        assert ClientQuota(rate=5, burst=3).burst == 3.0

    def test_unlimited(self):
        assert ClientQuota().unlimited
        assert not ClientQuota(rate=1).unlimited
        assert not ClientQuota(max_inflight=1).unlimited

    @pytest.mark.parametrize("bad", (
        {"rate": 0}, {"rate": -1}, {"burst": 0.5},
        {"max_inflight": 0}, {"max_inflight": -2}))
    def test_validation(self, bad):
        with pytest.raises(ReproError):
            ClientQuota(**bad)

    def test_merged_overrides_non_none_axes_only(self):
        default = ClientQuota(rate=10, burst=20, max_inflight=8)
        merged = default.merged(ClientQuota(rate=2))
        assert (merged.rate, merged.max_inflight) == (2.0, 8)
        assert default.merged(None) is default


class TestTokenBucket:
    def test_burst_then_rate_rejection_with_retry_after(self):
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(rate=2, burst=2))
        quotas.admit("alice")
        quotas.admit("alice")
        with pytest.raises(QuotaExceededError) as info:
            quotas.admit("alice")
        assert info.value.reason == "rate"
        assert info.value.retry_after == pytest.approx(0.5)

    def test_refill_is_rate_times_elapsed_capped_at_burst(self):
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(rate=4, burst=2))
        quotas.admit("alice")
        quotas.admit("alice")
        clock.advance(0.25)             # refills exactly one token
        quotas.admit("alice")
        with pytest.raises(QuotaExceededError):
            quotas.admit("alice")
        clock.advance(100.0)            # refill saturates at burst=2
        quotas.admit("alice")
        quotas.admit("alice")
        with pytest.raises(QuotaExceededError):
            quotas.admit("alice")

    def test_batch_cost_charged_atomically(self):
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(rate=1, burst=4))
        with pytest.raises(QuotaExceededError) as info:
            quotas.admit("alice", cost=5)
        # Rejected whole: nothing was deducted, a cost-4 batch still fits.
        assert info.value.retry_after == pytest.approx(1.0)
        quotas.admit("alice", cost=4)

    def test_clients_are_isolated(self):
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(rate=1, burst=1))
        quotas.admit("alice")
        with pytest.raises(QuotaExceededError):
            quotas.admit("alice")
        quotas.admit("bob")             # alice's storm spent nothing of bob's

    def test_tokens_are_rate_not_a_pool(self):
        # Releasing a lease returns the in-flight slot, never the token.
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(rate=1, burst=1))
        lease = quotas.admit("alice")
        lease.release()
        with pytest.raises(QuotaExceededError):
            quotas.admit("alice")


class TestInflightCap:
    def test_cap_and_release(self):
        clock = FakeClock()
        quotas = manager(clock,
                         default=ClientQuota(rate=100, burst=100,
                                             max_inflight=2))
        leases = [quotas.admit("alice"), quotas.admit("alice")]
        with pytest.raises(QuotaExceededError) as info:
            quotas.admit("alice")
        assert info.value.reason == "inflight"
        assert info.value.retry_after > 0
        leases[0].release()
        assert quotas.inflight("alice") == 1
        quotas.admit("alice")

    def test_release_is_idempotent(self):
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(max_inflight=2))
        lease = quotas.admit("alice")
        lease.release()
        lease.release()
        assert quotas.inflight("alice") == 0
        assert quotas.total_inflight() == 0

    def test_inflight_only_quota_skips_token_accounting(self):
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(max_inflight=1))
        lease = quotas.admit("alice")
        with pytest.raises(QuotaExceededError):
            quotas.admit("alice")
        lease.release()
        quotas.admit("alice")


class TestQuotaManager:
    def test_unlimited_clients_get_the_free_lease(self):
        quotas = QuotaManager()         # all axes None
        lease = quotas.admit("anyone")
        lease.release()
        assert quotas.total_inflight() == 0
        assert quotas.stats_dict()["clients"] == {}

    def test_zero_cost_is_free(self):
        quotas = QuotaManager(default=ClientQuota(rate=1, burst=1))
        assert quotas.admit("alice", cost=0) is not None
        quotas.admit("alice", cost=1)   # the token is still there

    def test_metric_label_bounded_to_configured_clients(self):
        quotas = QuotaManager(default=ClientQuota(rate=1),
                              overrides={"alice": ClientQuota(rate=9)},
                              known=("bob",))
        assert quotas.metric_label("alice") == "alice"
        assert quotas.metric_label("bob") == "bob"
        assert quotas.metric_label("mallory-%d" % 10**9) \
            == METRIC_CLIENT_OTHER

    def test_stats_dict_shape(self):
        clock = FakeClock()
        quotas = manager(clock, default=ClientQuota(rate=2, burst=2))
        lease = quotas.admit("alice")
        stats = quotas.stats_dict()
        assert stats["default"] == {"rate": 2.0, "burst": 2.0,
                                    "max_inflight": None}
        assert stats["clients"]["alice"] == {
            "quota": {"rate": 2.0, "burst": 2.0, "max_inflight": None},
            "tokens": 1.0, "inflight": 1}
        lease.release()
        assert quotas.stats_dict()["clients"]["alice"]["inflight"] == 0


class TestLoadApiKeys:
    def test_string_and_object_entries(self, tmp_path):
        path = tmp_path / "keys.json"
        path.write_text(json.dumps({
            "k-probe": "probe",
            "k-alice": {"client": "alice", "rate": 20, "burst": 40},
            "k-batch": {"client": "batch", "max_inflight": 2}}))
        keys = load_api_keys(str(path))
        assert keys["k-probe"].client == "probe"
        assert keys["k-probe"].quota is None
        assert keys["k-alice"].quota.rate == 20.0
        assert keys["k-alice"].quota.burst == 40.0
        assert keys["k-batch"].quota.max_inflight == 2

    @pytest.mark.parametrize("payload", (
        "not json", "[]", "{}", '{"k": 42}', '{"k": {"rate": 1}}',
        '{"k": {"client": ""}}', '{"k": {"client": "a", "bogus": 1}}',
        '{"k": {"client": "a", "rate": -1}}', '{"": "a"}'))
    def test_malformed_files_fail_at_load(self, tmp_path, payload):
        path = tmp_path / "keys.json"
        path.write_text(payload)
        with pytest.raises(ReproError):
            load_api_keys(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_api_keys(str(tmp_path / "nope.json"))


class TestApiKeyAuth:
    def auth(self):
        return ApiKeyAuth({
            "k-alice": ApiKey("k-alice", "alice", ClientQuota(rate=5)),
            "k-alice2": ApiKey("k-alice2", "alice"),
            "k-bob": ApiKey("k-bob", "bob")})

    def test_authenticate(self):
        auth = self.auth()
        assert auth.authenticate("k-bob").client == "bob"
        for bad in ("", None, "k-alic", "k-alicee", "K-ALICE"):
            with pytest.raises(AuthError):
                auth.authenticate(bad)

    def test_clients_and_overrides(self):
        auth = self.auth()
        assert auth.clients == ["alice", "bob"]
        overrides = auth.quota_overrides()
        assert set(overrides) == {"alice"}
        assert overrides["alice"].rate == 5.0
        assert len(auth) == 3

    def test_needs_at_least_one_key(self):
        with pytest.raises(ReproError):
            ApiKeyAuth({})


# -- HTTP integration ---------------------------------------------------------

def fetch(server, path, headers=None, data=None):
    """(status, response headers, decoded JSON body)."""
    url = "http://%s:%d%s" % (*server.address, path)
    payload = json.dumps(data).encode() if data is not None else None
    try:
        with urllib.request.urlopen(
                urllib.request.Request(url, data=payload,
                                       headers=headers or {}),
                timeout=60) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def cold_point(threshold):
    return ("/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
            "&threshold=%d&scale=%s" % (threshold, SCALE))


@pytest.fixture
def quota_server(tmp_path):
    quotas = QuotaManager(default=ClientQuota(rate=0.001, burst=1),
                          known=("alice", "bob"))
    srv = ServeServer(cache_dir=str(tmp_path / "cache"), quota=quotas)
    srv.start()
    yield srv
    srv.close()


@pytest.fixture
def auth_server(tmp_path):
    keys = {"k-alice": ApiKey("k-alice", "alice",
                              ClientQuota(rate=0.001, burst=1)),
            "k-bob": ApiKey("k-bob", "bob")}
    auth = ApiKeyAuth(keys)
    quotas = QuotaManager(overrides=auth.quota_overrides(),
                          known=auth.clients)
    srv = ServeServer(cache_dir=str(tmp_path / "cache"), quota=quotas,
                      api_keys=auth)
    srv.start()
    yield srv
    srv.close()


class TestQuotaOverHttp:
    def test_over_quota_miss_gets_429_with_retry_after(self, quota_server):
        alice = {"X-Repro-Client": "alice"}
        status, _, payload = fetch(quota_server, cold_point(16), alice)
        assert status == 200 and payload["cache"] == "miss"
        status, headers, payload = fetch(quota_server, cold_point(32),
                                         alice)
        assert status == 429
        assert payload["error"] == "QuotaExceededError"
        assert payload["retry"] is True
        assert payload["reason"] == "rate"
        assert int(headers["Retry-After"]) >= 1

    def test_tenants_do_not_share_buckets(self, quota_server):
        status, _, _ = fetch(quota_server, cold_point(16),
                             {"X-Repro-Client": "alice"})
        assert status == 200
        status, _, _ = fetch(quota_server, cold_point(48),
                             {"X-Repro-Client": "alice"})
        assert status == 429
        # bob's bucket is untouched by alice's exhaustion
        status, _, _ = fetch(quota_server, cold_point(64),
                             {"X-Repro-Client": "bob"})
        assert status == 200

    def test_warm_hits_never_touch_the_quota_layer(self, quota_server,
                                                   monkeypatch):
        alice = {"X-Repro-Client": "alice"}
        status, _, _ = fetch(quota_server, cold_point(16), alice)
        assert status == 200

        def banned(*args, **kwargs):
            raise AssertionError("quota admission on the warm hit path")

        monkeypatch.setattr(quota_server.service.quota, "admit", banned)
        status, _, payload = fetch(quota_server, cold_point(16), alice)
        assert status == 200 and payload["cache"] == "hit"

    def test_429_leaves_nothing_queued_and_no_inflight_leak(
            self, quota_server):
        alice = {"X-Repro-Client": "alice"}
        status, _, _ = fetch(quota_server, cold_point(16), alice)
        status, _, _ = fetch(quota_server, cold_point(32), alice)
        assert status == 429
        _, _, info = fetch(quota_server, "/cache/info")
        assert info["queue"]["depth"] == 0
        for entry in info["quota"]["clients"].values():
            assert entry["inflight"] == 0

    def test_over_quota_sweep_batch_rejected_whole(self, quota_server):
        body = {"pairs": ["BFS:KRON", "SSSP:KRON"], "variants": ["CDP+T"],
                "params": {"threshold": 80}, "scale": float(SCALE)}
        status, headers, payload = fetch(
            quota_server, "/sweep", {"X-Repro-Client": "alice"}, body)
        assert status == 429 and "Retry-After" in headers
        _, _, info = fetch(quota_server, "/cache/info")
        assert info["queue"]["submitted"] == 0

    def test_health_and_metrics_surface_quota_state(self, quota_server):
        _, _, health = fetch(quota_server, "/healthz")
        assert health["quota"] is True and health["auth"] is False
        fetch(quota_server, cold_point(16), {"X-Repro-Client": "alice"})
        fetch(quota_server, cold_point(32), {"X-Repro-Client": "alice"})
        url = "http://%s:%d/metrics" % quota_server.address
        text = urllib.request.urlopen(url, timeout=60).read().decode()
        assert ('repro_quota_rejections_total{client="alice",reason="rate"}'
                in text)
        assert 'repro_quota_tokens{client="alice"}' in text

    def test_unknown_client_buckets_under_other_in_metrics(
            self, quota_server):
        evil = {"X-Repro-Client": "mallory-unbounded-identity"}
        fetch(quota_server, cold_point(96), evil)
        fetch(quota_server, cold_point(112), evil)
        url = "http://%s:%d/metrics" % quota_server.address
        text = urllib.request.urlopen(url, timeout=60).read().decode()
        assert "mallory-unbounded-identity" not in text
        assert 'repro_quota_rejections_total{client="other"' in text


class TestAuthOverHttp:
    def test_401_without_key_except_open_routes(self, auth_server):
        for path in ("/cache/info", cold_point(16)):
            status, _, payload = fetch(auth_server, path)
            assert status == 401
            assert payload["error"] == "AuthError"
        assert fetch(auth_server, "/healthz")[0] == 200
        url = "http://%s:%d/metrics" % auth_server.address
        assert urllib.request.urlopen(url, timeout=60).status == 200

    def test_valid_key_and_bearer_fallback(self, auth_server):
        assert fetch(auth_server, "/cache/info",
                     {"X-Repro-Api-Key": "k-bob"})[0] == 200
        assert fetch(auth_server, "/cache/info",
                     {"Authorization": "Bearer k-bob"})[0] == 200
        assert fetch(auth_server, "/cache/info",
                     {"X-Repro-Api-Key": "wrong"})[0] == 401

    def test_key_identity_feeds_the_quota_layer(self, auth_server):
        # alice's key carries a 1-burst quota; her identity comes from
        # the key, not any header she sends.
        key = {"X-Repro-Api-Key": "k-alice",
               "X-Repro-Client": "someone-else"}
        status, _, _ = fetch(auth_server, cold_point(16), key)
        assert status == 200
        status, _, payload = fetch(auth_server, cold_point(32), key)
        assert status == 429
        _, _, info = fetch(auth_server, "/cache/info",
                           {"X-Repro-Api-Key": "k-bob"})
        assert "alice" in info["quota"]["clients"]
        assert "someone-else" not in info["quota"]["clients"]

    def test_unquotad_key_is_not_throttled(self, auth_server):
        bob = {"X-Repro-Api-Key": "k-bob"}
        for threshold in (200, 208):
            status, _, _ = fetch(auth_server, cold_point(threshold), bob)
            assert status == 200
