"""MSTV — Borůvka minimum spanning tree, *verify* kernel (Lonestar-style).

Verification walks every vertex's adjacency list and tallies, per component,
intra-component edges and the lightest cross edge seen — checking the
component structure is consistent. Same nested-parallel shape as MSTF but
with heavier per-edge work (two counters).
"""

from ..runtime.host import blocks
from .common import INF, Benchmark
from .mstf import MSTFBenchmark, skewed_components

_CHILD = """
__global__ void mstv_child(int *col, int *wts, int *comp, int *intra,
                           int *cross, int cu, int start, int degree) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int v = col[start + tid];
        int w = wts[start + tid];
        if (comp[v] == cu) {
            atomicAdd(&intra[cu], 1);
        } else {
            atomicMin(&cross[cu], w);
        }
    }
}
"""

_CDP_PARENT = """
__global__ void mstv_kernel(int *row, int *col, int *wts, int *comp,
                            int *intra, int *cross, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int start = row[u];
        int degree = row[u + 1] - start;
        int cu = comp[u];
        if (degree > 0) {
            mstv_child<<<(degree + %(cb)d - 1) / %(cb)d, %(cb)d>>>(
                col, wts, comp, intra, cross, cu, start, degree);
        }
    }
}
"""

_NOCDP = """
__global__ void mstv_kernel(int *row, int *col, int *wts, int *comp,
                            int *intra, int *cross, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int start = row[u];
        int end = row[u + 1];
        int cu = comp[u];
        for (int i = start; i < end; ++i) {
            int v = col[i];
            int w = wts[i];
            if (comp[v] == cu) {
                atomicAdd(&intra[cu], 1);
            } else {
                atomicMin(&cross[cu], w);
            }
        }
    }
}
"""


class MSTVBenchmark(Benchmark):
    name = "MSTV"
    dataset_names = ("KRON", "CNR", "ROAD-NY")
    child_block = 32

    def cdp_source(self):
        return _CHILD + _CDP_PARENT % {"cb": self.child_block}

    def nocdp_source(self):
        return _NOCDP

    def build_dataset(self, dataset_name, scale=1.0):
        return MSTFBenchmark().build_dataset(dataset_name, scale)

    def drive(self, device, graph):
        n = graph.num_vertices
        row = device.upload(graph.row)
        col = device.upload(graph.col)
        wts = device.upload(graph.weights)
        comp = device.upload(skewed_components(n))
        intra = device.alloc("int", n)
        cross = device.alloc("int", n, fill=INF)
        device.launch("mstv_kernel", blocks(n, 256), 256,
                      row, col, wts, comp, intra, cross, n)
        device.sync()
        return {"intra": intra.to_numpy(), "cross": cross.to_numpy()}
