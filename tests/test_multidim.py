"""Multi-dimensional kernel execution and transformation tests.

The paper's transformations are presented in 1-D "for simplicity" with the
note that multi-dimensional kernels get one loop per dimension (Sec. III-B,
IV-B). The engine executes 2-D/3-D grids, the serializer emits loops per
dimension, coarsening strides the x dimension only, and aggregation —
whose scan/search is inherently 1-D — skips multi-dimensional children.
"""

import numpy as np
import pytest

from repro.engine import Dim3, Module, alloc_for_type, run_grid
from repro.harness import outputs_match
from repro.minicuda.ast import Type
from repro.runtime import Device, blocks
from repro.sim import Trace
from repro.transforms import OptConfig, transform


class TestEngine2D:
    def test_2d_indexing(self):
        src = """
        __global__ void k(int *out, int width) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            out[y * width + x] = y * 100 + x;
        }
        """
        out = alloc_for_type(Type("int"), 8 * 6)
        module = Module(src)
        assert module.kernel("k").multi_dim
        run_grid(module, Trace(), "k", Dim3(2, 3), Dim3(4, 2), (out, 8))
        expected = np.array([[y * 100 + x for x in range(8)]
                             for y in range(6)]).ravel()
        assert np.array_equal(out.to_numpy(), expected)

    def test_3d_block(self):
        src = """
        __global__ void k(int *out) {
            int idx = threadIdx.z * blockDim.y * blockDim.x
                      + threadIdx.y * blockDim.x + threadIdx.x;
            out[idx] = idx * 2;
        }
        """
        out = alloc_for_type(Type("int"), 24)
        run_grid(Module(src), Trace(), "k", Dim3(1), Dim3(2, 3, 4), (out,))
        assert list(out.array) == [i * 2 for i in range(24)]

    def test_2d_barrier_kernel(self):
        src = """
        __global__ void k(int *buf, int *out, int width) {
            int idx = threadIdx.y * blockDim.x + threadIdx.x;
            buf[idx] = idx + 1;
            __syncthreads();
            out[idx] = buf[(idx + 1) % (blockDim.x * blockDim.y)];
        }
        """
        buf = alloc_for_type(Type("int"), 6)
        out = alloc_for_type(Type("int"), 6)
        run_grid(Module(src), Trace(), "k", Dim3(1), Dim3(3, 2),
                 (buf, out, 3))
        assert list(out.array) == [2, 3, 4, 5, 6, 1]

    def test_trace_records_totals(self):
        src = "__global__ void k(int *p) { p[0] = threadIdx.y; }"
        trace = Trace()
        run_grid(Module(src), trace, "k", Dim3(2, 2), Dim3(4, 4),
                 (alloc_for_type(Type("int"), 1),))
        grid = trace.grids[0]
        assert grid.grid_dim == 4
        assert grid.block_dim == 16

    def test_one_dim_kernel_with_2d_launch_runs_all_copies(self):
        src = "__global__ void k(int *p) { atomicAdd(&p[0], 1); }"
        out = alloc_for_type(Type("int"), 1)
        run_grid(Module(src), Trace(), "k", Dim3(2, 3), Dim3(4, 2), (out,))
        assert out[0] == 2 * 3 * 4 * 2


MATRIX_SRC = """
__global__ void tile_scale(float *m, int width, int rows, int row0,
                           float factor) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    if (x < width && y < rows) {
        m[(row0 + y) * width + x] = m[(row0 + y) * width + x] * factor;
    }
}

__global__ void parent(float *m, int *row_counts, int width, int nseg) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < nseg) {
        int rows = row_counts[t];
        int row0 = t * 8;
        if (rows > 0) {
            tile_scale<<<dim3((width + 7) / 8, (rows + 3) / 4, 1),
                         dim3(8, 4, 1)>>>(m, width, rows, row0, 1.5f);
        }
    }
}
"""


class TestMultiDimTransforms:
    def _run(self, config):
        if config is None:
            module = Module(MATRIX_SRC)
        else:
            result = transform(MATRIX_SRC, config)
            module = Module(result.program, result.meta)
        dev = Device(module)
        nseg, width = 30, 20
        rng = np.random.default_rng(2)
        m = dev.upload(rng.random(nseg * 8 * width))
        counts = dev.upload(rng.integers(0, 9, nseg))
        dev.launch("parent", blocks(nseg, 32), 32, m, counts, width, nseg)
        dev.sync()
        return {"m": m.to_numpy()}, dev

    def test_thresholding_serializes_2d_child(self):
        reference, _ = self._run(None)
        config = OptConfig(threshold=1 << 20)   # serialize everything
        outputs, dev = self._run(config)
        assert outputs_match(reference, outputs)
        assert dev.trace.total_launches("device") == 0

    def test_thresholding_partial_2d(self):
        reference, _ = self._run(None)
        outputs, dev = self._run(OptConfig(threshold=64))
        assert outputs_match(reference, outputs)

    def test_coarsening_2d_child(self):
        reference, _ = self._run(None)
        outputs, _ = self._run(OptConfig(coarsen_factor=2))
        assert outputs_match(reference, outputs)

    def test_aggregation_skips_2d_child(self):
        result = transform(MATRIX_SRC, OptConfig(aggregate="block"))
        assert not result.meta.agg_specs
        assert result.meta.skipped_sites[0][2] == "multi-dimensional kernel"
        reference, _ = self._run(None)
        outputs, _ = self._run(OptConfig(aggregate="block"))
        assert outputs_match(reference, outputs)

    def test_full_pipeline_2d(self):
        reference, _ = self._run(None)
        config = OptConfig(threshold=32, coarsen_factor=2,
                           aggregate="multiblock")
        outputs, _ = self._run(config)
        assert outputs_match(reference, outputs)

    def test_fig4_dim3_pattern_extracted(self):
        result = transform(MATRIX_SRC, OptConfig(threshold=16))
        assert "int _threads = width;" in result.source
