"""Parallel sweep engine for the evaluation's dense run grids.

Figures 9-12, Table 1, and the autotuner are all sweeps over
(benchmark × dataset × variant × tuning params). This module executes such
a grid as a declarative list of :class:`SweepPoint`\\ s, fanned out over a
pluggable :class:`Backend` with deterministic result ordering, with an
optional persistent :class:`~repro.harness.cache.ResultCache` so repeated
runs skip already-simulated points.

Backends (``backend=`` on :class:`SweepExecutor`, ``--backend`` on the
CLI):

* ``serial`` — in-process loop; the default for ``jobs <= 1``;
* ``process`` — a ``multiprocessing`` pool (fork where available); the
  default for ``jobs > 1``;
* ``thread`` — a ``concurrent.futures.ThreadPoolExecutor``; the simulator
  is GIL-bound pure Python so this rarely speeds anything up, but it
  shares the in-process dataset memo and needs no pickling;
* ``futures`` — a ``concurrent.futures.ProcessPoolExecutor``;
* ``remote`` — shard chunks over ``repro worker serve`` daemons on other
  machines (:mod:`repro.harness.remote`; needs ``workers=`` /
  ``--workers``).

Work is submitted in chunks (``chunk_size=``, auto-sized by default) and
every worker failure is attributed to the point that died: the raised
:class:`SweepPointError` carries ``SweepPoint.describe()`` and the worker
traceback instead of an anonymous pool stack. With ``on_error="continue"``
the executor runs past failures and returns a :class:`PointFailure` in the
failed point's slot.

Points are specified by *names* (benchmark, dataset, scale) rather than
live objects so they pickle cheaply; each worker rebuilds the benchmark and
dataset locally (dataset construction is seeded, hence deterministic) and
memoizes them across the points it serves. The simulator itself is
single-threaded and deterministic, so a parallel sweep returns RunResults
identical to a serial one — the test suite enforces this across every
backend.
"""

import concurrent.futures
import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field

from ..benchmarks import get_benchmark
from ..errors import ReproError
from ..sim.config import DeviceConfig
from .cache import ResultCache
from .metrics import REGISTRY
from .runner import run_variant
from .variants import TuningParams, mask_params

__all__ = [
    "SweepPoint", "SweepExecutor", "SweepStats", "SweepPointError",
    "PointFailure", "Backend", "BACKENDS", "run_sweep", "sweep_grid",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (benchmark, dataset, variant, params, device, scale) cell."""

    benchmark: str
    dataset: str
    label: str = "CDP"
    params: TuningParams = field(default_factory=TuningParams)
    device_config: DeviceConfig = field(default_factory=DeviceConfig)
    scale: float = 0.25

    def spec(self):
        """Canonical JSON-able description (the cache key input and the
        remote backend's wire form; invert with :meth:`from_spec`)."""
        return {
            "benchmark": self.benchmark,
            "dataset": self.dataset,
            "label": self.label,
            "params": asdict(self.params),
            "device_config": asdict(self.device_config),
            "scale": repr(float(self.scale)),
        }

    @classmethod
    def from_spec(cls, spec):
        """Rebuild a point from a :meth:`spec` payload (exact roundtrip).

        >>> point = SweepPoint("BFS", "KRON", "CDP+T",
        ...                    TuningParams(threshold=16))
        >>> SweepPoint.from_spec(point.spec()) == point
        True
        """
        return cls(benchmark=spec["benchmark"], dataset=spec["dataset"],
                   label=spec["label"],
                   params=TuningParams(**spec["params"]),
                   device_config=DeviceConfig(**spec["device_config"]),
                   scale=float(spec["scale"]))

    def describe(self):
        """Human-readable one-liner used in failure attribution.

        >>> SweepPoint("BFS", "KRON", "CDP+T",
        ...            TuningParams(threshold=16)).describe()
        'BFS/KRON CDP+T [T=16] @0.25'
        """
        return "%s/%s %s [%s] @%g" % (self.benchmark, self.dataset,
                                      self.label, self.params.describe(),
                                      self.scale)


def sweep_grid(pairs, labels, scale=0.25, params=None, params_for=None,
               device_config=None):
    """Expand a declarative (pairs × labels) grid into SweepPoints.

    *params_for*, if given, is a ``(bench, dataset, label) -> TuningParams``
    callable; otherwise every point shares *params*, canonicalized per
    label by :func:`~repro.harness.variants.mask_params` (so e.g. a plain
    CDP point keys and displays identically whatever threshold or group
    size the grid carries).

    >>> points = sweep_grid([("BFS", "KRON")], ["CDP", "CDP+T"],
    ...                     params=TuningParams(threshold=16))
    >>> [p.describe() for p in points]
    ['BFS/KRON CDP [-] @0.25', 'BFS/KRON CDP+T [T=16] @0.25']
    """
    device_config = device_config or DeviceConfig()
    params = params or TuningParams()
    points = []
    for bench_name, dataset_name in pairs:
        for label in labels:
            if params_for is not None:
                point_params = params_for(bench_name, dataset_name, label)
            else:
                point_params = mask_params(label, params)
            points.append(SweepPoint(bench_name, dataset_name, label,
                                     point_params, device_config, scale))
    return points


# -- errors -------------------------------------------------------------------

class SweepPointError(ReproError):
    """A worker died simulating one point; names the point, not the pool."""

    def __init__(self, point, error, message, worker_traceback=""):
        self.point = point
        self.error = error
        self.worker_traceback = worker_traceback
        super().__init__("sweep point failed: %s: %s: %s"
                         % (point.describe(), error, message))


@dataclass
class PointFailure:
    """Failed-point placeholder returned when ``on_error="continue"``.

    Occupies the failed point's slot in the result list so ordering is
    preserved; carries the same attribution a raised
    :class:`SweepPointError` would.
    """

    point: SweepPoint
    error: str                # exception type name, e.g. "ReproError"
    message: str
    worker_traceback: str = ""

    def describe(self):
        return "%s: %s: %s" % (self.point.describe(), self.error,
                               self.message)

    def to_error(self):
        return SweepPointError(self.point, self.error, self.message,
                               self.worker_traceback)


# -- worker-side execution ----------------------------------------------------

#: Per-process (benchmark, dataset) memo — points of one sweep usually share
#: a handful of datasets, and construction is deterministic, so reuse is
#: both safe and a large constant-factor win. The thread backend shares it
#: across worker threads, so lookup/insert/evict hold a lock (dataset
#: construction itself runs outside it; a racing duplicate build is
#: wasteful but deterministic, hence harmless).
_DATASET_MEMO = {}
_DATASET_MEMO_LIMIT = 8
_DATASET_MEMO_LOCK = threading.Lock()


def _bench_and_data(benchmark, dataset, scale):
    key = (benchmark, dataset, scale)
    with _DATASET_MEMO_LOCK:
        entry = _DATASET_MEMO.get(key)
    if entry is None:
        bench = get_benchmark(benchmark)
        entry = (bench, bench.build_dataset(dataset, scale))
        with _DATASET_MEMO_LOCK:
            while (key not in _DATASET_MEMO
                    and len(_DATASET_MEMO) >= _DATASET_MEMO_LIMIT):
                _DATASET_MEMO.pop(next(iter(_DATASET_MEMO)))
            entry = _DATASET_MEMO.setdefault(key, entry)
    return entry


def _simulate_point(point):
    """Compile + execute + time one point (tests patch this to count/ban
    simulator invocations)."""
    bench, data = _bench_and_data(point.benchmark, point.dataset, point.scale)
    return run_variant(bench, data, point.label, point.params,
                       point.device_config)


def _safe_worker(point):
    """Run one point, trapping any failure into a picklable tagged tuple.

    Exceptions (and their tracebacks) are formatted worker-side because
    neither pickles reliably across process boundaries; the executor turns
    the tuple back into a :class:`SweepPointError`/:class:`PointFailure`
    attributed to this exact point. BaseExceptions (KeyboardInterrupt,
    SystemExit) propagate so a sweep stays interruptible.

    Successes carry the measured simulation wall time as a third
    element — the executor hands it to the cache store path so the
    metadata index learns per-point recompute costs.
    """
    try:
        started = time.perf_counter()
        result = _simulate_point(point)
        return ("ok", result, time.perf_counter() - started)
    except Exception as exc:
        return ("error", type(exc).__name__, str(exc),
                traceback.format_exc())


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# -- backends -----------------------------------------------------------------

def _auto_chunk(n_items, jobs):
    """Chunk size balancing dispatch overhead against load balance: about
    four chunks per worker, capped so small grids still spread out."""
    return max(1, min(32, n_items // max(1, jobs * 4) or 1))


class Backend:
    """Strategy for executing a batch of cache-miss points.

    ``map`` takes SweepPoints and returns one outcome tuple per point, in
    input order: ``("ok", RunResult, sim_seconds)`` or
    ``("error", type_name, message, traceback)`` (the :func:`_safe_worker`
    encoding). Pools are created lazily on the first batch and reused
    across batches until :meth:`close`.
    """

    name = None

    def __init__(self, jobs=1, chunk_size=None):
        self.jobs = max(1, int(jobs))
        self.chunk_size = chunk_size

    def _chunk(self, n_items):
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        return _auto_chunk(n_items, self.jobs)

    def map(self, points):
        raise NotImplementedError

    def close(self):
        pass


class SerialBackend(Backend):
    """In-process loop; no pool, no pickling, deterministic by construction."""

    name = "serial"

    def map(self, points):
        return [_safe_worker(point) for point in points]


class ProcessBackend(Backend):
    """``multiprocessing.Pool`` with chunked submission (PR 1's pool)."""

    name = "process"

    def __init__(self, jobs=1, chunk_size=None):
        super().__init__(jobs, chunk_size)
        self._pool = None

    def map(self, points):
        if self.jobs <= 1 or len(points) <= 1:
            return [_safe_worker(point) for point in points]
        if self._pool is None:
            self._pool = _pool_context().Pool(self.jobs)
        return self._pool.map(_safe_worker, points,
                              chunksize=self._chunk(len(points)))

    def close(self):
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


class _FuturesBackend(Backend):
    """Shared base for the ``concurrent.futures`` pool backends."""

    _executor_cls = None

    def __init__(self, jobs=1, chunk_size=None):
        super().__init__(jobs, chunk_size)
        self._executor = None

    def _make_executor(self):
        return self._executor_cls(max_workers=self.jobs)

    def map(self, points):
        if self.jobs <= 1 or len(points) <= 1:
            return [_safe_worker(point) for point in points]
        if self._executor is None:
            self._executor = self._make_executor()
        return list(self._executor.map(_safe_worker, points,
                                       chunksize=self._chunk(len(points))))

    def close(self):
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ThreadBackend(_FuturesBackend):
    """``ThreadPoolExecutor``: shares the dataset memo, needs no pickling."""

    name = "thread"
    _executor_cls = concurrent.futures.ThreadPoolExecutor


class FuturesBackend(_FuturesBackend):
    """``ProcessPoolExecutor`` (the stdlib's other process pool)."""

    name = "futures"
    _executor_cls = concurrent.futures.ProcessPoolExecutor

    def _make_executor(self):
        return self._executor_cls(max_workers=self.jobs,
                                  mp_context=_pool_context())


#: Registry of backend names; ``repro.harness.remote`` adds ``remote`` when
#: it is imported (the ``repro.harness`` package always imports it).
BACKENDS = {cls.name: cls for cls in
            (SerialBackend, ProcessBackend, ThreadBackend, FuturesBackend)}


def make_backend(backend, jobs=1, chunk_size=None, workers=None,
                 worker_timeout=None):
    """Resolve a backend name (or pass through an instance).

    *workers* (host:port addresses) selects and configures the ``remote``
    backend, and *worker_timeout* bounds its per-chunk wait; giving
    either together with a different explicit *backend* name is an
    error. With ``backend=None`` the default is ``serial`` for
    ``jobs <= 1``, ``process`` otherwise, and ``remote`` whenever
    *workers* is set.
    """
    if isinstance(backend, Backend):
        if workers or worker_timeout is not None:
            raise ValueError("workers/worker_timeout only apply when the "
                             "backend is given by name; configure the "
                             "%s instance directly instead"
                             % type(backend).__name__)
        return backend
    if backend is None:
        if workers:
            backend = "remote"
        else:
            backend = "serial" if jobs <= 1 else "process"
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ValueError("unknown sweep backend %r (have %s)"
                         % (backend, ", ".join(sorted(BACKENDS))))
    if backend == "remote":
        if not workers:
            raise ValueError("the remote backend needs worker addresses "
                             "(workers=[...] / --workers HOST:PORT,...); "
                             "start daemons with 'repro worker serve'")
        if jobs > 1:
            raise ValueError("jobs only applies to the local pool "
                             "backends; remote parallelism is one chunk "
                             "per worker, and worker-side parallelism is "
                             "set by 'repro worker serve --jobs'")
        kwargs = {} if worker_timeout is None else {"timeout": worker_timeout}
        return cls(workers, chunk_size=chunk_size, **kwargs)
    if workers or worker_timeout is not None:
        raise ValueError("worker addresses/timeouts only apply to the "
                         "remote backend (--backend remote), not %r"
                         % (backend,))
    return cls(jobs=jobs, chunk_size=chunk_size)


# -- the executor -------------------------------------------------------------

#: Point outcomes across every executor in the process (cache hit /
#: simulated / failed — mirrors :class:`SweepStats`), for ``GET /metrics``.
_POINTS_TOTAL = REGISTRY.counter(
    "repro_sweep_points_total",
    "Sweep points resolved by an executor, by outcome", ("outcome",))
_BATCHES_TOTAL = REGISTRY.counter(
    "repro_sweep_batches_total",
    "Miss batches dispatched to a sweep backend", ("backend",))
_POINT_SECONDS = REGISTRY.histogram(
    "repro_sweep_point_seconds",
    "Per-point simulation latency by backend (batch wall time divided "
    "by batch size; worker-side clocks never cross process boundaries)",
    ("backend",))


@dataclass
class SweepStats:
    """Cumulative counters for one executor.

    ``hits + simulated + failed == points``: every point is either served
    from cache, simulated successfully, or failed in a worker.
    """

    points: int = 0
    hits: int = 0
    simulated: int = 0
    failed: int = 0

    def to_dict(self):
        """JSON-able counters (reported by the query service's
        ``/cache/info`` and per-request ``POST /sweep`` stats).

        >>> SweepStats(points=3, hits=1, simulated=2).to_dict()
        {'points': 3, 'hits': 1, 'simulated': 2, 'failed': 0}
        """
        return asdict(self)


class SweepExecutor:
    """Runs SweepPoints — optionally in parallel, optionally cached.

    ``run`` resolves cache hits first, dispatches only the misses to the
    configured :class:`Backend`, stores fresh results back, and returns
    results in the exact order of the input points. A fully-warm run never
    touches the simulator or spawns a pool.

    ``backend`` is a name from :data:`BACKENDS` (``serial``, ``process``,
    ``thread``, ``futures``, ``remote``) or an instance; unset, it is
    ``serial`` for ``jobs <= 1``, ``process`` otherwise, and ``remote``
    when ``workers=`` (host:port worker-daemon addresses) is given.
    Pool-backed backends are created lazily on the first miss batch and
    reused across ``run`` calls, so multi-grid drivers (figures, tuners)
    keep their workers — and the workers' dataset memos — alive. Call
    :meth:`close` (or use the executor as a context manager) to release
    the workers early; otherwise they end with the process.

    A worker failure raises :class:`SweepPointError` naming the point that
    died (``on_error="raise"``, the default); ``on_error="continue"`` runs
    the rest of the batch and returns a :class:`PointFailure` in the
    failed point's slot instead. Failed points are never cached.
    """

    def __init__(self, jobs=1, cache=None, backend=None, chunk_size=None,
                 on_error="raise", workers=None, worker_timeout=None):
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache)
        if on_error not in ("raise", "continue"):
            raise ValueError("on_error must be 'raise' or 'continue', "
                             "not %r" % (on_error,))
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.backend = make_backend(backend, jobs=self.jobs,
                                    chunk_size=chunk_size, workers=workers,
                                    worker_timeout=worker_timeout)
        self.on_error = on_error
        self.stats = SweepStats()

    def run(self, points, on_error=None):
        """Execute *points*; returns their results in input order.

        Cache hits are resolved first; only misses reach the backend.
        *on_error* overrides the executor default for this call (see the
        class docstring for the ``raise``/``continue`` contract).
        """
        on_error = self.on_error if on_error is None else on_error
        if on_error not in ("raise", "continue"):
            raise ValueError("on_error must be 'raise' or 'continue', "
                             "not %r" % (on_error,))
        points = list(points)
        self.stats.points += len(points)
        results = [None] * len(points)
        misses = []
        for index, point in enumerate(points):
            cached = self.cache.get(point) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                misses.append(index)
        hits = len(points) - len(misses)
        self.stats.hits += hits
        if hits:
            _POINTS_TOTAL.inc(hits, outcome="hit")
        if misses:
            todo = [points[index] for index in misses]
            started = time.perf_counter()
            outcomes = self.backend.map(todo)
            elapsed = time.perf_counter() - started
            _BATCHES_TOTAL.inc(backend=self.backend.name)
            # One observation per point (so _count tracks points, not
            # batches), each at the batch's per-point average.
            for _ in todo:
                _POINT_SECONDS.observe(elapsed / len(todo),
                                       backend=self.backend.name)
            first_error = None
            # Store every success (and cache it) before raising, so a
            # single failed point does not throw away the rest of the
            # batch's simulations on the next run.
            for index, outcome in zip(misses, outcomes):
                point = points[index]
                if outcome[0] == "ok":
                    result = outcome[1]
                    sim_cost = outcome[2] if len(outcome) > 2 else None
                    results[index] = result
                    self.stats.simulated += 1
                    _POINTS_TOTAL.inc(outcome="simulated")
                    if self.cache is not None:
                        self.cache.put(point, result, sim_cost=sim_cost)
                else:
                    _, error, message, worker_tb = outcome
                    self.stats.failed += 1
                    _POINTS_TOTAL.inc(outcome="failed")
                    failure = PointFailure(point, error, message, worker_tb)
                    if first_error is None:
                        first_error = failure
                    results[index] = failure
            if first_error is not None and on_error == "raise":
                raise first_error.to_error()
        return results

    def run_one(self, point, on_error=None):
        """Shorthand for ``run([point])[0]``."""
        return self.run([point], on_error=on_error)[0]

    def close(self):
        """Release the backend's pool/connections (idempotent)."""
        self.backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def run_sweep(points, jobs=1, cache_dir=None, backend=None,
              on_error="raise", workers=None, worker_timeout=None):
    """Convenience wrapper: execute *points* and return
    ``(results, stats)``.

    :param points: iterable of :class:`SweepPoint`.
    :param jobs: worker count for the pool backends.
    :param cache_dir: optional persistent result-cache directory.
    :param backend: a :data:`BACKENDS` name or :class:`Backend` instance.
    :param on_error: ``"raise"`` (default) or ``"continue"``; see
        :class:`SweepExecutor`.
    :param workers: remote worker addresses (selects the ``remote``
        backend).
    :param worker_timeout: seconds to wait for one remote chunk before
        declaring its worker dead (remote backend only).
    :returns: ``(results, stats)`` — results in input order (a
        :class:`~repro.harness.runner.RunResult` or, under
        ``"continue"``, a :class:`PointFailure` per point) and the
        executor's :class:`SweepStats`.
    """
    cache = ResultCache(cache_dir) if cache_dir else None
    with SweepExecutor(jobs=jobs, cache=cache, backend=backend,
                       on_error=on_error, workers=workers,
                       worker_timeout=worker_timeout) as executor:
        return executor.run(points), executor.stats
