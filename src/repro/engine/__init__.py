"""Execution engine: transpiles miniCUDA kernels to Python and runs them
functionally with cycle accounting."""

from .builtins import c_div, c_mod
from .codegen import generate_module_source
from .executor import ExecContext, run_grid
from .module import KernelHandle, Module
from .values import Dim3, Ptr, alloc_for_type

__all__ = [
    "c_div", "c_mod", "generate_module_source", "ExecContext", "run_grid",
    "KernelHandle", "Module", "Dim3", "Ptr", "alloc_for_type",
]
