"""Execution trace records shared by the functional engine and the timing
simulation.

The engine (phase 1) runs every kernel on real data and fills these records
with per-block work figures and launch edges; the scheduler (phase 2) replays
them against a :class:`~repro.sim.config.DeviceConfig` to produce times.
"""

from dataclasses import dataclass, field
from typing import Optional

HOST = "host"            # launched by the host driver
DEVICE = "device"        # dynamic (CDP) launch from a parent thread
HOST_AGG = "host_agg"    # grid-granularity aggregated launch via the host


@dataclass
class BlockCost:
    """Work of one thread block, pre-aggregated per warp."""

    max_warp: int = 0     # cycles of the slowest warp
    sum_warp: int = 0     # summed per-warp cycles (throughput bound)


@dataclass
class LaunchRecord:
    """One launch edge: who made the grid runnable, from where, and when."""

    kind: str                          # HOST / DEVICE / HOST_AGG
    grid: "GridRecord"
    parent_grid: Optional["GridRecord"] = None
    parent_block: int = 0
    issue_offset: int = 0              # thread cycles before the launch call


@dataclass
class GridRecord:
    """One executed grid."""

    gid: int
    kernel: str
    grid_dim: int                      # blocks (x dimension)
    block_dim: int                     # threads per block (x dimension)
    blocks: list = field(default_factory=list)        # BlockCost per block
    launch: Optional[LaunchRecord] = None             # incoming edge
    children: list = field(default_factory=list)      # outgoing LaunchRecords
    total_cycles: int = 0              # summed thread cycles
    reg_agg: int = 0                   # cycles tagged aggregation logic
    reg_disagg: int = 0                # cycles tagged disaggregation logic
    reg_launch: int = 0                # parent-side launch-issue cycles

    @property
    def is_dynamic(self):
        return self.launch is not None and self.launch.kind != HOST

    @property
    def num_launches(self):
        return len(self.children)


@dataclass
class Trace:
    """Everything one benchmark run produced, in host-program order."""

    grids: list = field(default_factory=list)
    host_events: list = field(default_factory=list)  # ("launch", rec) | ("sync",)
    printf_lines: list = field(default_factory=list)

    def new_grid(self, kernel, grid_dim, block_dim):
        record = GridRecord(len(self.grids), kernel, grid_dim, block_dim)
        self.grids.append(record)
        return record

    def dynamic_grids(self):
        return [g for g in self.grids if g.is_dynamic]

    def total_launches(self, kind=None):
        count = 0
        for grid in self.grids:
            if grid.launch is None:
                continue
            if kind is None or grid.launch.kind == kind:
                count += 1
        return count
