"""The evaluation's code-version matrix (Sec. VII).

The paper compares: No CDP, CDP, KLAP (CDP+A — aggregation alone, as in
prior work), and every combination of the three optimizations. ``KLAP``
restricts aggregation to the granularities prior work supports (warp, block,
grid); the ``+A`` of this paper's combinations may also use multi-block.
"""

from dataclasses import dataclass
from typing import Optional

from ..transforms import OptConfig

#: Figure 9 / 12 series, in the paper's legend order.
VARIANT_LABELS = (
    "No CDP", "CDP", "KLAP (CDP+A)", "CDP+T", "CDP+C", "CDP+T+C",
    "CDP+T+A", "CDP+C+A", "CDP+T+C+A",
)

#: Granularities available to prior work (KLAP) vs. this paper.
KLAP_GRANULARITIES = ("warp", "block", "grid")
ALL_GRANULARITIES = ("warp", "block", "multiblock", "grid")

#: The group size non-multiblock points are pinned to (only multi-block
#: aggregation reads ``group_blocks``; everyone else must share one value
#: so effective-identical configurations share one cache key).
DEFAULT_GROUP_BLOCKS = 8


@dataclass(frozen=True)
class TuningParams:
    """One point in the tuning space of Sec. VII."""

    threshold: Optional[int] = None
    coarsen_factor: Optional[int] = None
    granularity: Optional[str] = None
    group_blocks: int = DEFAULT_GROUP_BLOCKS

    def describe(self):
        """Compact human-readable form ('-' when nothing is enabled).

        >>> TuningParams(threshold=64, granularity="multiblock",
        ...              group_blocks=4).describe()
        'T=64,A=multiblock(4)'
        >>> TuningParams().describe()
        '-'
        """
        parts = []
        if self.threshold is not None:
            parts.append("T=%d" % self.threshold)
        if self.coarsen_factor is not None:
            parts.append("C=%d" % self.coarsen_factor)
        if self.granularity is not None:
            gran = self.granularity
            if gran == "multiblock":
                gran = "multiblock(%d)" % self.group_blocks
            parts.append("A=%s" % gran)
        return ",".join(parts) if parts else "-"


def uses(label, letter):
    """Does a variant label include optimization T/C/A?

    >>> uses("CDP+T+C", "T"), uses("CDP+T+C", "A")
    (True, False)
    >>> uses("KLAP (CDP+A)", "A")
    True
    """
    if label == "No CDP" or label == "CDP":
        return False
    if label == "KLAP (CDP+A)":
        return letter == "A"
    return letter in label.split("+")


def mask_params(label, params):
    """Canonicalize *params* for *label*: null out components the variant
    does not use and pin ``group_blocks`` to the default unless the
    granularity is multi-block (the only one that reads it).

    Grid builders and figure drivers share this so identical *effective*
    configurations always produce identical :class:`TuningParams` — and
    therefore one sweep-cache key — whatever the surrounding grid carried.

    >>> mask_params("CDP+T", TuningParams(threshold=32,
    ...                                   coarsen_factor=8)).describe()
    'T=32'
    """
    granularity = params.granularity if uses(label, "A") else None
    return TuningParams(
        threshold=params.threshold if uses(label, "T") else None,
        coarsen_factor=params.coarsen_factor if uses(label, "C") else None,
        granularity=granularity,
        group_blocks=params.group_blocks if granularity == "multiblock"
        else DEFAULT_GROUP_BLOCKS)


def variant_to_run(label, params):
    """Map a series label + params to ('nocdp'|'cdp', OptConfig or None)."""
    if label == "No CDP":
        return "nocdp", None
    if label == "CDP":
        return "cdp", None
    config = OptConfig(
        threshold=params.threshold if uses(label, "T") else None,
        coarsen_factor=params.coarsen_factor if uses(label, "C") else None,
        aggregate=params.granularity if uses(label, "A") else None,
        group_blocks=params.group_blocks,
    )
    if (config.threshold is None and config.coarsen_factor is None
            and config.aggregate is None):
        return "cdp", None
    return "cdp", config
