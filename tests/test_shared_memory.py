"""Shared-memory execution tests.

The engine supports ``__shared__`` arrays (block-scoped, one instance per
block) so that barrier/reduction-style child kernels can run under CDP and
under *aggregation* — the paper only excludes them from *thresholding*
(Sec. III-C).
"""

import numpy as np
import pytest

from repro.engine import Dim3, Module, alloc_for_type, run_grid
from repro.harness import outputs_match
from repro.minicuda.ast import Type
from repro.runtime import Device, blocks
from repro.sim import Trace
from repro.transforms import OptConfig, ThresholdingPass, transform
from repro.minicuda import parse

REDUCE_SRC = """
__global__ void reduce(float *data, float *out, int n) {
    __shared__ float buf[64];
    int tid = threadIdx.x;
    int idx = blockIdx.x * blockDim.x + tid;
    buf[tid] = idx < n ? data[idx] : 0.0f;
    __syncthreads();
    for (int s = 32; s > 0; s = s / 2) {
        if (tid < s) {
            buf[tid] = buf[tid] + buf[tid + s];
        }
        __syncthreads();
    }
    if (tid == 0) {
        out[blockIdx.x] = buf[0];
    }
}
"""


def run_reduce(n=200, blocks_=4):
    module = Module(REDUCE_SRC)
    data = alloc_for_type(Type("float"), n)
    rng = np.random.default_rng(3)
    data.array[:] = rng.random(n)
    out = alloc_for_type(Type("float"), blocks_)
    trace = Trace()
    run_grid(module, trace, "reduce", Dim3(blocks_), Dim3(64),
             (data, out, n))
    return data.array, out.array


class TestSharedReduction:
    def test_tree_reduction_correct(self):
        data, out = run_reduce(n=200, blocks_=4)
        expected = [data[i * 64:(i + 1) * 64].sum() for i in range(4)]
        # clamp to n
        expected[3] = data[192:200].sum()
        assert np.allclose(out, expected)

    def test_blocks_get_fresh_shared_arrays(self):
        src = """
        __global__ void k(int *out) {
            __shared__ int cell[1];
            if (threadIdx.x == 0) {
                cell[0] = cell[0] + 100 + blockIdx.x;
            }
            __syncthreads();
            out[blockIdx.x] = cell[0];
        }
        """
        out = alloc_for_type(Type("int"), 3)
        module = Module(src)
        run_grid(module, Trace(), "k", Dim3(3), Dim3(4), (out,))
        # each block starts from a zeroed array: 100, 101, 102
        assert list(out.array) == [100, 101, 102]

    def test_shared_without_barrier(self):
        src = """
        __global__ void k(int *out) {
            __shared__ int buf[8];
            buf[threadIdx.x] = threadIdx.x;
            out[threadIdx.x] = buf[threadIdx.x] * 3;
        }
        """
        out = alloc_for_type(Type("int"), 8)
        module = Module(src)
        run_grid(module, Trace(), "k", Dim3(1), Dim3(8), (out,))
        assert list(out.array) == [0, 3, 6, 9, 12, 15, 18, 21]


BARRIER_CDP_SRC = REDUCE_SRC + """
__global__ void parent(float *data, float *out, int *offs, int nseg) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < nseg) {
        int start = offs[t];
        int len = offs[t + 1] - start;
        if (len > 0) {
            reduce<<<(len + 63) / 64, 64>>>(data, out, len);
        }
    }
}
"""


class TestBarrierChildrenUnderOptimization:
    """A reduction child can be aggregated/coarsened but not thresholded."""

    def _run(self, config):
        if config is None:
            module = Module(BARRIER_CDP_SRC)
        else:
            result = transform(BARRIER_CDP_SRC, config)
            module = Module(result.program, result.meta)
        dev = Device(module)
        rng = np.random.default_rng(11)
        nseg = 40
        lens = rng.integers(0, 150, nseg)
        offs = np.zeros(nseg + 1, dtype=np.int64)
        offs[1:] = np.cumsum(lens)
        data = dev.upload(rng.random(int(offs[-1]) + 1))
        out = dev.alloc("float", 256)
        d_offs = dev.upload(offs)
        dev.launch("parent", blocks(nseg, 64), 64, data, out, d_offs, nseg)
        dev.sync()
        dev.finish()
        return {"out": out.to_numpy()}

    def test_aggregation_preserves_reduction(self):
        reference = self._run(None)
        for granularity in ("block", "multiblock", "grid"):
            outputs = self._run(OptConfig(aggregate=granularity))
            assert outputs_match(reference, outputs, rtol=1e-9), granularity

    def test_coarsening_preserves_reduction(self):
        reference = self._run(None)
        outputs = self._run(OptConfig(coarsen_factor=4))
        assert outputs_match(reference, outputs, rtol=1e-9)

    def test_thresholding_refuses_but_still_correct(self):
        program = parse(BARRIER_CDP_SRC)
        meta = ThresholdingPass(64).run(program)
        assert meta.thresholded_sites == 0
        assert meta.skipped_sites
        reference = self._run(None)
        outputs = self._run(OptConfig(threshold=64))
        assert outputs_match(reference, outputs, rtol=1e-9)
