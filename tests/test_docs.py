"""Docs-tree checks: every relative markdown link (and anchor) resolves,
the three core pages exist and are linked from the README, and the
harness docstring examples pass under doctest."""

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.+?)\s*$", re.MULTILINE)


def doc_pages():
    return [REPO / "README.md"] + sorted(DOCS.glob("*.md"))


def iter_links():
    for page in doc_pages():
        for match in LINK_RE.finditer(page.read_text()):
            yield page, match.group(1)


def slugify(heading):
    """GitHub-style anchor slug for a heading."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


CORE_PAGES = ("architecture.md", "sweep-engine.md", "reproducing.md",
              "serving.md")

#: ``repro <subcommand>`` mentions in prose and shell blocks.
SUBCOMMAND_RE = re.compile(r"\brepro ([a-z][a-z0-9-]*)")


class TestDocsTree:
    def test_core_pages_exist(self):
        for name in CORE_PAGES:
            assert (DOCS / name).is_file(), "missing docs/%s" % name

    def test_readme_links_every_core_page(self):
        readme = (REPO / "README.md").read_text()
        for name in CORE_PAGES:
            assert "docs/%s" % name in readme, \
                "README does not link docs/%s" % name

    def test_relative_links_resolve(self):
        checked = 0
        for page, link in iter_links():
            if link.startswith(("http://", "https://", "mailto:")):
                continue
            target, _, fragment = link.partition("#")
            resolved = (page.parent / target).resolve() if target else page
            assert resolved.exists(), \
                "%s links to missing %s" % (page.name, link)
            if fragment and resolved.suffix == ".md":
                slugs = {slugify(h)
                         for h in HEADING_RE.findall(resolved.read_text())}
                assert fragment in slugs, \
                    "%s links to missing anchor %s#%s" \
                    % (page.name, target or page.name, fragment)
            checked += 1
        assert checked > 0, "no relative links found — regex broken?"

    def test_docs_mention_every_backend(self):
        from repro.harness import BACKENDS

        text = (DOCS / "sweep-engine.md").read_text()
        for name in BACKENDS:
            assert "`%s`" % name in text, \
                "sweep-engine.md does not document backend %r" % name


class TestCLIDrift:
    """The docs and the parser must agree on the CLI surface: every
    ``repro <sub>`` a doc mentions exists, and every subcommand the
    parser registers is documented somewhere."""

    @staticmethod
    def parser_subcommands():
        from repro.cli import build_parser

        parser = build_parser()
        choices = set()
        for action in parser._subparsers._group_actions:
            choices |= set(action.choices)
        return choices

    @staticmethod
    def documented_subcommands():
        mentioned = {}
        for page in doc_pages():
            for match in SUBCOMMAND_RE.finditer(page.read_text()):
                mentioned.setdefault(match.group(1), page.name)
        return mentioned

    def test_every_documented_subcommand_exists(self):
        choices = self.parser_subcommands()
        for sub, page in sorted(self.documented_subcommands().items()):
            assert sub in choices, \
                "%s mentions 'repro %s', which the parser does not " \
                "register (doc drift)" % (page, sub)

    def test_every_subcommand_is_documented(self):
        mentioned = self.documented_subcommands()
        for sub in sorted(self.parser_subcommands()):
            assert sub in mentioned, \
                "subcommand 'repro %s' is documented nowhere under " \
                "docs/ or README.md" % sub

    def test_serve_is_registered_and_documented(self):
        assert "serve" in self.parser_subcommands()
        assert "serve" in self.documented_subcommands()


class TestServingDocs:
    def test_every_registered_endpoint_documented(self):
        from repro.harness.serve import ENDPOINTS

        text = (DOCS / "serving.md").read_text()
        for endpoint in ENDPOINTS:
            assert "`%s`" % endpoint in text, \
                "serving.md does not document endpoint %r" % endpoint

    def test_every_served_figure_documented(self):
        from repro.harness.serve import FIGURES

        text = (DOCS / "serving.md").read_text()
        for name in FIGURES:
            assert "`%s`" % name in text, \
                "serving.md does not mention figure %r" % name

    def test_every_serve_flag_documented(self):
        """No CLI/doc drift on the serve surface: every long option the
        ``repro serve`` subparser registers appears in serving.md (and
        in the parser's own --help, by construction)."""
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = parser._subparsers._group_actions[0]
        serve = subparsers.choices["serve"]
        flags = [option
                 for action in serve._actions
                 for option in action.option_strings
                 if option.startswith("--") and option != "--help"]
        assert "--miss-workers" in flags and "--max-pending" in flags
        text = (DOCS / "serving.md").read_text()
        for flag in flags:
            assert flag in text, \
                "serving.md does not document 'repro serve %s'" % flag

    def test_scheduler_semantics_documented(self):
        """The queue's operator-facing contract (backpressure, drain,
        dedup, metrics) must live in the serving page's runbook."""
        text = (DOCS / "serving.md").read_text()
        for needle in ("503", "504", "QueueFullError",
                       "DeadlineExceededError", "dedup",
                       "drain", "Prometheus", "BENCH_serve.json"):
            assert needle in text, \
                "serving.md lost the %r semantics" % needle

    def test_priority_and_deadline_surface_documented(self):
        """The scheduling headers, body fields, and priority names must
        all be spelled out on the serving page."""
        text = (DOCS / "serving.md").read_text()
        for needle in ("X-Repro-Priority", "X-Repro-Deadline-Ms",
                       "X-Repro-Request-Id", "`priority`",
                       "`deadline_ms`", "--request-timeout"):
            assert needle in text, \
                "serving.md does not document %r" % needle

    def test_every_cache_action_documented(self):
        """Every ``repro cache <action>`` the parser registers (and
        every prune policy / top ordering) is named in the docs."""
        from repro.cli import build_parser
        from repro.harness.cache import PRUNE_POLICIES

        parser = build_parser()
        subparsers = parser._subparsers._group_actions[0]
        cache = subparsers.choices["cache"]
        actions = next(a.choices for a in cache._actions
                       if a.dest == "action")
        assert {"reindex", "top", "stats"} <= set(actions)
        text = "".join(p.read_text() for p in doc_pages())
        for action in actions:
            assert "cache %s" % action in text, \
                "docs never mention 'repro cache %s'" % action
        for policy in PRUNE_POLICIES:
            assert "`--policy %s`" % policy in text \
                or "--policy %s" % policy in text \
                or "`%s`" % policy in text, \
                "docs never mention prune policy %r" % policy

    def test_quota_and_auth_surface_documented(self):
        """The multi-tenant hardening surface — headers, status codes,
        flags, file format, metrics, and the load-bench artifact — must
        all be spelled out on the serving page."""
        text = (DOCS / "serving.md").read_text()
        for needle in ("429", "401", "Retry-After", "X-Repro-Client",
                       "X-Repro-Api-Key", "QuotaExceededError",
                       "AuthError", "--api-keys-file", "--quota-rps",
                       "--quota-burst", "--quota-max-inflight",
                       "token bucket", "BENCH_load.json",
                       "repro_quota_rejections_total",
                       "repro_quota_tokens", "repro_quota_inflight"):
            assert needle in text, \
                "serving.md does not document %r" % needle

    def test_metric_families_documented(self):
        """Every metric family the registry knows at import time is
        named in serving.md's /metrics table."""
        import repro.harness.serve      # noqa: F401 — registers series
        from repro.harness.metrics import REGISTRY

        text = (DOCS / "serving.md").read_text()
        for name in REGISTRY.names():
            assert name in text, \
                "serving.md does not document metric family %r" % name

    def test_wire_format_contract_cross_linked(self):
        # The shared disk/TCP/HTTP encoding must cite one contract from
        # all three consumer docs.
        serving = (DOCS / "serving.md").read_text()
        sweep = (DOCS / "sweep-engine.md").read_text()
        assert "encode_result" in serving and "decode_result" in serving
        assert "encode_result" in sweep and "decode_result" in sweep
        assert "serving.md#the-wire-format" in sweep


class TestHarnessDoctests:
    """The same examples `pytest --doctest-modules src/repro/harness`
    runs in CI, kept green by the tier-1 suite."""

    @pytest.mark.parametrize("module_name", (
        "repro.harness.cache",
        "repro.harness.metrics",
        "repro.harness.quota",
        "repro.harness.remote",
        "repro.harness.runner",
        "repro.harness.serve",
        "repro.harness.sweep",
        "repro.harness.task",
        "repro.harness.variants",
    ))
    def test_module_doctests(self, module_name):
        module = __import__(module_name, fromlist=["_"])
        result = doctest.testmod(module, verbose=False)
        assert result.failed == 0
        assert result.attempted > 0, \
            "%s lost its doctest examples" % module_name
