"""Harness unit tests: variant mapping, runner, tuning, geomean."""

import math

import numpy as np
import pytest

from repro.benchmarks import get_benchmark
from repro.errors import ReproError
from repro.harness import (TuningParams, VARIANT_LABELS, child_launch_sizes,
                           geomean, outputs_match, run_variant,
                           threshold_candidates, tune, uses, variant_to_run)

SCALE = 0.1


@pytest.fixture(scope="module")
def bfs_setup():
    bench = get_benchmark("BFS")
    data = bench.build_dataset("KRON", SCALE)
    return bench, data


class TestVariantMapping:
    def test_no_cdp(self):
        variant, config = variant_to_run("No CDP", TuningParams())
        assert variant == "nocdp" and config is None

    def test_plain_cdp(self):
        variant, config = variant_to_run("CDP", TuningParams())
        assert variant == "cdp" and config is None

    def test_klap_is_aggregation_only(self):
        params = TuningParams(threshold=32, coarsen_factor=8,
                              granularity="block")
        _, config = variant_to_run("KLAP (CDP+A)", params)
        assert config.threshold is None
        assert config.coarsen_factor is None
        assert config.aggregate == "block"

    def test_full_combo(self):
        params = TuningParams(threshold=32, coarsen_factor=8,
                              granularity="multiblock", group_blocks=4)
        _, config = variant_to_run("CDP+T+C+A", params)
        assert (config.threshold, config.coarsen_factor,
                config.aggregate, config.group_blocks) == \
            (32, 8, "multiblock", 4)

    def test_uses(self):
        assert uses("CDP+T+C", "T") and uses("CDP+T+C", "C")
        assert not uses("CDP+T+C", "A")
        assert uses("KLAP (CDP+A)", "A") and not uses("KLAP (CDP+A)", "T")
        assert not uses("No CDP", "T")

    def test_all_labels_map(self):
        params = TuningParams(threshold=1, coarsen_factor=2,
                              granularity="block")
        for label in VARIANT_LABELS:
            variant, _ = variant_to_run(label, params)
            assert variant in ("cdp", "nocdp")

    def test_params_describe(self):
        params = TuningParams(threshold=8, granularity="multiblock",
                              group_blocks=4)
        assert params.describe() == "T=8,A=multiblock(4)"
        assert TuningParams().describe() == "-"


class TestGeomean:
    def test_simple(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert geomean([4, 0, -1]) == pytest.approx(4.0)

    def test_log_identity(self):
        values = [1.5, 2.5, 9.0]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geomean(values) == pytest.approx(expected)


class TestRunner:
    def test_run_variant_result_fields(self, bfs_setup):
        bench, data = bfs_setup
        result = run_variant(bench, data, "CDP")
        assert result.total_time > 0
        assert result.device_launches > 0
        assert set(result.breakdown) == {"parent", "child", "launch", "agg",
                                         "disagg"}

    def test_check_against_passes_for_correct_variant(self, bfs_setup):
        bench, data = bfs_setup
        reference = run_variant(bench, data, "No CDP", keep_outputs=True)
        run_variant(bench, data, "CDP+T", TuningParams(threshold=8),
                    check_against=reference.outputs)

    def test_check_against_detects_mismatch(self, bfs_setup):
        bench, data = bfs_setup
        reference = run_variant(bench, data, "No CDP", keep_outputs=True)
        bad = {key: value + 1 for key, value in reference.outputs.items()}
        with pytest.raises(ReproError):
            run_variant(bench, data, "CDP", check_against=bad)

    def test_outputs_dropped_unless_requested(self, bfs_setup):
        bench, data = bfs_setup
        assert run_variant(bench, data, "CDP").outputs is None

    def test_child_launch_sizes(self, bfs_setup):
        bench, data = bfs_setup
        sizes = child_launch_sizes(bench, data)
        assert sizes
        assert all(s >= 32 for s in sizes)


class TestOutputsMatch:
    def test_equal_int_arrays(self):
        a = {"x": np.array([1, 2, 3])}
        assert outputs_match(a, {"x": np.array([1, 2, 3])})

    def test_mismatched_keys(self):
        a = {"x": np.zeros(3)}
        assert not outputs_match(a, {"y": np.zeros(3)})
        assert not outputs_match(a, {"x": np.zeros(3), "y": np.zeros(3)})
        assert not outputs_match(a, {})

    def test_nan_in_same_positions_matches(self):
        a = {"x": np.array([1.0, np.nan, 3.0])}
        b = {"x": np.array([1.0, np.nan, 3.0])}
        assert outputs_match(a, b)

    def test_nan_against_number_differs(self):
        a = {"x": np.array([1.0, np.nan, 3.0])}
        b = {"x": np.array([1.0, 2.0, 3.0])}
        assert not outputs_match(a, b)
        assert not outputs_match(b, a)

    def test_int_vs_float_kind_compares_by_value(self):
        ints = {"x": np.array([1, 2, 3])}
        floats = {"x": np.array([1.0, 2.0, 3.0])}
        assert outputs_match(ints, floats)
        assert outputs_match(floats, ints)
        assert not outputs_match(ints, {"x": np.array([1.0, 2.5, 3.0])})

    def test_float_tolerance(self):
        a = {"x": np.array([1.0])}
        assert outputs_match(a, {"x": np.array([1.0 + 1e-13])})
        assert not outputs_match(a, {"x": np.array([1.0 + 1e-6])})

    def test_shape_mismatch(self):
        a = {"x": np.zeros(3)}
        assert not outputs_match(a, {"x": np.zeros((3, 1))})
        assert not outputs_match(a, {"x": np.zeros(4)})

    def test_int_arrays_compare_exactly(self):
        a = {"x": np.array([1, 2, 3])}
        assert not outputs_match(a, {"x": np.array([1, 2, 4])})


class TestTuning:
    def test_threshold_candidates_capped(self, bfs_setup):
        bench, data = bfs_setup
        candidates = threshold_candidates(bench, data)
        largest = max(child_launch_sizes(bench, data))
        assert all(t <= largest for t in candidates)
        assert candidates == sorted(candidates)

    def test_uncapped_adds_one_beyond(self, bfs_setup):
        bench, data = bfs_setup
        capped = threshold_candidates(bench, data)
        uncapped = threshold_candidates(bench, data, cap_to_largest=False)
        assert uncapped[-1] > capped[-1]

    def test_uncapped_is_capped_plus_exactly_one(self, bfs_setup):
        """Regression: uncapped used to discard the constructed list and
        return the entire FULL_THRESHOLDS axis, inflating Fig. 12 sweeps."""
        bench, data = bfs_setup
        capped = threshold_candidates(bench, data)
        uncapped = threshold_candidates(bench, data, cap_to_largest=False)
        largest = max(child_launch_sizes(bench, data))
        assert uncapped[:-1] == capped
        assert sum(1 for t in uncapped if t > largest) == 1

    def test_uncapped_respects_coarse(self, bfs_setup):
        bench, data = bfs_setup
        coarse = threshold_candidates(bench, data, coarse=True)
        uncapped = threshold_candidates(bench, data, coarse=True,
                                        cap_to_largest=False)
        largest = max(child_launch_sizes(bench, data))
        assert uncapped[:-1] == coarse
        assert uncapped[-1] > largest

    def test_tune_picks_minimum(self, bfs_setup):
        bench, data = bfs_setup
        outcome = tune(bench, data, "CDP+T", strategy="guided")
        assert outcome.best_time == min(t for _, t in outcome.evaluated)
        assert outcome.best.threshold is not None

    def test_guided_skips_warp(self, bfs_setup):
        bench, data = bfs_setup
        outcome = tune(bench, data, "KLAP (CDP+A)", strategy="guided")
        grans = {p.granularity for p, _ in outcome.evaluated}
        assert "warp" not in grans
        assert "multiblock" not in grans  # prior work's options only

    def test_variant_without_t_has_no_thresholds(self, bfs_setup):
        bench, data = bfs_setup
        outcome = tune(bench, data, "CDP+C", strategy="guided")
        assert all(p.threshold is None for p, _ in outcome.evaluated)
