"""Bezier-line datasets for the BT (Bezier Tessellation) benchmark.

The CUDA-samples benchmark tessellates quadratic Bezier lines: the number of
tessellation points per line is proportional to the line's *curvature*,
clamped to a maximum. The paper's datasets are T0032-C16 (max tessellation
32, curvature 16) and T2048-C64 (max 2048, curvature 64) over 20,000 lines;
we reproduce both shapes at reduced line counts / tessellation caps.
"""

from dataclasses import dataclass

import numpy as np


@dataclass
class BezierDataset:
    """Quadratic Bezier control points (3 per line, 2-D)."""

    control_x: np.ndarray     # float64[3 * lines]
    control_y: np.ndarray     # float64[3 * lines]
    max_tess: int
    curvature_scale: float
    name: str = "bezier"

    @property
    def num_lines(self):
        return len(self.control_x) // 3

    def curvatures(self):
        """Host-side reference of each line's curvature measure."""
        px = self.control_x.reshape(-1, 3)
        py = self.control_y.reshape(-1, 3)
        dx = px[:, 1] - 0.5 * (px[:, 0] + px[:, 2])
        dy = py[:, 1] - 0.5 * (py[:, 0] + py[:, 2])
        return np.sqrt(dx * dx + dy * dy)

    def tess_counts(self):
        """Host-side reference tessellation count per line."""
        counts = np.minimum(
            self.max_tess,
            (self.curvatures() * self.curvature_scale).astype(np.int64) + 2)
        return np.maximum(counts, 2)

    def __repr__(self):
        return "BezierDataset(%s: %d lines, max_tess=%d)" % (
            self.name, self.num_lines, self.max_tess)


def bezier_lines(num_lines=800, max_tess=32, curvature_scale=16.0, seed=6,
                 name="T0032-C16"):
    """Random control points; curvature (hence nested work) is heavy-tailed
    via squared-uniform displacement of the middle control point."""
    rng = np.random.default_rng(seed)
    p0 = rng.random((num_lines, 2))
    p2 = rng.random((num_lines, 2))
    # Middle control point displaced from the chord midpoint.
    bulge = (rng.random((num_lines, 1)) ** 2) * 4.0
    direction = rng.standard_normal((num_lines, 2))
    norm = np.linalg.norm(direction, axis=1, keepdims=True)
    direction = direction / np.maximum(norm, 1e-9)
    p1 = 0.5 * (p0 + p2) + bulge * direction
    control_x = np.stack([p0[:, 0], p1[:, 0], p2[:, 0]], axis=1).ravel()
    control_y = np.stack([p0[:, 1], p1[:, 1], p2[:, 1]], axis=1).ravel()
    return BezierDataset(control_x, control_y, max_tess,
                         float(curvature_scale), name)
