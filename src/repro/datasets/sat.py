"""Random k-SAT instances for the Survey Propagation benchmark.

The paper uses random-42000-10000-3 (RAND-3: 10,000 variables, 42,000
3-clauses) and a satisfiable 5-SAT competition instance (117,296 literals).
We generate scaled-down instances with the same clause-width structure; the
SP kernel's nested parallelism is the *variable occurrence list*, whose size
distribution these generators match (binomial around k·m/n).
"""

from dataclasses import dataclass

import numpy as np


@dataclass
class SATInstance:
    """CNF formula with both clause→literal and variable→occurrence CSR."""

    num_vars: int
    k: int
    clause_row: np.ndarray     # int64[num_clauses+1]
    clause_lits: np.ndarray    # int64: variable index of each literal slot
    clause_signs: np.ndarray   # int64: +1 / -1 per literal slot
    var_row: np.ndarray        # int64[num_vars+1]
    var_occ: np.ndarray        # int64: clause index per occurrence
    var_occ_slot: np.ndarray   # int64: literal slot within the clause
    name: str = "sat"

    @property
    def num_clauses(self):
        return len(self.clause_row) - 1

    @property
    def num_literals(self):
        return len(self.clause_lits)

    def var_degree(self, var):
        return int(self.var_row[var + 1] - self.var_row[var])

    def __repr__(self):
        return "SATInstance(%s: %d vars, %d clauses, %d literals)" % (
            self.name, self.num_vars, self.num_clauses, self.num_literals)


def random_ksat(num_vars=800, num_clauses=3200, k=3, seed=5, name="RAND-3"):
    """Uniform random k-SAT: every clause draws k distinct variables."""
    rng = np.random.default_rng(seed)
    lits = np.empty((num_clauses, k), dtype=np.int64)
    for i in range(num_clauses):
        lits[i] = rng.choice(num_vars, size=k, replace=False)
    signs = rng.choice(np.array([-1, 1], dtype=np.int64),
                       size=(num_clauses, k))

    clause_row = np.arange(0, (num_clauses + 1) * k, k, dtype=np.int64)
    clause_lits = lits.ravel()
    clause_signs = signs.ravel()

    # Invert into per-variable occurrence lists.
    order = np.argsort(clause_lits, kind="stable")
    var_row = np.zeros(num_vars + 1, dtype=np.int64)
    np.add.at(var_row, clause_lits + 1, 1)
    var_row = np.cumsum(var_row)
    slots = order
    var_occ = slots // k
    var_occ_slot = slots % k
    return SATInstance(num_vars, k, clause_row, clause_lits, clause_signs,
                       var_row, var_occ.astype(np.int64),
                       var_occ_slot.astype(np.int64), name)
