"""Compiled kernel modules: parse → transpile → exec → callable kernels."""

from dataclasses import dataclass

from ..errors import CodegenError
from ..minicuda import ast, parse
from ..sim.costmodel import CostModel
from .codegen import generate_module_source
from .values import Ptr, alloc_for_type


@dataclass
class KernelHandle:
    """One compiled kernel: the generated Python callable plus launch facts."""

    name: str
    fn: callable
    has_barrier: bool
    params: list                      # [(name, Type), ...]
    multi_dim: bool = False           # compiled with the 3-D convention

    @property
    def num_params(self):
        return len(self.params)


class Module:
    """A compiled miniCUDA translation unit.

    ``meta`` is the :class:`~repro.transforms.base.ModuleMeta` produced by
    the transformation pipeline (or None for untransformed code); its macro
    values are baked into the generated Python as constants, mirroring the
    paper's compile-time ``-D_THRESHOLD=...`` overrides.
    """

    def __init__(self, source_or_program, meta=None, cost_model=None):
        if isinstance(source_or_program, ast.Program):
            self.program = source_or_program
        else:
            self.program = parse(source_or_program)
        self.meta = meta
        self.cost_model = cost_model or CostModel()
        macros = dict(meta.macros) if meta is not None else {}
        self.python_source, kernel_info = generate_module_source(
            self.program, macros, self.cost_model)
        self.namespace = {}
        exec(compile(self.python_source, "<minicuda-codegen>", "exec"),
             self.namespace)
        self._allocate_globals()
        self.kernels = {}
        for name, info in kernel_info.items():
            self.kernels[name] = KernelHandle(
                name=name,
                fn=self.namespace["k_" + name],
                has_barrier=info["has_barrier"],
                params=info["params"],
                multi_dim=info["multi_dim"])

    def _allocate_globals(self):
        """File-scope __device__ variables become module-level Ptr cells."""
        for decl in self.program.decls:
            if not isinstance(decl, ast.DeclStmt):
                continue
            for var in decl.decls:
                if var.array_size is not None:
                    if not isinstance(var.array_size, ast.IntLit):
                        raise CodegenError(
                            "global array %r needs a literal size" % var.name)
                    count = var.array_size.value
                else:
                    count = 1
                cell = alloc_for_type(var.type, count)
                if var.init is not None:
                    if not isinstance(var.init, (ast.IntLit, ast.FloatLit)):
                        raise CodegenError(
                            "global %r needs a literal initializer"
                            % var.name)
                    cell[0] = var.init.value
                self.namespace["g_" + var.name] = cell

    def kernel(self, name):
        try:
            return self.kernels[name]
        except KeyError:
            raise CodegenError("module has no kernel %r" % name) from None

    def global_ptr(self, name):
        """The Ptr cell backing a file-scope __device__ variable."""
        return self.namespace["g_" + name]

    def reset_globals(self):
        """Re-zero every file-scope variable (between benchmark runs)."""
        self._allocate_globals()
