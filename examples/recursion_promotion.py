#!/usr/bin/env python
"""Promotion demo: single-block recursive kernels become loops.

The paper's three optimizations deliberately skip the pattern where a
single-block kernel launches itself recursively (Sec. IX) — that is the
target of KLAP's *promotion* optimization, which this repo also implements
as `repro.transforms.PromotionPass`. This demo runs an iterative stencil
smoother that relaunches itself once per round (60 recursion levels) and
shows promotion removing every dynamic launch.

Run:  python examples/recursion_promotion.py
"""

import numpy as np

from repro import Device, Module, parse
from repro.transforms import PromotionPass

SOURCE = """
__global__ void smooth(float *cur, float *nxt, int n, int depth,
                       int rounds) {
    int t = threadIdx.x;
    if (t > 0 && t < n - 1) {
        nxt[t] = 0.25f * cur[t - 1] + 0.5f * cur[t] + 0.25f * cur[t + 1];
    }
    __syncthreads();
    if (threadIdx.x == 0) {
        if (depth < rounds) {
            smooth<<<1, 256>>>(nxt, cur, n, depth + 1, rounds);
        }
    }
}
"""

ROUNDS = 60


def run(module):
    device = Device(module)
    rng = np.random.default_rng(0)
    cur = device.upload(rng.random(256))
    nxt = device.upload(np.zeros(256))
    device.launch("smooth", 1, 256, cur, nxt, 256, 0, ROUNDS)
    device.sync()
    timing = device.finish()
    return cur.to_numpy(), nxt.to_numpy(), timing, device


def main():
    cur0, nxt0, t_base, dev_base = run(Module(SOURCE))

    program = parse(SOURCE)
    meta = PromotionPass().run(program)
    cur1, nxt1, t_prom, dev_prom = run(Module(program, meta))

    assert np.allclose(cur0, cur1) and np.allclose(nxt0, nxt1)
    print("%d-round recursive stencil smoothing:" % ROUNDS)
    print("  recursive CDP : %8d cycles, %2d dynamic launches"
          % (t_base.total_time, dev_base.trace.total_launches("device")))
    print("  promoted loop : %8d cycles, %2d dynamic launches"
          % (t_prom.total_time, dev_prom.trace.total_launches("device")))
    print("  speedup       : %.2fx" % (t_base.total_time / t_prom.total_time))


if __name__ == "__main__":
    main()
