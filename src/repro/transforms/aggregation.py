"""Aggregation transformation (Sec. II-B, V; Fig. 7).

Child grids launched by many parent threads are consolidated into one
aggregated grid. Four granularities are supported:

* ``warp``       — threads of one warp coordinate (prior work);
* ``block``      — threads of one block coordinate (prior work / KLAP);
* ``multiblock`` — groups of ``_AGG_GRANULARITY`` parent blocks coordinate
  through global atomics and a group-completion counter; the last block of
  the group to finish performs the launch (the paper's contribution, Fig. 7);
* ``grid``       — the whole parent grid coordinates; the aggregated launch
  is performed by the *host* after the parent grid terminates.

The parent kernel is rewritten as follows. Buffer parameters are appended to
its signature (the host runtime allocates and zeroes them per launch — the
paper's "pre-allocated buffer"). A prologue computes the thread's group index
and segment base. The original body is wrapped in ``do { ... } while(false)``
with thread-exit ``return`` rewritten to ``break`` so that every thread falls
through to the epilogue, which (for device granularities) fences, syncs, and
counts completed blocks — the last block of the group launches the aggregated
child. The launch site itself becomes the *store* code of Fig. 7 lines 18-25.

The aggregated child kernel is a clone of the (possibly already coarsened)
child whose prologue is the *disaggregation* logic: a binary search over the
scanned grid-dimension array identifies the original parent, then the
original arguments and configuration are loaded from the buffers (Fig. 7
lines 01-11).

Statements inserted by this pass are region-tagged ``"agg"`` (parent side)
or ``"disagg"`` (child side) so the engine can attribute their cycles for
the Fig. 10 breakdown.

A note on atomicity: Fig. 7 increments ``_numParents`` and ``_sumGDim``
with a *single* 64-bit atomic so that the scanned array is written in a
consistent order. The engine executes threads of a grid sequentially, so two
adjacent 32-bit atomics are equivalent there; the cost model charges them as
one paired atomic.

The aggregation threshold (Sec. V-B, ``warp``/``block`` only): participating
threads are counted first; if fewer than ``_AGG_THRESHOLD`` participate, each
parent thread launches its own (un-aggregated) child from the values it
already stored, using a thread-local saved index.
"""

from ..minicuda import ast
from ..minicuda import builders as b
from ..analysis import (NameAllocator, SymbolTable, analyze_kernel,
                        declared_names, find_launch_sites, resolve_child)
from ..errors import TransformError
from ..minicuda.ast import set_region
from .base import AggSpec, ModuleMeta, insert_after, rewrite_launches, \
    substitute_reserved
from .thresholding import _ReturnToContinue

AGG_GRANULARITY_MACRO = "_AGG_GRANULARITY"
AGG_THRESHOLD_MACRO = "_AGG_THRESHOLD"

GRANULARITIES = ("warp", "block", "multiblock", "grid")

#: Default group size (in parent blocks) for multi-block granularity.
DEFAULT_GROUP_BLOCKS = 8


class _ReturnToBreak(_ReturnToContinue):
    """Thread-exit return → break out of the do-while wrapper."""

    def visit_Return(self, node):
        if self.loop_depth > 0:
            self.nested_return = True
            return node
        return ast.Break()


def _scalar_of(expr, symtab):
    """An int-valued expression for a launch-config operand.

    Launch configs written by earlier passes are ``dim3`` locals; take their
    ``.x``. ``dim3(e, ...)`` constructor calls yield their first argument.
    """
    if isinstance(expr, ast.Ident) and symtab is not None:
        var_type = symtab.type_of(expr.name)
        if var_type is not None and var_type.name == "dim3":
            return b.member(expr.clone(), "x")
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Ident)
            and expr.func.name == "dim3" and expr.args):
        return expr.args[0]
    return expr


class AggregationPass:
    """Kernel launch aggregation at a configurable granularity."""

    def __init__(self, granularity="multiblock",
                 group_blocks=DEFAULT_GROUP_BLOCKS, agg_threshold=None):
        if granularity not in GRANULARITIES:
            raise TransformError("unknown granularity %r" % granularity)
        if agg_threshold is not None and granularity not in ("warp", "block"):
            raise TransformError(
                "aggregation threshold requires warp or block granularity "
                "(Sec. V-B); got %r" % granularity)
        self.granularity = granularity
        self.group_blocks = 1 if granularity == "block" else group_blocks
        self.agg_threshold = agg_threshold

    def run(self, program, allocator=None):
        allocator = allocator or NameAllocator.for_program(program)
        meta = ModuleMeta(macros={})
        if self.granularity == "multiblock":
            meta.macros[AGG_GRANULARITY_MACRO] = self.group_blocks
        if self.agg_threshold is not None:
            meta.macros[AGG_THRESHOLD_MACRO] = self.agg_threshold
        agg_kernels = {}
        sites_by_parent = {}
        for site in find_launch_sites(program):
            sites_by_parent.setdefault(site.parent.name, []).append(site)
        for parent_name, sites in sites_by_parent.items():
            for site_index, site in enumerate(sites):
                self._transform_site(program, site, site_index, allocator,
                                     agg_kernels, meta)
        return meta

    # -- one launch site ----------------------------------------------------

    def _transform_site(self, program, site, site_index, allocator,
                        agg_kernels, meta):
        parent = site.parent
        child = resolve_child(program, site)
        if analyze_kernel(program, child).is_multidimensional:
            # The scanned-grid-dimension array and the blockIdx binary
            # search are one-dimensional; multi-dimensional children keep
            # their direct launches.
            meta.skipped_sites.append(
                (parent.name, child.name, "multi-dimensional kernel"))
            return
        if child.name not in agg_kernels:
            agg_fn = self._build_agg_kernel(child, allocator)
            insert_after(program, child.name, agg_fn)
            agg_kernels[child.name] = agg_fn.name
        agg_name = agg_kernels[child.name]

        names = self._site_names(parent, site_index)
        spec = AggSpec(
            parent=parent.name,
            site_index=site_index,
            agg_kernel=agg_name,
            original_child=child.name,
            granularity=self.granularity,
            group_blocks=self.group_blocks,
            arg_types=[p.type.clone() for p in child.params],
            buffer_params=self._buffer_param_names(names, child),
            host_launch=(self.granularity == "grid"),
            agg_threshold=self.agg_threshold is not None,
        )
        self._append_buffer_params(parent, names, child)
        symtab = SymbolTable(program, parent)
        store = self._store_block(site.launch, child, names, symtab)
        self._rewrite_parent(parent, site.launch, store, names, child,
                             agg_name)
        meta.agg_specs.append(spec)

    def _site_names(self, parent, site_index):
        """Buffer/local names for one site, collision-free within parent."""
        taken = declared_names(parent)
        prefix = "_agg%d" % site_index

        def fresh(stem):
            name = prefix + stem
            while name in taken:
                name = "_" + name
            taken.add(name)
            return name

        return {
            "args": fresh("_args"),       # per-arg arrays get k suffix
            "scan": fresh("_scan"),
            "bdimarr": fresh("_bdimarr"),
            "nparents": fresh("_nparents"),
            "sumgdim": fresh("_sumgdim"),
            "maxbdim": fresh("_maxbdim"),
            "nfinished": fresh("_nfinished"),
            "part": fresh("_part"),
            "grp": fresh("_grp"),
            "seg": fresh("_seg"),
            "gsz": fresh("_gsz"),
            "mypi": fresh("_mypi"),
            "mygd": fresh("_mygd"),
            "mybd": fresh("_mybd"),
        }

    def _buffer_param_names(self, names, child):
        buffers = ["%s%d" % (names["args"], k)
                   for k in range(len(child.params))]
        buffers += [names["scan"], names["bdimarr"], names["nparents"],
                    names["sumgdim"], names["maxbdim"]]
        if self.granularity != "grid":
            buffers.append(names["nfinished"])
        if self.agg_threshold is not None:
            buffers.append(names["part"])
        return buffers

    def _append_buffer_params(self, parent, names, child):
        for k, param in enumerate(child.params):
            parent.params.append(ast.Param(
                param.type.pointer_to(), "%s%d" % (names["args"], k)))
        int_ptr = ast.INT.pointer_to()
        for key in ("scan", "bdimarr", "nparents", "sumgdim", "maxbdim"):
            parent.params.append(ast.Param(int_ptr.clone(), names[key]))
        if self.granularity != "grid":
            parent.params.append(
                ast.Param(int_ptr.clone(), names["nfinished"]))
        if self.agg_threshold is not None:
            parent.params.append(ast.Param(int_ptr.clone(), names["part"]))

    # -- parent pieces -----------------------------------------------------

    def _prologue(self, names):
        """Group index, segment base, and (with agg threshold) saved state."""
        grp, seg, gsz = names["grp"], names["seg"], names["gsz"]
        stmts = []
        if self.granularity == "grid":
            stmts.append(b.decl_int(grp, 0))
            stmts.append(b.decl_int(seg, 0))
        elif self.granularity == "warp":
            warps_per_block = b.ceil_div(b.member("blockDim", "x"), b.lit(32))
            global_warp = b.add(
                b.mul(b.member("blockIdx", "x"), warps_per_block),
                b.div(b.member("threadIdx", "x"), b.lit(32)))
            stmts.append(b.decl_int(grp, global_warp))
            stmts.append(b.decl_int(seg, b.mul(b.ident(grp), b.lit(32))))
            warp_base = b.mul(b.div(b.member("threadIdx", "x"), b.lit(32)),
                              b.lit(32))
            stmts.append(b.decl_int(
                gsz, b.call("min", b.lit(32),
                            b.sub(b.member("blockDim", "x"), warp_base))))
        else:
            group = (b.ident(AGG_GRANULARITY_MACRO)
                     if self.granularity == "multiblock" else b.lit(1))
            stmts.append(b.decl_int(
                grp, b.div(b.member("blockIdx", "x"), group.clone())))
            stmts.append(b.decl_int(
                seg, b.mul(b.ident(grp),
                           b.mul(group.clone(), b.member("blockDim", "x")))))
            stmts.append(b.decl_int(
                gsz, b.call("min", group.clone(),
                            b.sub(b.member("gridDim", "x"),
                                  b.mul(b.ident(grp), group.clone())))))
        if self.agg_threshold is not None:
            stmts.append(b.decl_int(names["mypi"], -1))
            stmts.append(b.decl_int(names["mygd"], 0))
            stmts.append(b.decl_int(names["mybd"], 0))
        for stmt in stmts:
            set_region(stmt, "agg")
        return stmts

    def _store_block(self, launch, child, names, symtab):
        """Fig. 7 lines 14-25: the launch site becomes config/arg stores."""
        grp, seg = names["grp"], names["seg"]
        gd = names["grp"] + "_gd"
        bd = names["grp"] + "_bd"
        pi = names["grp"] + "_pi"
        sp = names["grp"] + "_sp"
        stmts = [
            b.decl_int(gd, _scalar_of(launch.grid, symtab)),
            b.decl_int(bd, _scalar_of(launch.block, symtab)),
        ]
        slot = b.add(b.ident(seg), b.ident(pi))
        store = [
            b.decl_int(pi, b.call(
                "atomicAdd", b.address_of(b.index(names["nparents"],
                                                  b.ident(grp))), 1)),
            b.decl_int(sp, b.call(
                "atomicAdd", b.address_of(b.index(names["sumgdim"],
                                                  b.ident(grp))),
                b.ident(gd))),
        ]
        for k, arg in enumerate(launch.args):
            store.append(b.expr_stmt(b.assign(
                b.index("%s%d" % (names["args"], k), slot.clone()), arg)))
        store.append(b.expr_stmt(b.assign(
            b.index(names["scan"], slot.clone()),
            b.add(b.ident(sp), b.ident(gd)))))
        store.append(b.expr_stmt(b.assign(
            b.index(names["bdimarr"], slot.clone()), b.ident(bd))))
        store.append(b.expr_stmt(b.call(
            "atomicMax", b.address_of(b.index(names["maxbdim"],
                                              b.ident(grp))),
            b.ident(bd))))
        if self.agg_threshold is not None:
            store.append(b.expr_stmt(b.call(
                "atomicAdd", b.address_of(b.index(names["part"],
                                                  b.ident(grp))), 1)))
            store.append(b.expr_stmt(b.assign(names["mypi"], b.ident(pi))))
            store.append(b.expr_stmt(b.assign(names["mygd"], b.ident(gd))))
            store.append(b.expr_stmt(b.assign(names["mybd"], b.ident(bd))))
        stmts.append(b.if_stmt(b.binop(">", b.ident(gd), 0), store))
        block = b.block(*stmts)
        set_region(block, "agg")
        return block

    def _epilogue(self, names, child, agg_name):
        """Fence, sync, completion count, and the aggregated launch."""
        grp, seg = names["grp"], names["seg"]
        if self.granularity == "grid":
            return []

        launch_stmt = self._agg_launch(names, child, agg_name)
        nf = names["grp"] + "_nf"
        count_and_launch = [
            b.decl_int(nf, b.add(b.call(
                "atomicAdd",
                b.address_of(b.index(names["nfinished"], b.ident(grp))),
                1), 1)),
            b.if_stmt(b.eq(b.ident(nf), b.ident(names["gsz"])),
                      [b.if_stmt(
                          b.binop(">", b.index(names["sumgdim"],
                                               b.ident(grp)), 0),
                          [launch_stmt])]),
        ]
        stmts = [b.expr_stmt(b.call("__threadfence"))]
        if self.granularity == "warp":
            # Per-thread completion counting; no block barrier required.
            stmts.extend(count_and_launch)
        else:
            stmts.append(b.expr_stmt(b.call("__syncthreads")))
            stmts.append(b.if_stmt(
                b.eq(b.member("threadIdx", "x"), 0), count_and_launch))
        if self.agg_threshold is not None:
            stmts = self._threshold_epilogue(names, child, stmts)
        for stmt in stmts:
            set_region(stmt, "agg")
        return stmts

    def _threshold_epilogue(self, names, child, agg_path):
        """Sec. V-B: aggregate only if enough parents participate."""
        grp, seg = names["grp"], names["seg"]
        slot = b.add(b.ident(seg), b.ident(names["mypi"]))
        direct_args = [
            b.index("%s%d" % (names["args"], k), slot.clone())
            for k in range(len(child.params))
        ]
        direct_launch = b.expr_stmt(ast.Launch(
            child.name, b.ident(names["mygd"]), b.ident(names["mybd"]),
            direct_args))
        return [
            b.expr_stmt(b.call("__threadfence")),
            b.expr_stmt(b.call("__syncthreads")),
            b.if_stmt(
                b.ge(b.index(names["part"], b.ident(grp)),
                     b.ident(AGG_THRESHOLD_MACRO)),
                agg_path,
                [b.if_stmt(b.ge(b.ident(names["mypi"]), 0),
                           [direct_launch])]),
        ]

    def _agg_launch(self, names, child, agg_name):
        grp, seg = names["grp"], names["seg"]
        args = [b.add(b.ident("%s%d" % (names["args"], k)), b.ident(seg))
                for k in range(len(child.params))]
        args.append(b.add(b.ident(names["scan"]), b.ident(seg)))
        args.append(b.add(b.ident(names["bdimarr"]), b.ident(seg)))
        args.append(b.index(names["nparents"], b.ident(grp)))
        return b.expr_stmt(ast.Launch(
            agg_name,
            b.index(names["sumgdim"], b.ident(grp)),
            b.index(names["maxbdim"], b.ident(grp)),
            args))

    def _rewrite_parent(self, parent, target_launch, store, names, child,
                        agg_name):
        def rewrite(launch):
            if launch is not target_launch:
                return None
            return store

        rewrite_launches(parent, rewrite)
        epilogue = self._epilogue(names, child, agg_name)
        body = parent.body
        if epilogue:
            rewriter = _ReturnToBreak()
            body = rewriter.visit(body)
            if rewriter.nested_return:
                raise TransformError(
                    "parent kernel %r has a return inside a loop; cannot "
                    "route all threads to the aggregation epilogue"
                    % parent.name)
            wrapped = ast.DoWhile(body, ast.BoolLit(False))
            parent.body = b.block(self._prologue(names), wrapped, epilogue)
        else:
            parent.body = b.block(self._prologue(names), body)

    # -- aggregated child kernel ------------------------------------------

    def _build_agg_kernel(self, child, allocator):
        taken = declared_names(child)

        def local(stem):
            name = stem
            while name in taken:
                name = "_" + name
            taken.add(name)
            return name

        args_arr = local("_argsArr")
        scan_arr = local("_scanArr")
        bdim_arr = local("_bdimArr")
        nparents = local("_nParents")
        lo, hi, mid = local("_lo"), local("_hi"), local("_mid")
        pidx, prev = local("_parentIdx"), local("_prevScan")
        bx, gdx, bdx = local("_bx"), local("_gDimX"), local("_bDimX")

        params = []
        for k, p in enumerate(child.params):
            params.append(ast.Param(p.type.pointer_to(),
                                    "%s%d" % (args_arr, k)))
        params.append(ast.Param(ast.INT.pointer_to(), scan_arr))
        params.append(ast.Param(ast.INT.pointer_to(), bdim_arr))
        params.append(ast.Param(ast.INT.clone(), nparents))

        search = [
            b.decl_int(lo, 0),
            b.decl_int(hi, b.sub(b.ident(nparents), 1)),
            ast.While(
                b.lt(b.ident(lo), b.ident(hi)),
                b.block(
                    b.decl_int(mid, b.div(b.add(lo, hi), b.lit(2))),
                    b.if_stmt(
                        b.binop(">", b.index(scan_arr, b.ident(mid)),
                                b.member("blockIdx", "x")),
                        b.block(b.expr_stmt(b.assign(hi, b.ident(mid)))),
                        b.block(b.expr_stmt(
                            b.assign(lo, b.add(mid, 1))))))),
            b.decl_int(pidx, b.ident(lo)),
            b.decl_int(prev, ast.Ternary(
                b.eq(b.ident(pidx), 0), b.lit(0),
                b.index(scan_arr, b.sub(b.ident(pidx), 1)))),
            b.decl_int(bx, b.sub(b.member("blockIdx", "x"), b.ident(prev))),
            b.decl_int(gdx, b.sub(b.index(scan_arr, b.ident(pidx)),
                                  b.ident(prev))),
            b.decl_int(bdx, b.index(bdim_arr, b.ident(pidx))),
        ]
        loads = [
            b.decl(p.type.clone(), p.name,
                   b.index("%s%d" % (args_arr, k), b.ident(pidx)))
            for k, p in enumerate(child.params)
        ]
        for stmt in search + loads:
            set_region(stmt, "disagg")

        body = child.body.clone()
        substitute_reserved(
            body,
            member_map={
                ("blockIdx", "x"): b.ident(bx),
                ("gridDim", "x"): b.ident(gdx),
                ("blockDim", "x"): b.ident(bdx),
            })
        guard = b.if_stmt(
            b.lt(b.member("threadIdx", "x"), b.ident(bdx)), body)
        return ast.FunctionDef(
            ("__global__",), ast.VOID.clone(),
            allocator.fresh(child.name + "_agg"),
            params, b.block(search, loads, guard))
