"""Module loading, device config, cost model, and trace record tests."""

import pytest

from repro.engine import Dim3, Module, run_grid, alloc_for_type
from repro.errors import CodegenError
from repro.minicuda.ast import Type
from repro.sim import (CostModel, DeviceConfig, Trace, call_cost)


class TestModule:
    def test_python_source_exposed(self):
        module = Module("__global__ void k(int *p) { p[0] = 1; }")
        assert "def k_k(" in module.python_source

    def test_global_array(self):
        src = """
        __device__ int table[8];
        __global__ void k(int *out) {
            table[threadIdx.x] = threadIdx.x * 3;
            out[threadIdx.x] = table[threadIdx.x];
        }
        """
        module = Module(src)
        out = alloc_for_type(Type("int"), 8)
        run_grid(module, Trace(), "k", Dim3(1), Dim3(8), (out,))
        assert list(module.global_ptr("table").array) == \
            [0, 3, 6, 9, 12, 15, 18, 21]

    def test_global_initializer(self):
        module = Module("__device__ int seed = 7;\n"
                        "__global__ void k(int *p) { p[0] = seed; }")
        assert module.global_ptr("seed")[0] == 7

    def test_reset_globals(self):
        module = Module("__device__ int counter = 5;\n"
                        "__global__ void k(int *p) { counter = 9; }")
        run_grid(module, Trace(), "k", Dim3(1), Dim3(1),
                 (alloc_for_type(Type("int"), 1),))
        assert module.global_ptr("counter")[0] == 9
        module.reset_globals()
        assert module.global_ptr("counter")[0] == 5

    def test_non_literal_global_size_rejected(self):
        with pytest.raises(CodegenError):
            Module("__device__ int table[n];\n"
                   "__global__ void k(int *p) { p[0] = 1; }")

    def test_kernel_params_recorded(self):
        module = Module(
            "__global__ void k(int *p, float x, dim3 d) { p[0] = x; }")
        params = module.kernel("k").params
        assert [name for name, _ in params] == ["p", "x", "d"]
        assert params[0][1].pointers == 1
        assert params[2][1].name == "dim3"


class TestDeviceConfig:
    def test_block_slots_thread_limited(self):
        config = DeviceConfig(max_blocks_per_sm=16, max_threads_per_sm=1024)
        assert config.block_slots(1024) == 1
        assert config.block_slots(512) == 2
        assert config.block_slots(1) == 16

    def test_block_service_and_latency(self):
        config = DeviceConfig(issue_width=2, block_overhead=10)
        assert config.block_service(100) == 60
        assert config.block_latency(100) == 110
        assert config.block_duration(100, 100) == 110
        assert config.block_duration(10, 1000) == 510

    def test_frozen(self):
        with pytest.raises(Exception):
            DeviceConfig().num_sms = 3


class TestCostModel:
    def test_cost_ordering(self):
        cm = CostModel()
        assert cm.alu < cm.mem < cm.atomic < cm.launch_issue

    def test_call_cost_classes(self):
        cm = CostModel()
        assert call_cost(cm, "atomicAdd") == cm.atomic
        assert call_cost(cm, "sqrtf") == cm.math_fn
        assert call_cost(cm, "min") == cm.alu
        assert call_cost(cm, "__threadfence") == cm.fence
        assert call_cost(cm, "somedevicefn") == 0

    def test_custom_cost_model_flows_into_codegen(self):
        cheap = CostModel(mem=1, alu=1)
        costly = CostModel(mem=500, alu=1)
        src = "__global__ void k(int *p) { p[0] = p[1] + p[2]; }"
        trace1, trace2 = Trace(), Trace()
        r1 = run_grid(Module(src, cost_model=cheap), trace1, "k",
                      Dim3(1), Dim3(1),
                      (alloc_for_type(Type("int"), 3),))
        r2 = run_grid(Module(src, cost_model=costly), trace2, "k",
                      Dim3(1), Dim3(1),
                      (alloc_for_type(Type("int"), 3),))
        assert r2.total_cycles > r1.total_cycles + 1000


class TestTrace:
    def test_new_grid_ids_sequential(self):
        trace = Trace()
        a = trace.new_grid("a", 1, 32)
        b = trace.new_grid("b", 2, 64)
        assert (a.gid, b.gid) == (0, 1)

    def test_dynamic_classification(self):
        from repro.sim import DEVICE, HOST, LaunchRecord
        trace = Trace()
        grid = trace.new_grid("k", 1, 32)
        assert not grid.is_dynamic
        grid.launch = LaunchRecord(kind=HOST, grid=grid)
        assert not grid.is_dynamic
        grid.launch = LaunchRecord(kind=DEVICE, grid=grid)
        assert grid.is_dynamic

    def test_total_launches_by_kind(self):
        from repro.sim import DEVICE, HOST, LaunchRecord
        trace = Trace()
        for kind in (HOST, DEVICE, DEVICE):
            grid = trace.new_grid("k", 1, 32)
            grid.launch = LaunchRecord(kind=kind, grid=grid)
        assert trace.total_launches() == 3
        assert trace.total_launches(DEVICE) == 2
        assert len(trace.dynamic_grids()) == 2
