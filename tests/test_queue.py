"""The miss-path request scheduler (repro.harness.queue).

Exercises the scheduler against fake executors (the contract only needs
``run_one``): per-point in-flight dedup joins, bounded-queue
backpressure, strict FIFO fairness, batch submission atomicity,
graceful drain vs. abandoning close, and worker crash containment.
"""

import threading
import time

import pytest

from repro.errors import QueueClosedError, QueueFullError
from repro.harness.cache import point_key
from repro.harness.queue import RequestScheduler
from repro.harness.sweep import PointFailure, SweepPoint
from repro.harness.variants import TuningParams


def make_point(threshold):
    """Distinct thresholds on CDP+T give distinct masked cache keys."""
    return SweepPoint("BFS", "KRON", "CDP+T",
                      TuningParams(threshold=threshold), scale=0.08)


class FakeExecutor:
    """Stands in for a SweepExecutor: the scheduler only calls
    ``run_one(point, on_error="continue")``."""

    def __init__(self, fn=None):
        self.fn = fn or (lambda point: ("result", point.params.threshold))
        self.ran = []

    def run_one(self, point, on_error="continue"):
        self.ran.append(point)
        return self.fn(point)


class GatedExecutor(FakeExecutor):
    """Blocks every run until the test opens the gate."""

    def __init__(self, fn=None):
        super().__init__(fn)
        self.entered = threading.Event()
        self.gate = threading.Event()

    def run_one(self, point, on_error="continue"):
        self.entered.set()
        assert self.gate.wait(30), "test gate never opened"
        return super().run_one(point, on_error=on_error)


def close_quietly(scheduler):
    scheduler.close(drain=False, timeout=5)


class TestDedup:
    def test_concurrent_submissions_share_one_task(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=8)
        try:
            point = make_point(16)
            first = scheduler.submit(point)
            assert executor.entered.wait(30)
            # In flight now: an identical spec joins instead of queueing.
            second = scheduler.submit(make_point(16))
            assert second is first
            assert scheduler.dedup_joins == 1
            assert scheduler.submitted == 1
            executor.gate.set()
            assert scheduler.result(first, timeout=30) \
                == scheduler.result(second, timeout=30)
            assert len(executor.ran) == 1
            assert scheduler.completed == 1
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_distinct_keys_do_not_join(self):
        scheduler = RequestScheduler([FakeExecutor()], max_pending=8)
        try:
            a = scheduler.submit(make_point(8))
            b = scheduler.submit(make_point(32))
            assert a is not b
            assert scheduler.result(a, timeout=30) == ("result", 8)
            assert scheduler.result(b, timeout=30) == ("result", 32)
            assert scheduler.dedup_joins == 0
        finally:
            close_quietly(scheduler)

    def test_completed_task_does_not_dedup(self):
        """Dedup is *in-flight* only: once a task finishes, the same key
        schedules fresh work (the cache, not the queue, makes it cheap)."""
        scheduler = RequestScheduler([FakeExecutor()], max_pending=8)
        try:
            first = scheduler.submit(make_point(16))
            scheduler.result(first, timeout=30)
            second = scheduler.submit(make_point(16))
            assert second is not first
            assert scheduler.dedup_joins == 0
        finally:
            close_quietly(scheduler)

    def test_submit_all_dedups_within_the_batch(self):
        """mask_params can collapse a grid: duplicate keys inside one
        batch must also share one task."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=8)
        try:
            tasks = scheduler.submit_all(
                [make_point(16), make_point(16), make_point(32)])
            assert tasks[0] is tasks[1]
            assert tasks[0] is not tasks[2]
            assert scheduler.submitted == 2
            assert scheduler.dedup_joins == 1
            executor.gate.set()
            assert scheduler.result(tasks[1], timeout=30) == ("result", 16)
        finally:
            executor.gate.set()
            close_quietly(scheduler)


class TestBackpressure:
    def test_full_queue_rejects(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=1)
        try:
            running = scheduler.submit(make_point(4))
            assert executor.entered.wait(30)
            queued = scheduler.submit(make_point(8))   # fills the queue
            with pytest.raises(QueueFullError):
                scheduler.submit(make_point(16))
            assert scheduler.rejected == 1
            # Joining an in-flight key is NOT bounded by the queue —
            # joins add no work.
            assert scheduler.submit(make_point(8)) is queued
            executor.gate.set()
            scheduler.result(running, timeout=30)
            scheduler.result(queued, timeout=30)
            # Once drained there is room again.
            scheduler.result(scheduler.submit(make_point(16)), timeout=30)
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_submit_all_checks_whole_batch(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=2)
        try:
            first = scheduler.submit(make_point(4))
            assert executor.entered.wait(30)
            with pytest.raises(QueueFullError):
                scheduler.submit_all(
                    [make_point(8), make_point(16), make_point(32)])
            executor.gate.set()
            scheduler.result(first, timeout=30)
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_rejected_batch_leaves_counters_untouched(self):
        """A 503'd batch must not leak joins/submissions into the
        counters (or onto other requests' live tasks) — the dedup-proof
        deltas CI asserts depend on it."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=2)
        try:
            running = scheduler.submit(make_point(4))
            assert executor.entered.wait(30)
            queued = scheduler.submit(make_point(8))
            with pytest.raises(QueueFullError):
                # One join of the queued task plus three fresh points:
                # the fresh remainder overflows, the join must unwind.
                scheduler.submit_all([make_point(8), make_point(16),
                                      make_point(32), make_point(64)])
            assert scheduler.dedup_joins == 0
            assert queued.joins == 0
            assert scheduler.submitted == 2
            assert scheduler.rejected == 1
            executor.gate.set()
            scheduler.result(running, timeout=30)
            scheduler.result(queued, timeout=30)
        finally:
            executor.gate.set()
            close_quietly(scheduler)


class TestFairness:
    def test_strict_fifo_with_one_worker(self):
        order = []
        lock = threading.Lock()

        def record(point):
            with lock:
                order.append(point.params.threshold)
            return point.params.threshold

        executor = GatedExecutor(record)
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            thresholds = [4, 8, 16, 32, 64]
            tasks = [scheduler.submit(make_point(t)) for t in thresholds]
            executor.gate.set()
            for task in tasks:
                scheduler.result(task, timeout=30)
            assert order == thresholds
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_batch_cannot_be_interleaved(self):
        """submit_all holds the lock for the whole batch, so another
        request's point cannot land in the middle of it."""
        order = []

        def record(point):
            order.append(point.params.threshold)
            return point.params.threshold

        executor = GatedExecutor(record)
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            batch = scheduler.submit_all([make_point(4), make_point(8)])
            late = scheduler.submit(make_point(16))
            executor.gate.set()
            for task in [blocker] + batch + [late]:
                scheduler.result(task, timeout=30)
            assert order == [2, 4, 8, 16]
        finally:
            executor.gate.set()
            close_quietly(scheduler)


class TestDrain:
    def test_drain_finishes_queued_work(self):
        slow = FakeExecutor(lambda point: (time.sleep(0.05), "done")[-1])
        scheduler = RequestScheduler([slow], max_pending=16)
        tasks = [scheduler.submit(make_point(t)) for t in (4, 8, 16)]
        assert scheduler.close(drain=True, timeout=30) is True
        for task in tasks:
            assert task.event.is_set()
            assert task.result == "done"
        assert scheduler.completed == 3
        assert scheduler.failed == 0

    def test_closed_scheduler_rejects_new_work(self):
        scheduler = RequestScheduler([FakeExecutor()], max_pending=8)
        scheduler.close(drain=True, timeout=30)
        with pytest.raises(QueueClosedError):
            scheduler.submit(make_point(4))
        with pytest.raises(QueueClosedError):
            scheduler.submit_all([make_point(8)])

    def test_abandon_resolves_pending_as_failures(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        running = scheduler.submit(make_point(4))
        assert executor.entered.wait(30)
        pending = scheduler.submit(make_point(8))
        executor.gate.set()
        scheduler.close(drain=False, timeout=30)
        # The queued-but-never-run task resolves to a structured failure
        # so no waiter hangs; the in-flight one still completes.
        result = scheduler.result(pending, timeout=5)
        assert isinstance(result, PointFailure)
        assert result.error == "QueueClosedError"
        assert scheduler.result(running, timeout=5) == ("result", 4)

    def test_close_is_idempotent(self):
        scheduler = RequestScheduler([FakeExecutor()], max_pending=8)
        assert scheduler.close(drain=True, timeout=30) is True
        assert scheduler.close(drain=True, timeout=30) is True


class TestWorkerCrash:
    def test_executor_exception_becomes_point_failure(self):
        def boom(point):
            raise RuntimeError("executor exploded")

        scheduler = RequestScheduler([FakeExecutor(boom)], max_pending=8)
        try:
            task = scheduler.submit(make_point(4))
            result = scheduler.result(task, timeout=30)
            assert isinstance(result, PointFailure)
            assert result.error == "RuntimeError"
            assert scheduler.failed == 1
            # The worker thread survives and serves the next task.
            second = scheduler.submit(make_point(8))
            assert isinstance(scheduler.result(second, timeout=30),
                              PointFailure)
            assert scheduler.completed == 2
        finally:
            close_quietly(scheduler)


class TestStats:
    def test_stats_dict_shape(self):
        scheduler = RequestScheduler([FakeExecutor()], max_pending=8)
        try:
            scheduler.result(scheduler.submit(make_point(4)), timeout=30)
            stats = scheduler.stats_dict()
            assert stats == {"workers": 1, "max_pending": 8, "depth": 0,
                             "by_priority": {}, "inflight": 0,
                             "submitted": 1, "dedup_joins": 0,
                             "rejected": 0, "completed": 1, "failed": 0,
                             "shed": 0, "draining": False}
        finally:
            close_quietly(scheduler)

    def test_task_keys_are_point_keys(self):
        scheduler = RequestScheduler([FakeExecutor()], max_pending=8)
        try:
            point = make_point(4)
            task = scheduler.submit(point)
            assert task.key == point_key(point)
            scheduler.result(task, timeout=30)
        finally:
            close_quietly(scheduler)
