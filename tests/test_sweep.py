"""Sweep engine tests: serial/parallel equivalence across every backend,
per-point error attribution, cache behavior, corruption recovery, and
executor-routed tuning."""

import json
import multiprocessing
import os

import pytest

from repro.benchmarks import get_benchmark
from repro.harness import (BACKENDS, PointFailure, ResultCache, RunResult,
                           SweepExecutor, SweepPoint, SweepPointError,
                           TuningParams, figure11, figure12, point_key,
                           quick_tune, run_sweep, run_variant, sweep_grid,
                           tune)

from . import conftest
from repro.harness import figures as figures_mod
from repro.harness import sweep as sweep_mod
from repro.sim.config import DeviceConfig

SCALE = 0.08

#: A small fig9-style grid: two pairs x three variants.
PAIRS = (("BFS", "KRON"), ("SSSP", "KRON"))
LABELS = ("No CDP", "CDP", "CDP+T+C+A")
PARAMS = TuningParams(threshold=16, coarsen_factor=4, granularity="block")


def small_grid():
    return sweep_grid(PAIRS, LABELS, scale=SCALE, params=PARAMS)


@pytest.fixture(scope="module")
def serial_results():
    return SweepExecutor(jobs=1).run(small_grid())


@pytest.fixture(name="worker_fleet", scope="module")
def worker_fleet_fixture():
    """Two in-process worker daemons backing the ``remote`` backend."""
    with conftest.worker_fleet() as servers:
        yield [server.address for server in servers]


def make_executor(backend, worker_fleet, jobs=3, **kwargs):
    """SweepExecutor on *backend*; the remote one gets the test fleet
    (remote rejects jobs>1 — its parallelism is one chunk per worker)."""
    if backend == "remote":
        return SweepExecutor(backend=backend, workers=worker_fleet,
                             **kwargs)
    return SweepExecutor(jobs=jobs, backend=backend, **kwargs)


class TestSerialParallelEquivalence:
    def test_parallel_results_identical(self, serial_results):
        parallel = SweepExecutor(jobs=3).run(small_grid())
        assert parallel == serial_results

    def test_matches_direct_run_variant(self, serial_results):
        point = small_grid()[2]     # BFS/KRON CDP+T+C+A
        bench = get_benchmark(point.benchmark)
        data = bench.build_dataset(point.dataset, point.scale)
        direct = run_variant(bench, data, point.label, point.params,
                             point.device_config)
        assert serial_results[2] == direct

    def test_ordering_follows_input(self, serial_results):
        labels = [(r.benchmark, r.label) for r in serial_results]
        assert labels == [(b, l) for b, _ in PAIRS for l in LABELS]

    def test_run_sweep_convenience(self, serial_results, tmp_path):
        results, stats = run_sweep(small_grid(), jobs=2,
                                   cache_dir=str(tmp_path / "cache"))
        assert results == serial_results
        assert stats.simulated == len(serial_results)


class TestBackends:
    def test_default_backend_tracks_jobs(self):
        assert SweepExecutor(jobs=1).backend.name == "serial"
        assert SweepExecutor(jobs=4).backend.name == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            SweepExecutor(jobs=2, backend="quantum")

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            SweepExecutor(on_error="ignore")
        with pytest.raises(ValueError, match="on_error"):
            SweepExecutor().run([], on_error="Raise")

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_backend_parity(self, serial_results, backend, worker_fleet):
        with make_executor(backend, worker_fleet) as executor:
            assert executor.backend.name == backend
            assert executor.run(small_grid()) == serial_results

    def test_chunked_submission_preserves_order(self, serial_results):
        with SweepExecutor(jobs=2, backend="thread",
                           chunk_size=2) as executor:
            assert executor.run(small_grid()) == serial_results

    def test_run_sweep_accepts_backend(self, serial_results):
        results, stats = run_sweep(small_grid(), jobs=2, backend="thread")
        assert results == serial_results
        assert stats.simulated == len(serial_results)


_REAL_SIMULATE = sweep_mod._simulate_point


def _fail_cdp(point):
    """Patched simulator: dies on every plain-CDP point."""
    if point.label == "CDP":
        raise ValueError("injected failure")
    return _REAL_SIMULATE(point)


class TestErrorAttribution:
    @pytest.mark.parametrize("backend", (
        "serial", "thread",
        # Pool workers only see the monkeypatched simulator via fork.
        pytest.param("process", marks=pytest.mark.skipif(
            "fork" not in multiprocessing.get_all_start_methods(),
            reason="needs fork to inherit the patched simulator")),
    ))
    def test_failure_names_the_point(self, monkeypatch, backend):
        monkeypatch.setattr(sweep_mod, "_simulate_point", _fail_cdp)
        with SweepExecutor(jobs=2, backend=backend) as executor:
            with pytest.raises(SweepPointError) as exc_info:
                executor.run(small_grid())
        error = exc_info.value
        assert error.point.label == "CDP"
        assert error.point.describe() in str(error)
        assert "injected failure" in str(error)
        assert error.error == "ValueError"

    def test_continue_past_failures(self, monkeypatch, serial_results):
        monkeypatch.setattr(sweep_mod, "_simulate_point", _fail_cdp)
        executor = SweepExecutor(on_error="continue")
        results = executor.run(small_grid())
        assert len(results) == len(serial_results)
        for result, expected, point in zip(results, serial_results,
                                           small_grid()):
            if point.label == "CDP":
                assert isinstance(result, PointFailure)
                assert result.point == point
                assert "injected failure" in result.describe()
                assert isinstance(result.to_error(), SweepPointError)
            else:
                assert result == expected
        assert executor.stats.failed == 2

    def test_stats_buckets_partition_points(self, monkeypatch,
                                            serial_results, tmp_path):
        """hits + simulated + failed must equal points (failures used to
        be double-counted into simulated)."""
        cache_dir = str(tmp_path / "cache")
        SweepExecutor(cache=cache_dir).run(small_grid()[:1])  # one No-CDP hit
        monkeypatch.setattr(sweep_mod, "_simulate_point", _fail_cdp)
        executor = SweepExecutor(cache=cache_dir, on_error="continue")
        executor.run(small_grid())
        stats = executor.stats
        assert (stats.points, stats.hits, stats.simulated,
                stats.failed) == (6, 1, 3, 2)

    def test_figures_and_tuners_force_raise(self, monkeypatch):
        """A continue-mode executor must not leak PointFailure objects
        into figure/tuner result handling — those paths force a raise
        that still names the failed point."""
        monkeypatch.setattr(sweep_mod, "_simulate_point", _fail_cdp)
        bench = get_benchmark("BFS")
        data = bench.build_dataset("KRON", SCALE)
        executor = SweepExecutor(on_error="continue")
        with pytest.raises(SweepPointError, match="BFS/KRON CDP"):
            figures_mod._run_point(bench, data, "CDP", None, None,
                                   executor, SCALE)
        with pytest.raises(SweepPointError):
            tune(bench, data, "CDP", strategy="guided",
                 executor=executor, scale=SCALE)

    def test_dataset_memo_eviction_is_thread_safe(self, monkeypatch,
                                                  serial_results):
        """Thread backend shares the dataset memo; a tiny memo limit
        forces constant concurrent eviction, which must never corrupt
        results or raise."""
        monkeypatch.setattr(sweep_mod, "_DATASET_MEMO_LIMIT", 1)
        monkeypatch.setattr(sweep_mod, "_DATASET_MEMO", {})
        with SweepExecutor(jobs=4, backend="thread",
                           chunk_size=1) as executor:
            assert executor.run(small_grid() * 3) \
                == serial_results * 3

    def test_run_level_override(self, monkeypatch):
        monkeypatch.setattr(sweep_mod, "_simulate_point", _fail_cdp)
        executor = SweepExecutor()     # default on_error="raise"
        results = executor.run(small_grid(), on_error="continue")
        assert sum(isinstance(r, PointFailure) for r in results) == 2

    def test_successes_cached_even_when_raising(self, monkeypatch,
                                                tmp_path):
        """One failed point must not throw away the rest of the batch's
        simulations: successes are stored before the error is raised."""
        cache_dir = str(tmp_path / "cache")
        monkeypatch.setattr(sweep_mod, "_simulate_point", _fail_cdp)
        with pytest.raises(SweepPointError):
            SweepExecutor(cache=cache_dir).run(small_grid())
        monkeypatch.setattr(sweep_mod, "_simulate_point", _REAL_SIMULATE)
        healed = SweepExecutor(cache=cache_dir)
        healed.run(small_grid())
        assert healed.stats.simulated == 2      # only the failed points
        assert healed.stats.hits == 4

    def test_failed_points_are_not_cached(self, monkeypatch, tmp_path):
        cache_dir = str(tmp_path / "cache")
        monkeypatch.setattr(sweep_mod, "_simulate_point", _fail_cdp)
        broken = SweepExecutor(cache=cache_dir, on_error="continue")
        broken.run(small_grid())
        assert broken.stats.failed == 2
        monkeypatch.setattr(sweep_mod, "_simulate_point", _REAL_SIMULATE)
        # The failed points must re-simulate — only successes were stored.
        healed = SweepExecutor(cache=cache_dir)
        healed.run(small_grid())
        assert healed.stats.simulated == 2
        assert healed.stats.hits == 4
        assert healed.stats.failed == 0


class TestFigureParityAcrossBackends:
    """figure11/figure12 on a tiny grid: every backend must reproduce the
    serial figures bit-for-bit."""

    TINY = 0.05

    @pytest.fixture(scope="class")
    def fig11_serial(self):
        return figure11("BFS", "KRON", scale=self.TINY)

    @pytest.fixture(scope="class")
    def fig12_tiny(self):
        patcher = pytest.MonkeyPatch()
        patcher.setattr(figures_mod, "FIG12_BENCHMARKS", ("BFS",))
        yield figure12(scale=self.TINY)
        patcher.undo()

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_figure11_parity(self, fig11_serial, backend, worker_fleet):
        with make_executor(backend, worker_fleet, jobs=2) as executor:
            fig = figure11("BFS", "KRON", scale=self.TINY,
                           executor=executor)
        assert fig.series == fig11_serial.series
        assert fig.thresholds == fig11_serial.thresholds

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_figure12_parity(self, fig12_tiny, backend, worker_fleet):
        with make_executor(backend, worker_fleet, jobs=2) as executor:
            fig = figure12(scale=self.TINY, executor=executor)
        assert fig.speedups == fig12_tiny.speedups
        assert fig.best_params == fig12_tiny.best_params


class TestResultCache:
    def test_miss_then_hit(self, serial_results, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = SweepExecutor(jobs=1, cache=cache_dir)
        assert cold.run(small_grid()) == serial_results
        assert (cold.stats.hits, cold.stats.simulated) == (0, 6)
        warm = SweepExecutor(jobs=1, cache=cache_dir)
        assert warm.run(small_grid()) == serial_results
        assert (warm.stats.hits, warm.stats.simulated) == (6, 0)

    def test_warm_run_never_invokes_simulator(self, serial_results, tmp_path,
                                              monkeypatch):
        cache_dir = str(tmp_path / "cache")
        SweepExecutor(jobs=1, cache=cache_dir).run(small_grid())

        def banned(point):
            raise AssertionError("simulator invoked on a warm run: %s"
                                 % point.describe())

        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        warm = SweepExecutor(jobs=2, cache=cache_dir)
        assert warm.run(small_grid()) == serial_results
        assert warm.stats.simulated == 0

    def test_invalidation_on_param_change(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        base = SweepPoint("BFS", "KRON", "CDP+T",
                          TuningParams(threshold=16), scale=SCALE)
        SweepExecutor(jobs=1, cache=cache_dir).run([base])
        changed = SweepPoint("BFS", "KRON", "CDP+T",
                             TuningParams(threshold=32), scale=SCALE)
        executor = SweepExecutor(jobs=1, cache=cache_dir)
        executor.run([changed])
        assert executor.stats.simulated == 1
        assert executor.stats.hits == 0

    def test_key_covers_every_spec_axis(self):
        base = SweepPoint("BFS", "KRON", "CDP+T",
                          TuningParams(threshold=16), scale=SCALE)
        variations = (
            SweepPoint("SSSP", "KRON", "CDP+T",
                       TuningParams(threshold=16), scale=SCALE),
            SweepPoint("BFS", "CNR", "CDP+T",
                       TuningParams(threshold=16), scale=SCALE),
            SweepPoint("BFS", "KRON", "CDP",
                       TuningParams(threshold=16), scale=SCALE),
            SweepPoint("BFS", "KRON", "CDP+T",
                       TuningParams(threshold=8), scale=SCALE),
            SweepPoint("BFS", "KRON", "CDP+T",
                       TuningParams(threshold=16), scale=SCALE / 2),
            SweepPoint("BFS", "KRON", "CDP+T", TuningParams(threshold=16),
                       DeviceConfig(num_sms=4), SCALE),
        )
        keys = {point_key(p) for p in variations}
        assert point_key(base) not in keys
        assert len(keys) == len(variations)

    def test_corrupted_entry_recovers(self, serial_results, tmp_path):
        cache_dir = str(tmp_path / "cache")
        point = small_grid()[1]
        SweepExecutor(jobs=1, cache=cache_dir).run([point])
        path = os.path.join(cache_dir, point_key(point) + ".json")
        with open(path, "w") as handle:
            handle.write("{not json at all")
        executor = SweepExecutor(jobs=1, cache=cache_dir)
        assert executor.run([point]) == [serial_results[1]]
        assert executor.stats.simulated == 1
        # The entry is repaired: a third run is a pure hit.
        with open(path) as handle:
            json.load(handle)
        again = SweepExecutor(jobs=1, cache=cache_dir)
        again.run([point])
        assert again.stats.hits == 1

    def test_result_roundtrip_is_exact(self, serial_results):
        for result in serial_results:
            assert RunResult.from_dict(result.to_dict()) == result

    def test_results_with_outputs_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        bench = get_benchmark("BFS")
        data = bench.build_dataset("KRON", SCALE)
        result = run_variant(bench, data, "CDP", keep_outputs=True)
        point = SweepPoint("BFS", "KRON", "CDP", scale=SCALE)
        assert cache.put(point, result) is False
        assert len(cache) == 0


class TestGridBuilder:
    def test_masks_unused_params(self):
        points = small_grid()
        by_label = {p.label: p.params for p in points[:3]}
        assert by_label["No CDP"] == TuningParams()
        assert by_label["CDP"] == TuningParams()
        assert by_label["CDP+T+C+A"] == PARAMS

    def test_group_blocks_masked_unless_multiblock(self):
        shared = TuningParams(threshold=16, granularity="block",
                              group_blocks=16)
        point, = sweep_grid([("BFS", "KRON")], ("CDP+T+A",), scale=SCALE,
                            params=shared)
        assert point.params.group_blocks == 8     # block ignores groups
        shared_mb = TuningParams(threshold=16, granularity="multiblock",
                                 group_blocks=16)
        point_mb, = sweep_grid([("BFS", "KRON")], ("CDP+T+A",), scale=SCALE,
                               params=shared_mb)
        assert point_mb.params.group_blocks == 16

    def test_params_for_override(self):
        points = sweep_grid(PAIRS, ("CDP+T",), scale=SCALE,
                            params_for=lambda b, d, l:
                            TuningParams(threshold=64))
        assert all(p.params.threshold == 64 for p in points)


class TestExecutorRoutedTuning:
    @pytest.fixture(scope="class")
    def bfs(self):
        bench = get_benchmark("BFS")
        return bench, bench.build_dataset("KRON", SCALE)

    def test_tune_matches_serial(self, bfs):
        bench, data = bfs
        serial = tune(bench, data, "CDP+T", strategy="guided")
        swept = tune(bench, data, "CDP+T", strategy="guided",
                     executor=SweepExecutor(jobs=2), scale=SCALE)
        assert swept.best == serial.best
        assert swept.best_time == serial.best_time
        assert swept.evaluated == serial.evaluated

    def test_tune_uses_cache(self, bfs, tmp_path):
        bench, data = bfs
        cache_dir = str(tmp_path / "cache")
        first = SweepExecutor(jobs=1, cache=cache_dir)
        tune(bench, data, "CDP+T", strategy="guided",
             executor=first, scale=SCALE)
        second = SweepExecutor(jobs=1, cache=cache_dir)
        tune(bench, data, "CDP+T", strategy="guided",
             executor=second, scale=SCALE)
        assert second.stats.simulated == 0
        assert second.stats.hits == first.stats.simulated

    def test_quick_tune_matches_serial(self, bfs):
        bench, data = bfs
        serial = quick_tune(bench, data, "CDP+T+C+A")
        swept = quick_tune(bench, data, "CDP+T+C+A",
                           executor=SweepExecutor(jobs=2), scale=SCALE)
        assert swept.best == serial.best
        assert swept.best_time == serial.best_time
        assert swept.evaluated == serial.evaluated
