"""Functional execution of kernels (phase 1 of the two-phase simulation).

Grids run on real data: threads execute sequentially (block by block), so
atomics need no locking and the paired-counter update of Fig. 7 is trivially
consistent. Kernels containing ``__syncthreads()`` are compiled to
generators; :func:`_run_block_barrier` rotates all threads of a block between
barriers and re-synchronizes their cycle counters to the slowest arrival —
threads that already returned simply stop participating (this makes the
``if (threadIdx.x < _bDim)`` disaggregation guard safe).

Dynamic launches are queued and executed breadth-first after the launching
grid completes — CUDA guarantees children see their parent's prior writes,
and no benchmark relies on stronger parent/child memory interleaving.
"""

from collections import deque

from ..errors import RuntimeLaunchError, SimulationError
from ..sim.trace import DEVICE, BlockCost, LaunchRecord
from .values import Dim3, alloc_for_type
from ..minicuda.ast import Type


class ExecContext:
    """The ``_rt`` object generated kernel code talks to.

    One instance exists per *grid execution*; per-thread state (``tc``) is
    reset by the block loops.
    """

    __slots__ = ("module", "trace", "cost_model", "grid_record",
                 "current_block", "tc", "reg_agg", "reg_disagg",
                 "reg_launch", "pending", "_shared")

    def __init__(self, module, trace, cost_model, grid_record):
        self.module = module
        self.trace = trace
        self.cost_model = cost_model
        self.grid_record = grid_record
        self.current_block = 0
        self.tc = 0
        self.reg_agg = 0
        self.reg_disagg = 0
        self.reg_launch = 0
        self.pending = []
        self._shared = {}

    def begin_block(self, block_index):
        """Reset per-block state (called by the executor per thread block)."""
        self.current_block = block_index
        self._shared.clear()

    def shared_array(self, name, size, type_name):
        """The block's __shared__ array: allocated by the first thread to
        reach the declaration, shared by the rest of the block."""
        array = self._shared.get(name)
        if array is None:
            zero = 0.0 if type_name in ("float", "double") else 0
            array = [zero] * int(size)
            self._shared[name] = array
        return array

    # -- dynamic launches --------------------------------------------------

    def launch(self, kernel, grid_dim, block_dim, args, cycles):
        issue = self.cost_model.launch_issue
        self.reg_launch += issue
        self.pending.append(
            (kernel, grid_dim, block_dim, args, self.current_block,
             cycles + self.tc))
        return cycles + issue

    # -- atomics (threads run sequentially; plain RMW is exact) ------------

    def atomic_add(self, ptr, index, value):
        old = ptr[index]
        ptr[index] = old + value
        return old

    def atomic_sub(self, ptr, index, value):
        old = ptr[index]
        ptr[index] = old - value
        return old

    def atomic_max(self, ptr, index, value):
        old = ptr[index]
        if value > old:
            ptr[index] = value
        return old

    def atomic_min(self, ptr, index, value):
        old = ptr[index]
        if value < old:
            ptr[index] = value
        return old

    def atomic_cas(self, ptr, index, compare, value):
        old = ptr[index]
        if old == compare:
            ptr[index] = value
        return old

    def atomic_exch(self, ptr, index, value):
        old = ptr[index]
        ptr[index] = value
        return old

    def atomic_or(self, ptr, index, value):
        old = ptr[index]
        ptr[index] = old | int(value)
        return old

    def atomic_and(self, ptr, index, value):
        old = ptr[index]
        ptr[index] = old & int(value)
        return old

    # -- misc ----------------------------------------------------------------

    def device_malloc(self, count, type_name):
        return alloc_for_type(Type(type_name), max(int(count), 1))

    def printf(self, fmt, *args):
        try:
            line = fmt % args if args else fmt
        except (TypeError, ValueError):
            line = fmt + " " + " ".join(repr(a) for a in args)
        self.trace.printf_lines.append(line)


def run_grid(module, trace, kernel_name, grid_dim, block_dim, args,
             launch_record=None, cost_model=None):
    """Execute one grid functionally and recursively execute its dynamic
    children. Returns the grid's :class:`~repro.sim.trace.GridRecord`."""
    cost_model = cost_model or module.cost_model
    queue = deque()
    root = _execute_single(module, trace, kernel_name, grid_dim, block_dim,
                           args, launch_record, cost_model, queue)
    while queue:
        (kernel, gdim, bdim, kargs, parent_rec, parent_block, offset) = \
            queue.popleft()
        child_launch = LaunchRecord(
            kind=DEVICE, grid=None, parent_grid=parent_rec,
            parent_block=parent_block, issue_offset=offset)
        child = _execute_single(module, trace, kernel, gdim, bdim, kargs,
                                child_launch, cost_model, queue)
        child_launch.grid = child
        parent_rec.children.append(child_launch)
    return root


def _execute_single(module, trace, kernel_name, grid_dim, block_dim, args,
                    launch_record, cost_model, queue):
    kernel = module.kernel(kernel_name)
    grid_dim = Dim3.of(grid_dim)
    block_dim = Dim3.of(block_dim)
    if grid_dim.total <= 0 or block_dim.total <= 0:
        raise RuntimeLaunchError(
            "launch of %r with empty configuration (%r, %r)"
            % (kernel_name, grid_dim, block_dim))

    record = trace.new_grid(kernel_name, grid_dim.total, block_dim.total)
    record.launch = launch_record
    rt = ExecContext(module, trace, cost_model, record)

    one_dim = (grid_dim.total == grid_dim.x
               and block_dim.total == block_dim.x
               and not kernel.multi_dim)
    if one_dim:
        run_block = _run_block_barrier if kernel.has_barrier else _run_block
        for bix in range(grid_dim.x):
            rt.begin_block(bix)
            max_warp, sum_warp, total = run_block(
                kernel.fn, rt, bix, grid_dim, block_dim, args)
            record.blocks.append(BlockCost(max_warp, sum_warp))
            record.total_cycles += total
    else:
        _run_grid_nd(kernel, rt, grid_dim, block_dim, args, record)

    record.reg_agg = rt.reg_agg
    record.reg_disagg = rt.reg_disagg
    record.reg_launch = rt.reg_launch
    for (kernel2, gdim2, bdim2, args2, pblock, offset) in rt.pending:
        queue.append((kernel2, gdim2, bdim2, args2, record, pblock, offset))
    return record


_WARP = 32


def _block_coords(gdim):
    """Yield (linear index, bx, by, bz) for every block, x fastest."""
    linear = 0
    for bz in range(gdim.z):
        for by in range(gdim.y):
            for bx in range(gdim.x):
                yield linear, bx, by, bz
                linear += 1


def _thread_coords(bdim):
    """Yield (tx, ty, tz) in CUDA linearization order (x fastest)."""
    for tz in range(bdim.z):
        for ty in range(bdim.y):
            for tx in range(bdim.x):
                yield tx, ty, tz


def _run_grid_nd(kernel, rt, gdim, bdim, args, record):
    """General multi-dimensional grid execution (barrier and non-barrier).

    Kernels compiled with the 3-D calling convention receive all six index
    components; 1-D-convention kernels launched with a multi-dimensional
    configuration still execute every (y, z) copy but only see the x
    components — matching hardware, where unused indices simply go unread.
    """
    fn = kernel.fn

    def call(bx, by, bz):
        if kernel.multi_dim:
            return [fn(rt, bx, by, bz, tx, ty, tz, gdim, bdim, *args)
                    for tx, ty, tz in _thread_coords(bdim)]
        return [fn(rt, bx, tx, gdim, bdim, *args)
                for tx, ty, tz in _thread_coords(bdim)]

    for linear, bx, by, bz in _block_coords(gdim):
        rt.begin_block(linear)
        if kernel.has_barrier:
            max_warp, sum_warp, total = _rotate_generators(
                rt, call(bx, by, bz), bdim.total)
        else:
            cycles = []
            total = 0
            for tx, ty, tz in _thread_coords(bdim):
                rt.tc = 0
                if kernel.multi_dim:
                    c = fn(rt, bx, by, bz, tx, ty, tz, gdim, bdim, *args)
                else:
                    c = fn(rt, bx, tx, gdim, bdim, *args)
                c += rt.tc
                cycles.append(c)
                total += c
            max_warp, sum_warp = _warp_costs(cycles)
        record.blocks.append(BlockCost(max_warp, sum_warp))
        record.total_cycles += total


def _warp_costs(cycles):
    max_warp = 0
    sum_warp = 0
    for base in range(0, len(cycles), _WARP):
        peak = max(cycles[base:base + _WARP])
        sum_warp += peak
        if peak > max_warp:
            max_warp = peak
    return max_warp, sum_warp


def _rotate_generators(rt, generators, num_threads):
    """Advance a block's thread generators between barriers (shared by the
    1-D barrier path and the multi-dimensional path)."""
    cycles = [0] * num_threads
    resume_value = {}
    active = list(enumerate(generators))
    rounds = 0
    while active:
        rounds += 1
        if rounds > 100000:
            raise SimulationError("barrier rotation did not converge")
        arrived = []
        for tid, gen in active:
            rt.tc = 0
            try:
                if tid in resume_value:
                    yielded = gen.send(resume_value[tid])
                else:
                    yielded = next(gen)
                arrived.append((tid, gen, yielded + rt.tc))
            except StopIteration as stop:
                cycles[tid] = (stop.value or 0) + rt.tc
        if not arrived:
            break
        barrier_time = max(c for _, _, c in arrived)
        active = []
        for tid, gen, _ in arrived:
            resume_value[tid] = barrier_time
            cycles[tid] = barrier_time
            active.append((tid, gen))
    max_warp, sum_warp = _warp_costs(cycles)
    return max_warp, sum_warp, sum(cycles)


def _run_block(fn, rt, bix, gdim, bdim, args):
    """Straight-line block: call the kernel function once per thread."""
    max_warp = 0
    sum_warp = 0
    total = 0
    warp_peak = 0
    for tix in range(bdim.x):
        rt.tc = 0
        cycles = fn(rt, bix, tix, gdim, bdim, *args) + rt.tc
        total += cycles
        if cycles > warp_peak:
            warp_peak = cycles
        if tix % _WARP == _WARP - 1:
            sum_warp += warp_peak
            if warp_peak > max_warp:
                max_warp = warp_peak
            warp_peak = 0
    if bdim.x % _WARP != 0:
        sum_warp += warp_peak
        if warp_peak > max_warp:
            max_warp = warp_peak
    return max_warp, sum_warp, total


def _run_block_barrier(fn, rt, bix, gdim, bdim, args):
    """Barrier block: rotate thread generators between __syncthreads()."""
    generators = [fn(rt, bix, tix, gdim, bdim, *args)
                  for tix in range(bdim.x)]
    return _rotate_generators(rt, generators, bdim.x)
