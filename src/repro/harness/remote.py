"""Remote sweep backend: shard one grid across a fleet of worker daemons.

The PR 2 :class:`~repro.harness.sweep.Backend` interface fans a sweep's
cache-miss points out over in-machine pools; this module extends it across
machines. A coordinator (:class:`RemoteBackend`, ``--backend remote``)
slices the miss batch into chunks and dispatches them over TCP to
``repro worker serve`` daemons (:class:`WorkerServer`), merging the results
back — in input order — into the coordinator's
:class:`~repro.harness.cache.ResultCache` exactly as a local backend would.

Wire protocol (one TCP connection per coordinator/worker pair):

* every frame is a 4-byte big-endian length prefix followed by a UTF-8
  JSON object (:func:`send_message` / :func:`recv_message`);
* the first exchange is a handshake: the coordinator's ``hello`` carries
  ``protocol``/``cache_version``/``code_version`` and the worker replies
  ``welcome`` only when all three match its own (otherwise ``reject``
  with a reason) — a version-skewed fleet can therefore never mix
  incompatible simulator results;
* afterwards the coordinator streams ``run_chunk`` requests (a list of
  :meth:`SweepPoint.spec` payloads) and the worker answers each with a
  ``chunk_result`` carrying one outcome per point, in order. ``ping`` /
  ``pong`` and ``shutdown`` / ``bye`` round out the protocol.

Failure semantics mirror the local backends (the contract is documented
in ``docs/sweep-engine.md``):

* a point that fails *inside the simulator* is trapped worker-side by
  :func:`~repro.harness.sweep._safe_worker` and travels back as an
  ``error`` outcome — the executor raises
  :class:`~repro.harness.sweep.SweepPointError` naming that point, or
  returns a :class:`~repro.harness.sweep.PointFailure` under
  ``on_error="continue"``;
* a *worker* that dies (connection drop, timeout, protocol garbage) has
  its in-flight chunk reassigned to the surviving workers; a chunk that
  has killed every worker, or outlives the last live worker, resolves to
  per-point ``RemoteWorkerError`` outcomes that flow through the same
  ``SweepPointError``/``PointFailure`` machinery;
* handshake rejection and a fleet with no reachable worker raise
  immediately (:class:`RemoteHandshakeError`/:class:`RemoteWorkerError`) —
  those are deployment errors, not point failures.

Workers are stateless: they rebuild benchmarks/datasets locally (seeded,
hence deterministic) and return timings only, so a remote sweep is
bit-identical to a serial one and the coordinator's cache stays the single
source of truth.
"""

import json
import socket
import socketserver
import struct
import sys
import threading
from collections import deque

from .. import __version__
from ..errors import ReproError
from .cache import CACHE_VERSION, decode_result, encode_result
from .metrics import REGISTRY
from .sweep import BACKENDS, Backend, SweepPoint, _auto_chunk, make_backend

#: Fleet observability (``GET /metrics`` on a coordinator that serves):
#: live connections, workers declared dead, and chunk outcomes.
_WORKERS_ALIVE = REGISTRY.gauge(
    "repro_remote_workers_alive",
    "Live worker connections held by remote backends in this process")
_WORKERS_LOST = REGISTRY.counter(
    "repro_remote_workers_lost_total",
    "Workers declared dead (connection drop, timeout, protocol garbage)")
_CHUNKS_TOTAL = REGISTRY.counter(
    "repro_remote_chunks_total",
    "Chunk dispatches by outcome (reassigned chunks count once per "
    "attempt; abandoned ones resolve to per-point failures)",
    ("outcome",))

__all__ = [
    "PROTOCOL_VERSION", "RemoteBackend", "RemoteError",
    "RemoteHandshakeError", "RemoteProtocolError", "RemoteWorkerError",
    "WorkerServer", "parse_workers", "recv_message", "send_message",
    "worker_ping", "worker_stop",
]

#: Bump on any incompatible wire-protocol change; checked in the handshake
#: together with :data:`~repro.harness.cache.CACHE_VERSION` and
#: ``repro.__version__``.
#: 2: ok outcomes carry the measured per-point simulation wall time
#: (``["ok", result, sim_seconds]``) for the cache metadata index.
PROTOCOL_VERSION = 2

#: Default seconds to wait for one chunk result before declaring the
#: worker dead (simulated chunks are minutes at most; a silent worker past
#: this is gone).
DEFAULT_TIMEOUT = 300.0

#: Default seconds to wait for the TCP connect + handshake.
CONNECT_TIMEOUT = 10.0

#: Upper bound on one frame; anything larger is protocol garbage.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


# -- errors -------------------------------------------------------------------

class RemoteError(ReproError):
    """Base class for remote-backend failures."""


class RemoteProtocolError(RemoteError):
    """The peer sent something that is not a valid protocol frame."""


class RemoteHandshakeError(RemoteError):
    """A worker rejected the handshake (version or protocol skew)."""


class RemoteWorkerError(RemoteError):
    """No live worker remains to run (part of) the sweep."""


# -- addresses ----------------------------------------------------------------

def parse_workers(spec):
    """Normalize worker addresses into a list of ``(host, port)`` tuples.

    Accepts a comma/space-separated string of ``host:port`` entries, an
    iterable of such strings, or an iterable of ready-made tuples.

    >>> parse_workers("alpha:7070,beta:7071")
    [('alpha', 7070), ('beta', 7071)]
    >>> parse_workers([("gamma", 7072), "delta:7073"])
    [('gamma', 7072), ('delta', 7073)]
    """
    if isinstance(spec, str):
        items = spec.replace(",", " ").split()
    else:
        items = list(spec)
    addresses = []
    for item in items:
        if isinstance(item, str):
            host, _, port = item.rpartition(":")
            if not host or not port.isdigit():
                raise ValueError("bad worker address %r (want HOST:PORT)"
                                 % (item,))
            addresses.append((host, int(port)))
        else:
            host, port = item
            addresses.append((str(host), int(port)))
    return addresses


def _describe(address):
    return "%s:%d" % (address[0], address[1])


# -- framing ------------------------------------------------------------------

def send_message(sock, message):
    """Send one length-prefixed JSON frame over *sock*."""
    blob = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def _recv_exact(sock, count):
    """Read exactly *count* bytes; None on a clean EOF before the first
    byte, :class:`RemoteProtocolError` on EOF mid-read."""
    chunks = []
    remaining = count
    while remaining:
        data = sock.recv(min(remaining, 1 << 20))
        if not data:
            if remaining == count:
                return None
            raise RemoteProtocolError("connection closed mid-frame")
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks)


def recv_message(sock):
    """Receive one frame; returns the decoded object, or None on a clean
    EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise RemoteProtocolError("oversized frame (%d bytes)" % length)
    blob = _recv_exact(sock, length)
    if blob is None:
        raise RemoteProtocolError("connection closed mid-frame")
    try:
        return json.loads(blob.decode("utf-8"))
    except ValueError as exc:
        raise RemoteProtocolError("undecodable frame: %s" % exc)


def _encode_outcome(outcome):
    """Wire form of one :func:`~repro.harness.sweep._safe_worker` outcome.

    Successes ship the worker-measured simulation wall time as the third
    element so the coordinator's cache index learns recompute costs for
    points simulated on remote machines.
    """
    if outcome[0] == "ok":
        sim_cost = outcome[2] if len(outcome) > 2 else None
        return ["ok", encode_result(outcome[1]), sim_cost]
    return list(outcome)


def _decode_outcome(payload):
    """Inverse of :func:`_encode_outcome`."""
    if payload[0] == "ok":
        sim_cost = payload[2] if len(payload) > 2 else None
        return ("ok", decode_result(payload[1]), sim_cost)
    tag, error, message, worker_tb = payload
    return (tag, error, message, worker_tb)


# -- handshake ----------------------------------------------------------------

def _hello():
    return {"type": "hello", "protocol": PROTOCOL_VERSION,
            "cache_version": CACHE_VERSION, "code_version": __version__}


def _dial(address, connect_timeout=CONNECT_TIMEOUT, timeout=DEFAULT_TIMEOUT):
    """Connect to one worker and complete the handshake.

    Returns the connected socket. A worker that is unreachable, wedged,
    or hangs up mid-handshake raises OSError /
    :class:`RemoteProtocolError` — callers may skip it like any other
    dead worker, and the whole handshake is bounded by *connect_timeout*.
    Only an explicit ``reject`` reply (version or protocol skew) raises
    :class:`RemoteHandshakeError`.
    """
    sock = socket.create_connection(address, timeout=connect_timeout)
    try:
        sock.settimeout(connect_timeout)
        send_message(sock, _hello())
        reply = recv_message(sock)
    except (OSError, RemoteProtocolError):
        sock.close()
        raise
    if reply is None:
        sock.close()
        raise RemoteProtocolError("worker %s hung up during handshake"
                                  % _describe(address))
    if not isinstance(reply, dict) or reply.get("type") != "welcome":
        reason = repr(reply)
        if isinstance(reply, dict):
            reason = reply.get("reason", "unexpected %r reply"
                               % reply.get("type"))
        sock.close()
        raise RemoteHandshakeError("worker %s rejected handshake: %s"
                                   % (_describe(address), reason))
    sock.settimeout(timeout)
    return sock


def worker_ping(address, timeout=CONNECT_TIMEOUT):
    """Handshake with one worker and ping it; returns the ``pong`` payload.

    Raises OSError (unreachable) or a :class:`RemoteError` subclass
    (handshake rejection / protocol garbage).
    """
    sock = _dial(address, connect_timeout=timeout, timeout=timeout)
    try:
        send_message(sock, {"type": "ping"})
        reply = recv_message(sock)
    finally:
        sock.close()
    if not isinstance(reply, dict) or reply.get("type") != "pong":
        raise RemoteProtocolError("worker %s answered ping with %r"
                                  % (_describe(address), reply))
    return reply


def worker_stop(address, timeout=CONNECT_TIMEOUT):
    """Ask one worker daemon to shut down; returns once it acknowledges."""
    sock = _dial(address, connect_timeout=timeout, timeout=timeout)
    try:
        send_message(sock, {"type": "shutdown"})
        reply = recv_message(sock)
    finally:
        sock.close()
    if not isinstance(reply, dict) or reply.get("type") != "bye":
        raise RemoteProtocolError("worker %s answered shutdown with %r"
                                  % (_describe(address), reply))
    return reply


# -- the worker daemon --------------------------------------------------------

class _WorkerTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    worker = None

    def handle_error(self, request, client_address):
        if self.worker is None or not self.worker.quiet:
            socketserver.ThreadingTCPServer.handle_error(
                self, request, client_address)


class _WorkerHandler(socketserver.BaseRequestHandler):
    """One coordinator connection: handshake, then serve chunks until EOF."""

    def handle(self):
        worker = self.server.worker
        sock = self.request
        # A coordinator that vanishes without FIN/RST (crash, partition)
        # would otherwise pin this handler thread in recv forever; kernel
        # keepalive eventually reaps the half-open connection.
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        except OSError:
            pass
        try:
            hello = recv_message(sock)
        except RemoteProtocolError:
            return
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            send_message(sock, {"type": "reject",
                                "reason": "expected a hello frame"})
            return
        reply = worker.handshake_reply(hello)
        send_message(sock, reply)
        if reply["type"] != "welcome":
            return
        while True:
            try:
                message = recv_message(sock)
            except RemoteProtocolError:
                return
            if message is None:                  # coordinator hung up
                return
            kind = message.get("type") if isinstance(message, dict) else None
            if kind == "ping":
                send_message(sock, {"type": "pong",
                                    "points_served": worker.points_served,
                                    "jobs": worker.jobs,
                                    **worker.versions()})
            elif kind == "run_chunk":
                points = [SweepPoint.from_spec(spec)
                          for spec in message["points"]]
                try:
                    outcomes = worker.run_points(points)
                except Exception as exc:
                    # Infrastructure failure (point failures are trapped
                    # inside _safe_worker): drop the connection so the
                    # coordinator reassigns the chunk elsewhere.
                    worker.log("chunk failed, dropping coordinator: %s" % exc)
                    return
                send_message(sock, {
                    "type": "chunk_result",
                    "chunk": message.get("chunk"),
                    "outcomes": [_encode_outcome(o) for o in outcomes],
                })
            elif kind == "shutdown":
                send_message(sock, {"type": "bye"})
                worker.log("shutdown requested by %s" % (self.client_address,))
                # Handler threads are separate from the serve loop, so a
                # direct shutdown() cannot deadlock.
                self.server.shutdown()
                return
            else:
                send_message(sock, {"type": "reject",
                                    "reason": "unknown message type %r"
                                              % (kind,)})
                return


class WorkerServer:
    """A ``repro worker serve`` daemon: simulates chunks for coordinators.

    Binds ``host:port`` (port 0 picks an ephemeral port — read it back
    from :attr:`address`) and speaks the module's wire protocol. Each
    chunk's points run through a local sweep backend (serial for
    ``jobs=1``, a process pool otherwise), so one daemon can itself use a
    whole machine.

    ``cache_version``/``code_version`` default to this process's own and
    exist so tests (and forward-compatible deployments) can exercise the
    handshake's skew rejection.
    """

    def __init__(self, host="127.0.0.1", port=0, jobs=1,
                 cache_version=None, code_version=None, quiet=True):
        self.jobs = max(1, int(jobs))
        self.cache_version = (CACHE_VERSION if cache_version is None
                              else cache_version)
        self.code_version = (__version__ if code_version is None
                             else code_version)
        self.quiet = quiet
        self.points_served = 0
        self._backend = make_backend(None, jobs=self.jobs)
        self._backend_lock = threading.Lock()
        self._server = _WorkerTCPServer((host, port), _WorkerHandler)
        self._server.worker = self
        self._thread = None

    @property
    def address(self):
        """The bound ``(host, port)`` pair."""
        return self._server.server_address[:2]

    def versions(self):
        return {"protocol": PROTOCOL_VERSION,
                "cache_version": self.cache_version,
                "code_version": self.code_version}

    def handshake_reply(self, hello):
        """``welcome`` when every version in *hello* matches, else
        ``reject`` naming the first mismatch."""
        mine = self.versions()
        for key in ("protocol", "cache_version", "code_version"):
            if hello.get(key) != mine[key]:
                return {"type": "reject",
                        "reason": "%s mismatch: coordinator has %r, "
                                  "worker has %r"
                                  % (key, hello.get(key), mine[key])}
        return {"type": "welcome", **mine}

    def run_points(self, points):
        """Execute one chunk through the local backend (serialized: the
        backend's pool is not safe for concurrent ``map`` calls, and the
        lock also keeps ``points_served`` exact across coordinators)."""
        with self._backend_lock:
            outcomes = self._backend.map(points)
            self.points_served += len(points)
            return outcomes

    def log(self, message):
        if not self.quiet:
            print("repro worker: %s" % message, file=sys.stderr, flush=True)

    def serve_forever(self):
        """Serve until :meth:`close`, a ``shutdown`` frame, or Ctrl-C."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self):
        """Serve on a daemon thread (for tests/embedding); returns
        :attr:`address`."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self.address

    def close(self):
        """Stop serving and release the socket and the local backend."""
        if self._thread is not None and self._thread.is_alive():
            self._server.shutdown()
            self._thread.join(timeout=5.0)
        self._server.server_close()
        self._backend.close()


# -- the coordinator ----------------------------------------------------------

class _Chunk:
    __slots__ = ("indices", "points", "attempts", "last_error")

    def __init__(self, indices, points):
        self.indices = indices
        self.points = points
        self.attempts = 0
        self.last_error = ""


class _MapState:
    """Shared scheduling state for one :meth:`RemoteBackend.map` call.

    Worker threads :meth:`take` chunks and either :meth:`finish` them or
    report themselves dead via :meth:`worker_lost`, which requeues the
    in-flight chunk for the survivors. A chunk that has been attempted
    ``max_attempts`` times (it keeps killing workers), or that outlives
    the last live worker, resolves to per-point error outcomes instead,
    so the executor's normal failure attribution takes over.
    """

    def __init__(self, chunks, results, live_workers, max_attempts):
        self._cond = threading.Condition()
        self._queue = deque(chunks)
        self._results = results
        self._unresolved = len(chunks)
        self._live = live_workers
        self._max_attempts = max_attempts

    def take(self):
        """Next chunk to run, or None once the whole map is resolved."""
        with self._cond:
            while True:
                if self._unresolved == 0:
                    return None
                if self._queue:
                    chunk = self._queue.popleft()
                    chunk.attempts += 1
                    return chunk
                self._cond.wait()

    def finish(self, chunk, outcomes):
        with self._cond:
            for index, outcome in zip(chunk.indices, outcomes):
                self._results[index] = outcome
            self._unresolved -= 1
            _CHUNKS_TOTAL.inc(outcome="ok")
            self._cond.notify_all()

    def _fail_chunk(self, chunk, message):
        outcome = ("error", "RemoteWorkerError", message, "")
        for index in chunk.indices:
            self._results[index] = outcome
        self._unresolved -= 1
        _CHUNKS_TOTAL.inc(outcome="abandoned")

    def worker_lost(self, address, error, chunk=None):
        """Record one worker's death; requeue (or fail) its chunk."""
        with self._cond:
            self._live -= 1
            if chunk is not None:
                chunk.last_error = "worker %s died running this chunk: %s" \
                                   % (_describe(address), error)
                if chunk.attempts >= self._max_attempts:
                    self._fail_chunk(
                        chunk, chunk.last_error
                        + " (chunk abandoned after %d attempts)"
                        % chunk.attempts)
                else:
                    self._queue.append(chunk)
                    _CHUNKS_TOTAL.inc(outcome="reassigned")
            if self._live <= 0:
                while self._queue:
                    pending = self._queue.popleft()
                    self._fail_chunk(
                        pending,
                        "no live workers remain (last failure: %s)"
                        % (pending.last_error or error))
            self._cond.notify_all()

    def wait(self):
        with self._cond:
            while self._unresolved:
                self._cond.wait()


class RemoteBackend(Backend):
    """Shard sweep chunks over ``repro worker serve`` daemons via TCP.

    *workers* is anything :func:`parse_workers` accepts. Connections are
    dialed (and handshaken) lazily on the first :meth:`map` and reused
    across batches until :meth:`close`, mirroring the local pool
    backends. *timeout* bounds the wait for one chunk result; a worker
    silent past it is treated as dead and its chunk is reassigned.

    A worker that is unreachable at dial time is skipped (the rest of the
    fleet carries the sweep); a worker that *rejects the handshake* makes
    the whole map raise :class:`RemoteHandshakeError`, because version
    skew silently shrinking the fleet would be a deployment bug worth
    failing loudly over. Once dead, a worker stays dead for the lifetime
    of the backend instance.
    """

    name = "remote"

    def __init__(self, workers, chunk_size=None,
                 timeout=DEFAULT_TIMEOUT, connect_timeout=CONNECT_TIMEOUT):
        addresses = parse_workers(workers)
        if not addresses:
            raise ValueError("remote backend needs at least one worker "
                             "address (host:port)")
        super().__init__(jobs=len(addresses), chunk_size=chunk_size)
        self.addresses = addresses
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._connections = {}          # address -> connected socket
        self._dead = {}                 # address -> reason it was dropped

    # -- connection management ------------------------------------------------

    def _ensure_connections(self):
        """Dial every address not yet connected or known-dead — all in
        parallel, so a fleet with several down machines still starts
        within one connect_timeout. Raises when the whole fleet is
        unreachable (handshake *rejection* always raises — see the class
        docstring)."""
        to_dial = [address for address in self.addresses
                   if address not in self._connections
                   and address not in self._dead]
        if to_dial:
            outcomes = {}

            def dial(address):
                try:
                    outcomes[address] = _dial(
                        address, connect_timeout=self.connect_timeout,
                        timeout=self.timeout)
                except (RemoteHandshakeError, RemoteProtocolError,
                        OSError) as exc:
                    outcomes[address] = exc

            threads = [threading.Thread(target=dial, args=(address,),
                                        daemon=True)
                       for address in to_dial]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            rejection = None
            for address in to_dial:
                outcome = outcomes[address]
                if isinstance(outcome, RemoteHandshakeError):
                    rejection = outcome
                elif isinstance(outcome, Exception):
                    self._dead[address] = str(outcome)
                    _WORKERS_LOST.inc()
                else:
                    self._connections[address] = outcome
                    _WORKERS_ALIVE.inc()
            if rejection is not None:
                raise rejection
        if not self._connections:
            reasons = "; ".join("%s: %s" % (_describe(a), r)
                                for a, r in sorted(self._dead.items()))
            raise RemoteWorkerError("no live workers among %s (%s)"
                                    % (", ".join(map(_describe,
                                                     self.addresses)),
                                       reasons))

    def _drop_connection(self, address, reason):
        sock = self._connections.pop(address, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
            _WORKERS_ALIVE.dec()
            _WORKERS_LOST.inc()
        self._dead[address] = reason

    # -- scheduling -----------------------------------------------------------

    def _chunk(self, n_items):
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        return _auto_chunk(n_items, max(1, len(self._connections)))

    def map(self, points):
        """Run *points* across the fleet; one outcome tuple per point, in
        input order (the :class:`~repro.harness.sweep.Backend` contract)."""
        points = list(points)
        if not points:
            return []
        self._ensure_connections()
        live = list(self._connections)
        chunk_size = self._chunk(len(points))
        chunks = [_Chunk(list(range(start, min(start + chunk_size,
                                               len(points)))),
                         points[start:start + chunk_size])
                  for start in range(0, len(points), chunk_size)]
        results = [None] * len(points)
        state = _MapState(chunks, results, live_workers=len(live),
                          max_attempts=len(self.addresses))
        threads = [threading.Thread(target=self._serve_one,
                                    args=(address, state), daemon=True)
                   for address in live]
        for thread in threads:
            thread.start()
        state.wait()
        for thread in threads:
            thread.join(timeout=5.0)
        return results

    def _serve_one(self, address, state):
        """One worker's dispatch loop: pull chunks until the map resolves
        or this worker dies."""
        sock = self._connections[address]
        while True:
            chunk = state.take()
            if chunk is None:
                return
            try:
                send_message(sock, {
                    "type": "run_chunk",
                    "chunk": chunk.indices[0],
                    "points": [point.spec() for point in chunk.points],
                })
                reply = recv_message(sock)
                if not isinstance(reply, dict) \
                        or reply.get("type") != "chunk_result":
                    raise RemoteProtocolError(
                        "expected a chunk_result, got %r"
                        % (reply if reply is None
                           else reply.get("type"),))
                outcomes = [_decode_outcome(payload)
                            for payload in reply["outcomes"]]
                if len(outcomes) != len(chunk.points):
                    raise RemoteProtocolError(
                        "chunk of %d points answered with %d outcomes"
                        % (len(chunk.points), len(outcomes)))
            except Exception as exc:
                # Socket death, timeout, protocol garbage, or a malformed
                # payload: anything here means this worker cannot be
                # trusted with further chunks. Attribute and reassign
                # rather than hang the whole map.
                self._drop_connection(address, str(exc))
                state.worker_lost(address, exc, chunk)
                return
            state.finish(chunk, outcomes)

    def close(self):
        """Close every worker connection (the daemons keep running)."""
        for address in list(self._connections):
            sock = self._connections.pop(address)
            try:
                sock.close()
            except OSError:
                pass
            _WORKERS_ALIVE.dec()


BACKENDS["remote"] = RemoteBackend
