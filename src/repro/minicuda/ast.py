"""AST node definitions for the miniCUDA dialect.

Every node is a plain dataclass. Statements may additionally carry a
dynamically-assigned ``region`` attribute (set by the transformation passes)
naming the execution-time component the statement belongs to — ``"agg"`` for
aggregation logic and ``"disagg"`` for disaggregation logic. The engine uses
it to produce the Fig. 10 breakdown. Use :func:`region_of` to read it.
"""

import copy
from dataclasses import dataclass, field, fields
from typing import Optional


class Node:
    """Base class for all AST nodes."""

    def clone(self):
        """Deep-copy this node (dynamic attributes such as region included)."""
        return copy.deepcopy(self)

    def children(self):
        """Yield every direct child Node (lists are flattened)."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def region_of(node):
    """Return the breakdown region tag of *node* (or None)."""
    return getattr(node, "region", None)


def set_region(node, region, recursive=True):
    """Tag *node* (and by default its subtree) with a breakdown region."""
    targets = node.walk() if recursive else (node,)
    for n in targets:
        if isinstance(n, Stmt) or isinstance(n, Expr):
            n.region = region
    return node


# -- types ----------------------------------------------------------------

@dataclass
class Type(Node):
    """A scalar, ``dim3``, or pointer type.

    ``name`` is the base spelling ("int", "unsigned int", "float", "void",
    "bool", "dim3", ...) and ``pointers`` the number of ``*`` levels.
    """

    name: str
    pointers: int = 0
    const: bool = False

    @property
    def is_pointer(self):
        return self.pointers > 0

    @property
    def is_float(self):
        return self.pointers == 0 and self.name in ("float", "double")

    def pointee(self):
        if not self.is_pointer:
            raise ValueError("pointee() on non-pointer type %r" % self.name)
        return Type(self.name, self.pointers - 1, self.const)

    def pointer_to(self):
        return Type(self.name, self.pointers + 1, self.const)

    def __str__(self):
        text = ("const " if self.const else "") + self.name
        return text + " " + "*" * self.pointers if self.pointers else text


VOID = Type("void")
INT = Type("int")
UINT = Type("unsigned int")
FLOAT_T = Type("float")
BOOL = Type("bool")
DIM3 = Type("dim3")


# -- expressions -----------------------------------------------------------

class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int
    text: Optional[str] = None


@dataclass
class FloatLit(Expr):
    value: float
    text: Optional[str] = None


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Member(Expr):
    """``obj.field`` (``arrow`` is accepted by the parser but unused)."""

    obj: Expr
    attr: str
    arrow: bool = False


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: list = field(default_factory=list)


@dataclass
class Unary(Expr):
    """Prefix ops: ``- ! ~ + & * ++ --``; postfix ``++ --`` set postfix."""

    op: str
    operand: Expr
    postfix: bool = False


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    """``target op value`` where op is ``=`` or a compound assignment."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    orelse: Expr


@dataclass
class Cast(Expr):
    type: Type
    operand: Expr


@dataclass
class Launch(Expr):
    """A dynamic (or host) kernel launch ``kernel<<<grid, block>>>(args)``."""

    kernel: str
    grid: Expr
    block: Expr
    args: list = field(default_factory=list)
    shmem: Optional[Expr] = None
    stream: Optional[Expr] = None


# -- statements -------------------------------------------------------------

class Stmt(Node):
    """Base class for statements."""


@dataclass
class VarDecl(Node):
    """A single declarator. DeclStmt groups the declarators of one line.

    ``array_size`` is set for array declarators such as
    ``__shared__ int s[256];`` — parsed for legality analysis; the engine
    only executes scalar and pointer locals.
    """

    type: Type
    name: str
    init: Optional[Expr] = None
    qualifiers: tuple = ()
    array_size: Optional[Expr] = None

    @property
    def is_shared(self):
        return "__shared__" in self.qualifiers


@dataclass
class DeclStmt(Stmt):
    decls: list = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Compound(Stmt):
    stmts: list = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    orelse: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- declarations ------------------------------------------------------------

@dataclass
class Param(Node):
    type: Type
    name: str


@dataclass
class FunctionDef(Node):
    """A kernel (``__global__``), device function, or host function."""

    qualifiers: tuple
    ret_type: Type
    name: str
    params: list = field(default_factory=list)
    body: Optional[Compound] = None

    @property
    def is_kernel(self):
        return "__global__" in self.qualifiers

    @property
    def is_device(self):
        return "__device__" in self.qualifiers

    def param_names(self):
        return [p.name for p in self.params]


@dataclass
class Program(Node):
    """A translation unit: functions and file-scope declarations in order."""

    decls: list = field(default_factory=list)

    def functions(self):
        return [d for d in self.decls if isinstance(d, FunctionDef)]

    def kernels(self):
        return [f for f in self.functions() if f.is_kernel]

    def function(self, name):
        for f in self.functions():
            if f.name == name:
                return f
        raise KeyError("no function named %r" % name)

    def index_of(self, name):
        for i, d in enumerate(self.decls):
            if isinstance(d, FunctionDef) and d.name == name:
                return i
        raise KeyError("no function named %r" % name)
