"""Exceptions shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LexError(ReproError):
    """Raised when the tokenizer meets a character it cannot classify."""

    def __init__(self, message, line=None, col=None):
        self.line = line
        self.col = col
        if line is not None:
            message = "line %d:%d: %s" % (line, col, message)
        super().__init__(message)


class ParseError(ReproError):
    """Raised when the parser meets an unexpected token."""

    def __init__(self, message, token=None):
        self.token = token
        if token is not None and token.line is not None:
            message = "line %d:%d: %s (near %r)" % (
                token.line, token.col, message, token.value)
        super().__init__(message)


class AnalysisError(ReproError):
    """Raised when a static analysis cannot produce a result it must."""


class TransformError(ReproError):
    """Raised when a transformation is applied to code it cannot handle."""


class NotTransformable(TransformError):
    """Raised when a kernel is legal CUDA but outside a pass's legality rules.

    Section III-C of the paper: kernels that synchronize via barriers or use
    shared memory are skipped by thresholding. Callers may catch this and
    leave the launch site untouched.
    """


class CodegenError(ReproError):
    """Raised when the engine cannot translate an AST construct to Python."""


class SimulationError(ReproError):
    """Raised on inconsistencies inside the timing simulation."""


class ServeError(ReproError):
    """Raised on a malformed request to the HTTP query service.

    ``repro serve`` (``repro.harness.serve``) maps it to a 400 response
    with a structured JSON body — bad query parameters, unknown variant
    labels, undecodable POST bodies. Server-side failures (a point that
    dies in the simulator) are not ServeErrors; they surface as 500s
    under the sweep engine's ``on_error`` contract. See
    ``docs/serving.md``.
    """


class PriorityError(ReproError, ValueError):
    """A malformed wire-level priority class (unknown name, negative or
    empty value).

    Raised by :func:`repro.harness.task.parse_priority`; ``repro serve``
    maps it to a 400 response. Subclasses ``ValueError`` too so callers
    that treated the old bare ``ValueError`` keep working.
    """


class AuthError(ReproError):
    """A request to an auth-enabled query service carried a missing or
    unknown API key.

    ``repro serve --api-keys-file`` maps it to a 401 response;
    ``/healthz`` and ``/metrics`` stay open so probes and scrapers never
    need credentials. See ``docs/serving.md``.
    """


class QuotaExceededError(ReproError):
    """A client exhausted its per-client quota on the serving miss path.

    Carries *reason* (``"rate"`` — the token bucket is empty — or
    ``"inflight"`` — too many concurrent in-flight misses) and
    *retry_after*, the seconds until the bucket refills enough to admit
    the request. ``repro serve`` maps it to a 429 response with a
    ``Retry-After`` header and ``"retry": true`` — deliberately not a
    :class:`QueueError`/503: the service had room, this *client* is over
    its allocation. Warm cache hits are never metered. See
    ``docs/serving.md``.
    """

    def __init__(self, message, reason="rate", retry_after=1.0):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class QueueError(ReproError):
    """Base class for request-scheduler rejections.

    ``repro serve`` maps these to 503 responses: the request was
    well-formed but the service cannot take it right now (back off and
    retry). See ``docs/serving.md``.
    """


class QueueFullError(QueueError):
    """The miss queue is at capacity (backpressure): retry later."""


class QueueClosedError(QueueError):
    """The scheduler is draining/stopped and accepts no new work."""


class DeadlineExceededError(ReproError):
    """A task's deadline passed before (or while) it waited to run.

    The miss scheduler sheds such tasks instead of simulating them and
    resolves their waiters with a structured
    ``PointFailure(error="DeadlineExceededError")``. ``repro serve``
    maps that to a 504 response with ``"retry": true`` — deliberately
    *not* a :class:`QueueError`/503, because the queue itself had room;
    the caller's time budget is what ran out. See ``docs/serving.md``.
    """


class RuntimeLaunchError(ReproError):
    """Raised by the host runtime on invalid launches or allocations."""
