"""Dataset generator tests: CSR invariants and distribution shapes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (bezier_lines, from_edges, kron_graph, random_ksat,
                            road_graph, uniform_random_graph, web_graph)


def check_csr(graph):
    assert graph.row[0] == 0
    assert graph.row[-1] == graph.num_edges
    assert np.all(np.diff(graph.row) >= 0)
    if graph.num_edges:
        assert graph.col.min() >= 0
        assert graph.col.max() < graph.num_vertices
    assert len(graph.weights) == graph.num_edges


class TestCSRConstruction:
    def test_from_edges_dedup_and_symmetry(self):
        g = from_edges(4, [0, 0, 1], [1, 1, 2])
        check_csr(g)
        # duplicate (0,1) removed; symmetric edges present
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(1) == 2

    def test_self_loops_removed(self):
        g = from_edges(3, [0, 1], [0, 2])
        assert g.num_edges == 2  # only 1-2 and 2-1 remain

    def test_columns_sorted_within_rows(self):
        g = kron_graph(scale=6, edge_factor=4)
        for u in range(g.num_vertices):
            row = g.col[g.row[u]:g.row[u + 1]]
            assert np.all(np.diff(row) > 0)

    @given(st.integers(2, 40), st.integers(0, 120), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_from_edges_invariants_random(self, n, m, seed):
        rng = np.random.default_rng(seed)
        g = from_edges(n, rng.integers(0, n, m), rng.integers(0, n, m))
        check_csr(g)
        # symmetry: (u,v) present implies (v,u) present
        pairs = set()
        for u in range(n):
            for v in g.col[g.row[u]:g.row[u + 1]]:
                pairs.add((u, int(v)))
        assert all((v, u) in pairs for (u, v) in pairs)


class TestGenerators:
    def test_kron_is_heavy_tailed(self):
        g = kron_graph(scale=10, edge_factor=8)
        check_csr(g)
        degrees = g.degrees()
        assert degrees.max() > 10 * max(1, np.median(degrees))

    def test_web_graph_power_law_ish(self):
        g = web_graph(n=1500)
        check_csr(g)
        degrees = np.sort(g.degrees())[::-1]
        assert degrees[0] > 5 * max(1, degrees[len(degrees) // 2])

    def test_road_graph_small_degrees(self):
        g = road_graph(width=30, height=30)
        check_csr(g)
        degrees = g.degrees()
        assert degrees.max() <= 8
        assert 2.0 <= degrees.mean() <= 5.0

    def test_uniform_graph(self):
        check_csr(uniform_random_graph(n=300, avg_degree=6))

    def test_deterministic_by_seed(self):
        a = kron_graph(scale=7, seed=5)
        b = kron_graph(scale=7, seed=5)
        assert np.array_equal(a.row, b.row)
        assert np.array_equal(a.col, b.col)
        c = kron_graph(scale=7, seed=6)
        assert not (np.array_equal(a.row, c.row)
                    and np.array_equal(a.col, c.col))


class TestSAT:
    def test_shape(self):
        inst = random_ksat(num_vars=100, num_clauses=420, k=3)
        assert inst.num_clauses == 420
        assert inst.num_literals == 1260
        assert len(inst.var_row) == 101

    def test_clause_vars_distinct(self):
        inst = random_ksat(num_vars=50, num_clauses=100, k=4, seed=2)
        lits = inst.clause_lits.reshape(-1, 4)
        for clause in lits:
            assert len(set(clause.tolist())) == 4

    def test_occurrence_lists_invert_clauses(self):
        inst = random_ksat(num_vars=30, num_clauses=60, k=3, seed=1)
        for var in range(inst.num_vars):
            occ = inst.var_occ[inst.var_row[var]:inst.var_row[var + 1]]
            slots = inst.var_occ_slot[
                inst.var_row[var]:inst.var_row[var + 1]]
            for clause, slot in zip(occ, slots):
                assert inst.clause_lits[clause * inst.k + slot] == var

    def test_total_occurrences(self):
        inst = random_ksat(num_vars=40, num_clauses=80, k=5)
        assert inst.var_row[-1] == inst.num_literals


class TestBezier:
    def test_shapes(self):
        data = bezier_lines(num_lines=50, max_tess=32)
        assert data.num_lines == 50
        assert len(data.control_x) == 150

    def test_tess_counts_bounded(self):
        data = bezier_lines(num_lines=200, max_tess=32, curvature_scale=16)
        counts = data.tess_counts()
        assert counts.min() >= 2
        assert counts.max() <= 32

    def test_higher_cap_means_more_variation(self):
        small = bezier_lines(num_lines=300, max_tess=32,
                             curvature_scale=16, seed=4)
        large = bezier_lines(num_lines=300, max_tess=256,
                             curvature_scale=64, seed=4)
        assert large.tess_counts().max() > small.tess_counts().max()

    def test_curvature_matches_controls(self):
        data = bezier_lines(num_lines=10, seed=0)
        px = data.control_x.reshape(-1, 3)
        py = data.control_y.reshape(-1, 3)
        dx = px[0, 1] - 0.5 * (px[0, 0] + px[0, 2])
        dy = py[0, 1] - 0.5 * (py[0, 0] + py[0, 2])
        assert np.isclose(data.curvatures()[0], np.hypot(dx, dy))
