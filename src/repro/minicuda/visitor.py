"""Visitor and transformer infrastructure over the miniCUDA AST.

Two styles are provided:

* :class:`Visitor` — read-only traversal with ``visit_<ClassName>`` dispatch.
* :class:`Transformer` — rebuilding traversal; ``visit_<ClassName>`` methods
  return a replacement node (or the same node). Statement visitors may return
  a list of statements to splice into the enclosing block, or ``None`` to
  delete the statement.
"""

from dataclasses import fields

from .ast import Node, Stmt


class Visitor:
    """Read-only traversal with per-class dispatch.

    Subclasses define ``visit_Binary``, ``visit_Launch``, ... methods. The
    default behaviour (and the behaviour of :meth:`generic_visit`) is to
    recurse into all children.
    """

    def visit(self, node):
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node):
        for child in node.children():
            self.visit(child)


class Transformer:
    """Rebuilding traversal.

    ``visit_<ClassName>`` methods receive a node whose children have already
    been transformed (post-order) and return the replacement. For statements
    the replacement may also be a list (spliced) or ``None`` (dropped).
    """

    def visit(self, node):
        self._transform_children(node)
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return node

    def _transform_children(self, node):
        for f in fields(node):
            value = getattr(node, f.name)
            if isinstance(value, Node):
                replacement = self.visit(value)
                if replacement is None and isinstance(value, Stmt):
                    from .ast import Compound
                    replacement = Compound([])
                setattr(node, f.name, replacement)
            elif isinstance(value, list):
                new_items = []
                for item in value:
                    if not isinstance(item, Node):
                        new_items.append(item)
                        continue
                    replacement = self.visit(item)
                    if replacement is None:
                        continue
                    if isinstance(replacement, list):
                        new_items.extend(replacement)
                    else:
                        new_items.append(replacement)
                setattr(node, f.name, new_items)


def find_all(node, node_type):
    """Return all descendants of *node* (inclusive) of the given type."""
    return [n for n in node.walk() if isinstance(n, node_type)]


def any_match(node, predicate):
    """True if *predicate* holds for any descendant of *node* (inclusive)."""
    return any(predicate(n) for n in node.walk())
