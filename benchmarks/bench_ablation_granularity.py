"""Ablation — multi-block group size sweep (DESIGN.md: the paper's claim is
that multi-block granularity fills the gap between block and grid
granularity; this bench maps that trade-off space explicitly)."""

from repro.harness import SweepExecutor, SweepPoint, TuningParams

from conftest import save

GROUPS = (1, 2, 4, 8, 16, 32)


def _sweep(scale, executor):
    executor = executor or SweepExecutor()
    cdp, = executor.run([SweepPoint("BFS", "KRON", "CDP", scale=scale)])
    points = [SweepPoint("BFS", "KRON", "CDP+T+A",
                         TuningParams(threshold=32, granularity="multiblock",
                                      group_blocks=group), scale=scale)
              for group in GROUPS]
    points.append(SweepPoint("BFS", "KRON", "CDP+T+A",
                             TuningParams(threshold=32, granularity="grid"),
                             scale=scale))
    results = executor.run(points)
    return [(label, result.total_time, cdp.total_time / result.total_time)
            for label, result in zip(list(GROUPS) + ["grid"], results)]


def test_group_size_tradeoff(benchmark, repro_scale, out_dir,
                             sweep_executor):
    rows = benchmark.pedantic(_sweep, args=(repro_scale, sweep_executor),
                              rounds=1, iterations=1)
    lines = ["Ablation: multi-block group size (BFS/KRON, T=32)",
             "%-8s %12s %9s" % ("group", "sim. cycles", "speedup")]
    for group, time, speedup in rows:
        lines.append("%-8s %12d %8.2fx" % (group, time, speedup))
    text = "\n".join(lines)
    save(out_dir, "ablation_granularity.txt", text)
    print()
    print(text)

    # group=1 must reproduce block granularity; all points must be valid.
    assert all(speedup > 0 for _, _, speedup in rows)
