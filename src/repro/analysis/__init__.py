"""Static analyses supporting the transformation passes."""

from .ceiling_div import ThreadCountResult, expr_equal, find_thread_count
from .kernel_props import (KernelProperties, analyze_kernel, analyze_program)
from .launch_sites import (LaunchSite, child_kernels, find_launch_sites,
                           is_recursive, parent_child_pairs, resolve_child)
from .symbols import (INTRINSIC_FUNCTIONS, RESERVED_IDENTS, NameAllocator,
                      SymbolTable, declared_names, used_names)

__all__ = [
    "ThreadCountResult", "expr_equal", "find_thread_count",
    "KernelProperties", "analyze_kernel", "analyze_program",
    "LaunchSite", "child_kernels", "find_launch_sites", "is_recursive",
    "parent_child_pairs", "resolve_child",
    "INTRINSIC_FUNCTIONS", "RESERVED_IDENTS", "NameAllocator", "SymbolTable",
    "declared_names", "used_names",
]
