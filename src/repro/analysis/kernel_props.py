"""Kernel legality and shape analysis.

Section III-C of the paper: a child kernel is *not* transformable by
thresholding when it (1) synchronizes across threads via ``__syncthreads()``
or warp-level primitives, or (2) uses ``__shared__`` memory. This module
computes those properties plus the dimensionality information the
transformations need (which of ``.x/.y/.z`` a kernel actually uses).
"""

from dataclasses import dataclass, field

from ..minicuda import ast
from ..minicuda.visitor import find_all

#: Calls that constitute a barrier across threads of a block.
BARRIER_FUNCTIONS = frozenset({"__syncthreads", "__threadfence_block"})

#: Warp-level primitives (any use blocks serialization, Sec. III-C).
WARP_PRIMITIVES = frozenset({
    "__syncwarp", "__shfl_sync", "__shfl_up_sync", "__shfl_down_sync",
    "__shfl_xor_sync", "__ballot_sync", "__any_sync", "__all_sync",
    "__activemask", "__match_any_sync",
})


@dataclass
class KernelProperties:
    """Static facts about one kernel needed by the transformation passes."""

    name: str
    uses_barrier: bool = False
    uses_warp_primitives: bool = False
    uses_shared_memory: bool = False
    launches: list = field(default_factory=list)
    dims_used: frozenset = frozenset()

    @property
    def thresholdable(self):
        """Sec. III-C: serializable in the parent thread?"""
        return not (self.uses_barrier or self.uses_warp_primitives
                    or self.uses_shared_memory)

    @property
    def is_multidimensional(self):
        return bool(self.dims_used - {"x"})


def _called_names(func):
    names = set()
    for call in find_all(func, ast.Call):
        if isinstance(call.func, ast.Ident):
            names.add(call.func.name)
    return names


def dims_used(func):
    """Which dimensions of the reserved index variables the kernel reads."""
    dims = set()
    for member in find_all(func, ast.Member):
        if (isinstance(member.obj, ast.Ident)
                and member.obj.name in ("threadIdx", "blockIdx",
                                        "blockDim", "gridDim")
                and member.attr in ("x", "y", "z")):
            dims.add(member.attr)
    return frozenset(dims)


_dims_used = dims_used


def analyze_kernel(program, kernel, _seen=None):
    """Compute :class:`KernelProperties` for *kernel*.

    Properties are transitive through ``__device__`` helper calls: a kernel
    that calls a device function which calls ``__syncthreads()`` is itself a
    barrier user.
    """
    if isinstance(kernel, str):
        kernel = program.function(kernel)
    seen = _seen if _seen is not None else set()
    seen.add(kernel.name)

    called = _called_names(kernel)
    props = KernelProperties(
        name=kernel.name,
        uses_barrier=bool(called & BARRIER_FUNCTIONS),
        uses_warp_primitives=bool(called & WARP_PRIMITIVES),
        uses_shared_memory=_uses_shared(kernel),
        launches=find_all(kernel, ast.Launch),
        dims_used=_dims_used(kernel),
    )

    function_names = {f.name for f in program.functions()}
    for name in called & function_names:
        if name in seen:
            continue
        callee_props = analyze_kernel(program, name, seen)
        props.uses_barrier |= callee_props.uses_barrier
        props.uses_warp_primitives |= callee_props.uses_warp_primitives
        props.uses_shared_memory |= callee_props.uses_shared_memory
        props.dims_used |= callee_props.dims_used
    return props


def _uses_shared(func):
    for decl_stmt in find_all(func, ast.DeclStmt):
        for decl in decl_stmt.decls:
            if decl.is_shared:
                return True
    return False


def analyze_program(program):
    """Map kernel name → :class:`KernelProperties` for every kernel."""
    return {k.name: analyze_kernel(program, k) for k in program.kernels()}
