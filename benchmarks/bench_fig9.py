"""Figure 9 — speedup of every optimization combination over CDP, for all
benchmark/dataset pairs, with per-variant tuning (Sec. VIII-A)."""

from repro.harness import figure9

from conftest import save


def test_figure9(benchmark, repro_scale, out_dir, sweep_executor):
    fig = benchmark.pedantic(
        figure9,
        kwargs={"scale": repro_scale, "executor": sweep_executor},
        rounds=1, iterations=1)
    text = fig.format()
    save(out_dir, "figure9.txt", text)
    print()
    print(text)

    gm = fig.geomeans()
    # The paper's headline relationships (shapes, not magnitudes):
    assert gm["CDP+T+C+A"] > 1.0                      # beats CDP
    assert gm["CDP+T+C+A"] > gm["No CDP"]             # beats No CDP
    assert gm["CDP+T+C+A"] > gm["KLAP (CDP+A)"]       # beats prior work
    assert gm["KLAP (CDP+A)"] > 1.0                   # aggregation recovers
    assert gm["CDP+T"] > 1.0                          # thresholding alone
    assert 0.8 < gm["CDP+C"] < 1.6                    # coarsening ~neutral
    assert gm["CDP+T+A"] >= gm["KLAP (CDP+A)"]        # T helps over A
    assert gm["CDP+T+C+A"] >= gm["CDP+T+A"] * 0.98    # C synergy with A
