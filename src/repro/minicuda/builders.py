"""Convenience constructors for building AST fragments inside transforms.

These helpers keep the transformation passes readable: the passes assemble
non-trivial code (Fig. 3, 6, 7 of the paper) and doing so with raw dataclass
constructors would bury the logic in noise.
"""

from . import ast


def ident(name):
    return ast.Ident(name)


def lit(value):
    if isinstance(value, bool):
        return ast.BoolLit(value)
    if isinstance(value, int):
        return ast.IntLit(value)
    if isinstance(value, float):
        return ast.FloatLit(value)
    raise TypeError("cannot make literal from %r" % (value,))


def _as_expr(value):
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, str):
        return ast.Ident(value)
    return lit(value)


def binop(op, lhs, rhs):
    return ast.Binary(op, _as_expr(lhs), _as_expr(rhs))


def add(lhs, rhs):
    return binop("+", lhs, rhs)


def sub(lhs, rhs):
    return binop("-", lhs, rhs)


def mul(lhs, rhs):
    return binop("*", lhs, rhs)


def div(lhs, rhs):
    return binop("/", lhs, rhs)


def lt(lhs, rhs):
    return binop("<", lhs, rhs)


def ge(lhs, rhs):
    return binop(">=", lhs, rhs)


def eq(lhs, rhs):
    return binop("==", lhs, rhs)


def ceil_div(n, d):
    """``(n + d - 1) / d`` — the canonical integer ceiling division."""
    return div(sub(add(_as_expr(n), _as_expr(d)), lit(1)), _as_expr(d))


def assign(target, value, op="="):
    return ast.Assign(op, _as_expr(target), _as_expr(value))


def member(obj, attr):
    return ast.Member(_as_expr(obj), attr)


def index(base, idx):
    return ast.Index(_as_expr(base), _as_expr(idx))


def call(func, *args):
    return ast.Call(_as_expr(func), [_as_expr(a) for a in args])


def address_of(expr):
    return ast.Unary("&", _as_expr(expr))


def expr_stmt(expr):
    return ast.ExprStmt(_as_expr(expr))


def decl(type_, name, init=None, qualifiers=()):
    init_expr = None if init is None else _as_expr(init)
    return ast.DeclStmt([ast.VarDecl(type_, name, init_expr, tuple(qualifiers))])


def decl_int(name, init=None):
    return decl(ast.INT.clone(), name, init)


def decl_dim3(name, init=None):
    return decl(ast.DIM3.clone(), name, init)


def block(*stmts):
    flat = []
    for stmt in stmts:
        if stmt is None:
            continue
        if isinstance(stmt, (list, tuple)):
            flat.extend(s for s in stmt if s is not None)
        else:
            flat.append(stmt)
    return ast.Compound(flat)


def if_stmt(cond, then, orelse=None):
    then_block = then if isinstance(then, ast.Stmt) else block(*then)
    else_block = None
    if orelse is not None:
        else_block = orelse if isinstance(orelse, ast.Stmt) else block(*orelse)
    return ast.If(_as_expr(cond), then_block, else_block)


def for_range(var, start, bound, body, step=1):
    """``for (var = start; var < bound; var += step) body`` over an
    already-declared int variable *var*."""
    body_block = body if isinstance(body, ast.Stmt) else block(*body)
    return ast.For(
        ast.ExprStmt(assign(var, start)),
        lt(ident(var), _as_expr(bound)),
        assign(var, step, op="+="),
        body_block)


def for_decl_range(var, start, bound, body, step=1):
    """``for (int var = start; var < bound; var += step) body``."""
    body_block = body if isinstance(body, ast.Stmt) else block(*body)
    return ast.For(
        decl_int(var, start),
        lt(ident(var), _as_expr(bound)),
        assign(var, step, op="+="),
        body_block)
