"""Fault injection against a live ``repro serve`` (chaos satellite).

The serving tier's failure contract, exercised end to end over HTTP:
an executor that crashes mid-``/point`` resolves the waiter with a
structured ``PointFailure`` 500 (never a hang, never a torn response),
a remote worker killed mid-``/sweep`` surfaces per-point
``RemoteWorkerError`` entries under the ``on_error="continue"``
contract, the quota layer's in-flight leases are released on every
failure path (the cap returns to zero, the tenant is not locked out by
its own failed requests), and the server still drains cleanly
afterwards — ``submitted == completed``, nothing queued, nothing
in flight.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.harness import WorkerServer
from repro.harness.quota import ClientQuota, QuotaManager
from repro.harness.serve import ServeServer

SCALE = "0.08"


def fetch(server, path, headers=None, data=None):
    url = "http://%s:%d%s" % (*server.address, path)
    payload = json.dumps(data).encode() if data is not None else None
    try:
        with urllib.request.urlopen(
                urllib.request.Request(url, data=payload,
                                       headers=headers or {}),
                timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def cold_point(threshold):
    return ("/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
            "&threshold=%d&scale=%s" % (threshold, SCALE))


def crash(*args, **kwargs):
    raise RuntimeError("injected crash")


def make_quota():
    """Tight in-flight cap, loose rate: a leaked lease would lock the
    tenant out after two requests, which is exactly what the leak
    assertions watch for."""
    return QuotaManager(default=ClientQuota(rate=1000, burst=1000,
                                            max_inflight=2),
                        known=("alice",))


@pytest.fixture
def server(tmp_path):
    srv = ServeServer(cache_dir=str(tmp_path / "cache"),
                      quota=make_quota())
    srv.start()
    yield srv
    srv.close()


class TestExecutorCrashMidPoint:
    def crash_executors(self, server):
        for executor in server.service.miss_executors:
            executor.run_one = crash

    def test_structured_500_not_a_hang(self, server):
        self.crash_executors(server)
        status, payload = fetch(server, cold_point(16),
                                {"X-Repro-Client": "alice"})
        assert status == 500
        assert payload["status"] == "error"
        assert payload["error"] == "RuntimeError"
        assert "injected crash" in payload["message"]
        assert payload["point"]["benchmark"] == "BFS"

    def test_no_quota_lease_leak_on_crash(self, server):
        self.crash_executors(server)
        alice = {"X-Repro-Client": "alice"}
        # Past the max_inflight=2 cap if any crash leaked its lease.
        for threshold in (16, 24, 32, 40):
            status, payload = fetch(server, cold_point(threshold), alice)
            assert status == 500, payload
        _, info = fetch(server, "/cache/info")
        assert info["quota"]["clients"]["alice"]["inflight"] == 0

    def test_concurrent_waiters_all_resolve(self, server):
        self.crash_executors(server)
        statuses = []

        def one(threshold):
            status, _ = fetch(server, cold_point(threshold))
            statuses.append(status)

        threads = [threading.Thread(target=one, args=(t,))
                   for t in (16, 24, 32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert statuses == [500, 500, 500]

    def test_drains_clean_after_crashes(self, server):
        self.crash_executors(server)
        fetch(server, cold_point(16), {"X-Repro-Client": "alice"})
        _, info = fetch(server, "/cache/info")
        queue = info["queue"]
        assert queue["depth"] == 0 and queue["inflight"] == 0
        assert queue["submitted"] == queue["completed"]
        server.close()                   # graceful drain must not hang
        assert server.service.scheduler.stats_dict()["draining"]


class TestRemoteWorkerKilledMidSweep:
    @pytest.fixture
    def worker(self):
        worker = WorkerServer(quiet=True)
        worker.start()
        yield worker
        worker.close()

    @pytest.fixture
    def remote_server(self, tmp_path, worker):
        srv = ServeServer(cache_dir=str(tmp_path / "cache"),
                          backend="remote", workers=[worker.address],
                          worker_timeout=5.0, quota=make_quota())
        srv.start()
        yield srv
        srv.close()

    def test_sweep_surfaces_remote_worker_failures(self, remote_server,
                                                   worker):
        body = {"pairs": ["BFS:KRON", "SSSP:KRON"], "variants": ["CDP+T"],
                "params": {"threshold": 16}, "scale": float(SCALE)}
        worker.run_points = crash        # the fleet dies mid-request
        status, payload = fetch(remote_server, "/sweep",
                                {"X-Repro-Client": "alice"}, body)
        assert status == 200             # on_error=continue: per-point
        assert payload["stats"]["failed"] == 2
        for entry in payload["results"]:
            assert entry["status"] == "error"
            assert entry["error"] == "RemoteWorkerError"
            assert entry["point"]["dataset"] == "KRON"

    def test_no_lease_leak_and_clean_drain(self, remote_server, worker):
        worker.run_points = crash
        body = {"pairs": ["BFS:KRON"], "variants": ["CDP", "CDP+T"],
                "params": {"threshold": 24}, "scale": float(SCALE)}
        alice = {"X-Repro-Client": "alice"}
        for _ in range(3):               # 2 misses each: cap would bite
            status, payload = fetch(remote_server, "/sweep", alice, body)
            assert status == 200, payload
        _, info = fetch(remote_server, "/cache/info")
        assert info["quota"]["clients"]["alice"]["inflight"] == 0
        queue = info["queue"]
        assert queue["submitted"] == queue["completed"]
        assert queue["depth"] == 0 and queue["inflight"] == 0
