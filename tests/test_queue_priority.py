"""Priority classes and deadlines on the request scheduler
(repro.harness.queue + repro.harness.task).

Covers the heap ordering contract — priority classes with strict FIFO
inside each class — plus dedup joins adopting the tightest
deadline/highest priority, and deadline shedding on both paths
(expired-on-submit and expired-in-queue) without ever touching the
simulator.
"""

import threading
import time

import pytest

from repro.errors import PriorityError, ReproError
from repro.harness.metrics import REGISTRY
from repro.harness.queue import RequestScheduler
from repro.harness.sweep import PointFailure, SweepPoint
from repro.harness.task import (PRIORITY_HIGH, PRIORITY_LOW,
                                PRIORITY_NORMAL, Provenance,
                                metric_priority_label, parse_priority,
                                priority_label)
from repro.harness.variants import TuningParams


def make_point(threshold):
    """Distinct thresholds on CDP+T give distinct masked cache keys."""
    return SweepPoint("BFS", "KRON", "CDP+T",
                      TuningParams(threshold=threshold), scale=0.08)


class FakeExecutor:
    def __init__(self, fn=None):
        self.fn = fn or (lambda point: ("result", point.params.threshold))
        self.ran = []

    def run_one(self, point, on_error="continue"):
        self.ran.append(point)
        return self.fn(point)


class GatedExecutor(FakeExecutor):
    """Blocks every run until the test opens the gate."""

    def __init__(self, fn=None):
        super().__init__(fn)
        self.entered = threading.Event()
        self.gate = threading.Event()

    def run_one(self, point, on_error="continue"):
        self.entered.set()
        assert self.gate.wait(30), "test gate never opened"
        return super().run_one(point, on_error=on_error)


def close_quietly(scheduler):
    scheduler.close(drain=False, timeout=5)


def run_order(executor):
    return [p.params.threshold for p in executor.ran]


class TestParsePriority:
    def test_names_and_ints(self):
        assert parse_priority("high") == PRIORITY_HIGH
        assert parse_priority("NORMAL") == PRIORITY_NORMAL
        assert parse_priority("low") == PRIORITY_LOW
        assert parse_priority(None) == PRIORITY_NORMAL
        assert parse_priority("7") == 7
        assert parse_priority(2) == PRIORITY_LOW

    def test_mixed_case_names(self):
        assert parse_priority("High") == PRIORITY_HIGH
        assert parse_priority("LOW") == PRIORITY_LOW
        assert parse_priority(" Normal ") == PRIORITY_NORMAL

    @pytest.mark.parametrize("bad", ("urgent", "-1", -1, 1.5, True,
                                     "", "   "))
    def test_rejects_garbage(self, bad):
        with pytest.raises(PriorityError):
            parse_priority(bad)

    @pytest.mark.parametrize("bad", ("urgent", "", -1))
    def test_priority_error_is_value_error_and_repro_error(self, bad):
        # Callers that caught the old bare ValueError keep working, and
        # the serve layer can map it under the ReproError umbrella.
        with pytest.raises(ValueError):
            parse_priority(bad)
        with pytest.raises(ReproError):
            parse_priority(bad)

    def test_labels_round_trip(self):
        assert priority_label(PRIORITY_HIGH) == "high"
        assert priority_label(PRIORITY_NORMAL) == "normal"
        assert priority_label(PRIORITY_LOW) == "low"
        assert priority_label(7) == "7"

    def test_metric_label_buckets_unnamed_classes(self):
        """Client-supplied ints must not mint unbounded metric labels:
        every unnamed class buckets under 'other' in the registry."""
        assert metric_priority_label(PRIORITY_HIGH) == "high"
        assert metric_priority_label(PRIORITY_NORMAL) == "normal"
        assert metric_priority_label(PRIORITY_LOW) == "low"
        assert metric_priority_label(7) == "other"
        assert metric_priority_label(999999) == "other"

    def test_unnamed_priority_never_reaches_the_depth_gauge(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            queued = scheduler.submit(make_point(4), priority=314159)
            text = REGISTRY.render()
            assert 'repro_queue_depth{priority="other"} 1' in text
            assert "314159" not in text
            # /cache/info introspection keeps the exact class.
            assert scheduler.stats_dict()["by_priority"] == {"314159": 1}
            executor.gate.set()
            scheduler.result(blocker, timeout=30)
            scheduler.result(queued, timeout=30)
        finally:
            executor.gate.set()
            close_quietly(scheduler)


class TestPriorityOrdering:
    def test_high_priority_jumps_queued_normal_work(self):
        """A saturated scheduler must run a late high-priority submission
        before earlier normal-priority queued work (the ISSUE's
        acceptance scenario)."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            normals = [scheduler.submit(make_point(t)) for t in (4, 8)]
            urgent = scheduler.submit(make_point(64),
                                      priority=PRIORITY_HIGH)
            executor.gate.set()
            for task in [blocker, urgent] + normals:
                scheduler.result(task, timeout=30)
            assert run_order(executor) == [2, 64, 4, 8]
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_fifo_within_each_class(self):
        """seq breaks ties, so equal-priority work cannot starve: each
        class drains in strict submission order."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            submitted = [
                scheduler.submit(make_point(4), priority=PRIORITY_LOW),
                scheduler.submit(make_point(8), priority=PRIORITY_HIGH),
                scheduler.submit(make_point(16), priority=PRIORITY_NORMAL),
                scheduler.submit(make_point(32), priority=PRIORITY_HIGH),
                scheduler.submit(make_point(64), priority=PRIORITY_NORMAL),
            ]
            executor.gate.set()
            for task in [blocker] + submitted:
                scheduler.result(task, timeout=30)
            # high FIFO (8, 32), then normal FIFO (16, 64), then low (4).
            assert run_order(executor) == [2, 8, 32, 16, 64, 4]
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_default_settings_degenerate_to_fifo(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            tasks = [scheduler.submit(make_point(t)) for t in (4, 8, 16)]
            executor.gate.set()
            for task in tasks:
                scheduler.result(task, timeout=30)
            assert run_order(executor) == [4, 8, 16]
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_stats_report_depth_by_priority(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            scheduler.submit(make_point(4), priority=PRIORITY_HIGH)
            scheduler.submit(make_point(8), priority=PRIORITY_HIGH)
            scheduler.submit(make_point(16), priority=PRIORITY_LOW)
            stats = scheduler.stats_dict()
            assert stats["depth"] == 3
            assert stats["by_priority"] == {"high": 2, "low": 1}
        finally:
            executor.gate.set()
            close_quietly(scheduler)


class TestJoinAdoption:
    def test_join_upgrades_priority_of_queued_task(self):
        """A high-priority join promotes the queued task into the high
        class (re-heaped with its original seq)."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            low_a = scheduler.submit(make_point(4), priority=PRIORITY_LOW)
            low_b = scheduler.submit(make_point(8), priority=PRIORITY_LOW)
            joined = scheduler.submit(make_point(8),
                                      priority=PRIORITY_HIGH)
            assert joined is low_b
            assert low_b.priority == PRIORITY_HIGH
            assert scheduler.dedup_joins == 1
            executor.gate.set()
            for task in (blocker, low_a, low_b):
                scheduler.result(task, timeout=30)
            assert run_order(executor) == [2, 8, 4]
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_join_never_downgrades(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            task = scheduler.submit(make_point(8), priority=PRIORITY_HIGH)
            assert scheduler.submit(make_point(8),
                                    priority=PRIORITY_LOW) is task
            assert task.priority == PRIORITY_HIGH
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_join_adopts_tightest_deadline(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            loose = time.monotonic() + 500
            tight = time.monotonic() + 100
            task = scheduler.submit(make_point(8), deadline=loose)
            assert scheduler.submit(make_point(8),
                                    deadline=tight) is task
            assert task.deadline == tight
            # A looser joiner never relaxes the adopted deadline.
            assert scheduler.submit(make_point(8),
                                    deadline=loose) is task
            assert task.deadline == tight
            # And an unbounded joiner leaves it in place too.
            assert scheduler.submit(make_point(8)) is task
            assert task.deadline == tight
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_upgraded_task_queues_fifo_in_its_new_class(self):
        """The upgrade keeps the original seq: an older normal-priority
        task still runs before a younger task promoted into normal."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            older = scheduler.submit(make_point(4))     # normal, seq i
            younger = scheduler.submit(make_point(8),   # low, seq i+1
                                       priority=PRIORITY_LOW)
            scheduler.submit(make_point(8))             # promote to normal
            assert younger.priority == PRIORITY_NORMAL
            executor.gate.set()
            for task in (blocker, older, younger):
                scheduler.result(task, timeout=30)
            assert run_order(executor) == [2, 4, 8]
        finally:
            executor.gate.set()
            close_quietly(scheduler)


class TestShedding:
    def test_expired_on_submit_never_reaches_the_executor(self):
        executor = FakeExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            task = scheduler.submit(make_point(4),
                                    deadline=time.monotonic() - 0.01)
            assert task.event.is_set()          # resolved synchronously
            result = scheduler.result(task, timeout=1)
            assert isinstance(result, PointFailure)
            assert result.error == "DeadlineExceededError"
            assert "expired-on-submit" in result.message
            assert executor.ran == []
            assert scheduler.shed == 1
            # Shed accounting is separate from executor outcomes.
            assert scheduler.submitted == 0
            assert scheduler.completed == 0
            assert scheduler.failed == 0
            assert scheduler.stats_dict()["shed"] == 1
        finally:
            close_quietly(scheduler)

    def test_expired_in_queue_sheds_at_pop(self):
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            doomed = scheduler.submit(make_point(4),
                                      deadline=time.monotonic() + 0.05)
            time.sleep(0.1)                     # deadline passes while queued
            executor.gate.set()
            result = scheduler.result(doomed, timeout=30)
            assert isinstance(result, PointFailure)
            assert result.error == "DeadlineExceededError"
            assert "expired-in-queue" in result.message
            scheduler.result(blocker, timeout=30)
            assert run_order(executor) == [2]   # doomed never executed
            assert scheduler.shed == 1
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_unexpired_deadline_runs_normally(self):
        scheduler = RequestScheduler([FakeExecutor()], max_pending=16)
        try:
            task = scheduler.submit(make_point(4),
                                    deadline=time.monotonic() + 60)
            assert scheduler.result(task, timeout=30) == ("result", 4)
            assert scheduler.shed == 0
        finally:
            close_quietly(scheduler)

    def test_expired_batch_sheds_without_capacity_check(self):
        """An all-expired submit_all resolves every point immediately —
        even a batch wider than max_pending, since nothing queues."""
        executor = FakeExecutor()
        scheduler = RequestScheduler([executor], max_pending=2)
        try:
            tasks = scheduler.submit_all(
                [make_point(t) for t in (4, 8, 16, 32)],
                deadline=time.monotonic() - 0.01)
            assert len(tasks) == 4
            for task in tasks:
                result = scheduler.result(task, timeout=1)
                assert isinstance(result, PointFailure)
                assert result.error == "DeadlineExceededError"
            assert executor.ran == []
            assert scheduler.shed == 4
        finally:
            close_quietly(scheduler)

    def test_expired_submit_never_joins_or_poisons_existing_task(self):
        """Regression: an already-expired submission used to dedup-join
        the queued task for its key and tighten the shared deadline into
        the past, so every earlier waiter — even ones that submitted
        with no deadline at all — got a spurious DeadlineExceededError.
        It must shed individually instead."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            waiter = scheduler.submit(make_point(4))    # queued, no deadline
            shed = scheduler.submit(make_point(4),
                                    deadline=time.monotonic() - 0.01)
            assert shed is not waiter                   # no join happened
            assert shed.event.is_set()
            assert waiter.deadline is None              # not poisoned
            assert waiter.joins == 0
            result = scheduler.result(shed, timeout=1)
            assert isinstance(result, PointFailure)
            assert result.error == "DeadlineExceededError"
            executor.gate.set()
            assert scheduler.result(waiter, timeout=30) == ("result", 4)
            scheduler.result(blocker, timeout=30)
            assert scheduler.shed == 1
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_expired_batch_never_joins_inflight_tasks(self):
        """submit_all with a spent deadline sheds every point — including
        ones whose key has a queued/running task — without touching the
        in-flight tasks' deadlines."""
        executor = GatedExecutor()
        scheduler = RequestScheduler([executor], max_pending=16)
        try:
            blocker = scheduler.submit(make_point(2))
            assert executor.entered.wait(30)
            waiter = scheduler.submit(make_point(4))
            tasks = scheduler.submit_all(
                [make_point(4), make_point(8)],
                deadline=time.monotonic() - 0.01)
            assert waiter not in tasks
            assert waiter.deadline is None
            for task in tasks:
                result = scheduler.result(task, timeout=1)
                assert isinstance(result, PointFailure)
                assert result.error == "DeadlineExceededError"
            executor.gate.set()
            assert scheduler.result(waiter, timeout=30) == ("result", 4)
            scheduler.result(blocker, timeout=30)
            assert scheduler.shed == 2
        finally:
            executor.gate.set()
            close_quietly(scheduler)

    def test_shed_task_does_not_block_its_key(self):
        """A shed never registers in the dedup map, so the same spec can
        be resubmitted (e.g. with a saner deadline) right away."""
        scheduler = RequestScheduler([FakeExecutor()], max_pending=16)
        try:
            shed = scheduler.submit(make_point(4),
                                    deadline=time.monotonic() - 0.01)
            retry = scheduler.submit(make_point(4))
            assert retry is not shed
            assert scheduler.result(retry, timeout=30) == ("result", 4)
        finally:
            close_quietly(scheduler)


class TestProvenance:
    def test_provenance_rides_on_the_task(self):
        scheduler = RequestScheduler([FakeExecutor()], max_pending=16)
        try:
            prov = Provenance(client="127.0.0.1", request_id="req-1",
                              source="point")
            task = scheduler.submit(make_point(4), provenance=prov)
            assert task.provenance is prov
            assert prov.to_dict() == {"client": "127.0.0.1",
                                      "request_id": "req-1",
                                      "source": "point"}
            scheduler.result(task, timeout=30)
        finally:
            close_quietly(scheduler)
