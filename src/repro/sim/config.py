"""Simulated device configuration.

Loosely shaped after a scaled-down Volta V100 (the paper's testbed): many
SMs, bounded resident blocks/threads per SM, and — the part that matters for
dynamic parallelism — a finite-rate grid launch queue. The paper attributes
CDP's slowdown to exactly two mechanisms, both modelled here:

* *congestion*: device-side launches pass through a single launch processor
  with a fixed service interval, so thousands of small launches serialize;
* *underutilization*: a grid occupies block slots proportional to its size,
  so many tiny grids leave SMs idle while still paying per-block overhead.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceConfig:
    """All timing parameters of the simulated GPU (cycle units)."""

    name: str = "sim-v100-mini"
    num_sms: int = 8
    max_blocks_per_sm: int = 4
    max_threads_per_sm: int = 1024
    warp_size: int = 32
    issue_width: int = 2              # warp-instructions retired per SM cycle,
                                      # shared by all blocks resident on the SM
    block_overhead: int = 80          # schedule/drain cost per thread block
    device_launch_latency: int = 1500  # pipeline latency of one CDP launch
    launch_service_interval: int = 400  # launch-queue service (congestion)
    host_launch_latency: int = 6000   # host-side kernel launch
    host_agg_overhead: int = 9000     # host readback + launch for grid-
                                      # granularity aggregation (Sec. V-A)
    pending_launch_limit: int = 4096  # CUDA pending-launch buffer pool

    def block_slots(self, block_threads):
        """Resident blocks per SM for a given block size."""
        if block_threads <= 0:
            return self.max_blocks_per_sm
        by_threads = max(1, self.max_threads_per_sm // max(block_threads, 1))
        return max(1, min(self.max_blocks_per_sm, by_threads))

    def block_service(self, sum_warp_cycles):
        """SM pipeline time one block's work consumes (throughput bound).

        All blocks resident on an SM share its issue bandwidth, so the
        scheduler accumulates this on a per-SM work counter.
        """
        return self.block_overhead + sum_warp_cycles // self.issue_width

    def block_latency(self, max_warp_cycles):
        """Lower bound on one block's lifetime (its slowest warp)."""
        return self.block_overhead + max_warp_cycles

    def block_duration(self, max_warp_cycles, sum_warp_cycles):
        """Duration of a block running *alone* on an SM."""
        return max(self.block_latency(max_warp_cycles),
                   self.block_service(sum_warp_cycles))
