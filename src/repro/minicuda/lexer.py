"""Tokenizer for the miniCUDA dialect.

The lexer handles C-style line and block comments, integer and floating
literals (including suffixes like ``1024u``, ``1.0f``), string and char
literals (used only for diagnostics), identifiers, keywords, and the
punctuator set in :mod:`repro.minicuda.tokens` — notably the CUDA launch
delimiters ``<<<`` and ``>>>``.
"""

from ..errors import LexError
from .tokens import (CHAR, EOF, FLOAT, IDENT, INT, KEYWORD, KEYWORDS, PUNCT,
                     PUNCTUATORS, STRING, Token)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_SUFFIX_CHARS = frozenset("fFuUlL")


class Lexer:
    """Single-pass tokenizer. Use :func:`tokenize` for the common case."""

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokenize(self):
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == EOF:
                return tokens

    # -- internals --------------------------------------------------------

    def _error(self, message):
        raise LexError(message, self.line, self.col)

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _skip_trivia(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in (" ", "\t", "\r", "\n"):
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    self._error("unterminated block comment")
            elif ch == "#":
                # Preprocessor lines (e.g. #define _THRESHOLD 128) are not
                # part of the dialect; skip to end of line so sources that
                # carry them still lex.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self):
        self._skip_trivia()
        line, col = self.line, self.col
        ch = self._peek()
        if not ch:
            return Token(EOF, "", line, col)
        if ch in _IDENT_START:
            return self._lex_ident(line, col)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, col)
        if ch == '"':
            return self._lex_string(line, col)
        if ch == "'":
            return self._lex_char(line, col)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(PUNCT, punct, line, col)
        self._error("unexpected character %r" % ch)

    def _lex_ident(self, line, col):
        start = self.pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[start:self.pos]
        kind = KEYWORD if text in KEYWORDS else IDENT
        return Token(kind, text, line, col)

    def _lex_number(self, line, col):
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() in _HEX_DIGITS:
                self._advance()
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() in ("e", "E") and (
                    self._peek(1) in _DIGITS
                    or (self._peek(1) in ("+", "-") and self._peek(2) in _DIGITS)):
                is_float = True
                self._advance()
                if self._peek() in ("+", "-"):
                    self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
        text = self.source[start:self.pos]
        # Suffixes: f/F force float; u/U/l/L are kept on integers but do not
        # change the token kind.
        while self._peek() in _SUFFIX_CHARS:
            if self._peek() in ("f", "F"):
                is_float = True
            text += self._peek()
            self._advance()
        return Token(FLOAT if is_float else INT, text, line, col)

    def _lex_string(self, line, col):
        self._advance()
        start = self.pos
        while self.pos < len(self.source) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self.pos >= len(self.source):
            self._error("unterminated string literal")
        text = self.source[start:self.pos]
        self._advance()
        return Token(STRING, text, line, col)

    def _lex_char(self, line, col):
        self._advance()
        start = self.pos
        while self.pos < len(self.source) and self._peek() != "'":
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self.pos >= len(self.source):
            self._error("unterminated char literal")
        text = self.source[start:self.pos]
        self._advance()
        return Token(CHAR, text, line, col)


def tokenize(source):
    """Tokenize *source* and return the token list (terminated by EOF)."""
    return Lexer(source).tokenize()
