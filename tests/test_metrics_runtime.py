"""Breakdown metrics and host-runtime tests."""

import numpy as np
import pytest

from repro.engine import Module
from repro.errors import RuntimeLaunchError
from repro.runtime import Device, blocks
from repro.runtime.host import _agg_geometry
from repro.sim import DeviceConfig
from repro.transforms import OptConfig, transform
from repro.transforms.base import AggSpec


class TestBlocksHelper:
    def test_exact_fit(self):
        assert blocks(256, 256) == 1

    def test_ceiling(self):
        assert blocks(257, 256) == 2

    def test_zero(self):
        assert blocks(0, 256) == 0


class TestDeviceMemory:
    def _device(self):
        return Device(Module("__global__ void k(int *p) { p[0] = 1; }"))

    def test_alloc_fill(self):
        dev = self._device()
        p = dev.alloc("int", 4, fill=-1)
        assert list(p.array) == [-1] * 4

    def test_upload_int(self):
        dev = self._device()
        p = dev.upload(np.array([1, 2, 3]))
        assert p.array.dtype == np.int64
        assert list(p.array) == [1, 2, 3]

    def test_upload_float(self):
        dev = self._device()
        p = dev.upload(np.array([0.5, 1.5]))
        assert p.array.dtype == np.float64

    def test_wrong_arg_count_rejected(self):
        dev = self._device()
        with pytest.raises(RuntimeLaunchError):
            dev.launch("k", 1, 32)


class TestAggGeometry:
    def _spec(self, granularity, group_blocks=8):
        return AggSpec(parent="p", site_index=0, agg_kernel="a",
                       original_child="c", granularity=granularity,
                       group_blocks=group_blocks, arg_types=[],
                       buffer_params=[])

    def test_block(self):
        groups, seg = _agg_geometry(self._spec("block", 1), 10, 256)
        assert groups == 10 and seg == 256

    def test_multiblock(self):
        groups, seg = _agg_geometry(self._spec("multiblock", 4), 10, 256)
        assert groups == 3 and seg == 1024

    def test_warp(self):
        groups, seg = _agg_geometry(self._spec("warp"), 10, 96)
        assert groups == 30 and seg == 32

    def test_warp_partial(self):
        groups, seg = _agg_geometry(self._spec("warp"), 2, 48)
        assert groups == 4 and seg == 32

    def test_grid(self):
        groups, seg = _agg_geometry(self._spec("grid"), 10, 256)
        assert groups == 1 and seg == 2560


class TestEndToEndBreakdown:
    SRC = """
    __global__ void child(int *out, int start, int degree) {
        int t = blockIdx.x * blockDim.x + threadIdx.x;
        if (t < degree) { atomicAdd(&out[0], start + t); }
    }
    __global__ void parent(int *sizes, int *out, int n) {
        int t = blockIdx.x * blockDim.x + threadIdx.x;
        if (t < n) {
            int d = sizes[t];
            if (d > 0) {
                child<<<(d + 31) / 32, 32>>>(out, t, d);
            }
        }
    }
    """

    def _run(self, config):
        if config is None:
            module = Module(self.SRC)
        else:
            result = transform(self.SRC, config)
            module = Module(result.program, result.meta)
        dev = Device(module)
        rng = np.random.default_rng(0)
        n = 300
        sizes = dev.upload(rng.integers(0, 50, n))
        out = dev.alloc("int", 1)
        dev.launch("parent", blocks(n, 128), 128, sizes, out, n)
        dev.sync()
        timing = dev.finish()
        return out[0], timing, dev.breakdown()

    def test_aggregation_populates_agg_regions(self):
        ref, _, plain = self._run(None)
        out, _, agg = self._run(OptConfig(aggregate="block"))
        assert out == ref
        assert plain.agg == 0 and plain.disagg == 0
        assert agg.agg > 0 and agg.disagg > 0

    def test_thresholding_moves_child_work_to_parent(self):
        ref, _, plain = self._run(None)
        out, _, thresh = self._run(OptConfig(threshold=64))
        assert out == ref
        assert thresh.parent > plain.parent
        assert thresh.child < plain.child

    def test_launch_component_shrinks_with_aggregation(self):
        _, _, plain = self._run(None)
        _, _, agg = self._run(OptConfig(aggregate="block"))
        assert agg.launch < plain.launch

    def test_grid_granularity_runs_host_agg(self):
        ref, _, _ = self._run(None)
        out, timing, _ = self._run(OptConfig(aggregate="grid"))
        assert out == ref
        assert timing.host_agg_launches >= 1
        assert timing.device_launches == 0

    def test_breakdown_total_matches_components(self):
        _, _, bd = self._run(OptConfig(aggregate="block"))
        assert bd.total == bd.parent + bd.child + bd.launch + bd.agg \
            + bd.disagg
        shares = bd.normalized()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
