"""Request scheduler for the query service's miss path.

PR 4's ``repro serve`` serialized every cache miss behind one executor
lock, so a single cold ``/sweep`` stalled every other cold request. This
module replaces that lock with a :class:`RequestScheduler`: a bounded
**deadline-aware priority queue** drained by a configurable number of
worker threads (``--miss-workers``), each owning its own
:class:`~repro.harness.sweep.SweepExecutor` (the sweep backends are not
safe for concurrent ``map`` calls, so concurrency comes from *multiple*
executors sharing one :class:`~repro.harness.cache.ResultCache`, which
is multi-process safe by construction).

The unit of scheduling is the :class:`~repro.harness.task.Task` record
(point + key + priority class + absolute deadline + provenance). The
queue is a heap ordered by ``(priority, seq)``:

* **Priority classes, FIFO within a class.** Lower priority ints run
  first; ``seq`` (monotonic submission order) breaks ties, so within a
  class ordering is strictly first-come-first-served — no task can
  starve another of equal priority. Under default settings (everything
  ``PRIORITY_NORMAL``, no deadlines) the heap degenerates to exactly
  the old FIFO.
* **Deadline shedding.** A task whose absolute deadline has passed is
  *shed* — resolved as a structured ``DeadlineExceededError``
  :class:`~repro.harness.sweep.PointFailure` without ever touching the
  simulator: at submit time (``expired-on-submit``) or when a worker
  pops it (``expired-in-queue``). Sheds are counted on
  ``repro_queue_shed_total{reason}`` and the instance's ``shed``
  counter, separate from executor failures.
* **Per-point in-flight deduplication.** Tasks are keyed by
  :func:`~repro.harness.cache.point_key` (the masked, content-addressed
  spec): while a point is queued or running, further submissions for the
  same key *join* the existing task instead of enqueueing a duplicate.
  A join adopts the **tightest deadline** and **highest priority** of
  its joiners (a queued task is re-heaped keeping its original ``seq``,
  so it still queues FIFO among its new classmates).
* **Bounded queue / backpressure.** At most *max_pending* tasks may be
  queued; past that :meth:`submit` raises
  :class:`~repro.errors.QueueFullError`, which the HTTP layer maps to
  ``503`` so clients back off instead of piling onto a saturated
  simulator.
* **Graceful drain.** :meth:`close` (``drain=True``, the default) stops
  intake, lets queued and in-flight tasks finish, then joins the
  workers — an in-flight miss is never killed mid-write. With
  ``drain=False`` pending tasks resolve to structured
  :class:`~repro.harness.sweep.PointFailure` entries so no waiter hangs.

Every transition is mirrored into :mod:`repro.harness.metrics`
(``repro_queue_*`` series; depth is labeled per priority class) and
counted on the instance (:meth:`stats_dict`, surfaced by
``GET /cache/info``).
"""

import heapq
import threading
import time

from ..errors import QueueClosedError, QueueFullError
from .cache import point_key
from .metrics import REGISTRY
from .sweep import PointFailure
from .task import (PRIORITY_NORMAL, Task, metric_priority_label,
                   priority_label)

__all__ = ["MissTask", "RequestScheduler"]

#: Backwards-compatible alias — PR 5's MissTask grew into the Task record.
MissTask = Task

_SUBMITTED = REGISTRY.counter(
    "repro_queue_submitted_total",
    "Miss tasks accepted into the scheduler queue")
_DEDUP_JOINS = REGISTRY.counter(
    "repro_queue_dedup_joins_total",
    "Submissions that joined an already queued/running task for the "
    "same point key instead of enqueueing a duplicate")
_REJECTED = REGISTRY.counter(
    "repro_queue_rejected_total",
    "Submissions rejected by the scheduler", ("reason",))
_COMPLETED = REGISTRY.counter(
    "repro_queue_completed_total",
    "Miss tasks finished by a scheduler worker", ("outcome",))
_SHED = REGISTRY.counter(
    "repro_queue_shed_total",
    "Tasks shed (resolved as DeadlineExceededError PointFailures "
    "without simulating) because their deadline passed", ("reason",))
_DEPTH = REGISTRY.gauge(
    "repro_queue_depth",
    "Tasks waiting in the scheduler queue, per priority class",
    ("priority",))
_INFLIGHT = REGISTRY.gauge(
    "repro_queue_inflight", "Tasks currently running on a worker")
_WAIT = REGISTRY.histogram(
    "repro_queue_wait_seconds",
    "Seconds a task waited between submission and execution start")


class RequestScheduler:
    """Deadline-aware priority miss queue with dedup, workers, and drain.

    *executors* is a non-empty list of
    :class:`~repro.harness.sweep.SweepExecutor`\\ s — one dedicated
    worker thread per executor (the executors should share one cache but
    must not share a backend). The scheduler does **not** own the
    executors; callers close them after :meth:`close` returns.
    """

    def __init__(self, executors, max_pending=64):
        executors = list(executors)
        if not executors:
            raise ValueError("RequestScheduler needs at least one executor")
        self.max_pending = max(1, int(max_pending))
        self._cond = threading.Condition()
        self._heap = []                 # [priority, seq, task-or-None]
        self._queued = 0                # live (non-stale) heap entries
        self._seq = 0
        self._by_key = {}               # key -> queued/running Task
        self._running = 0
        self._closed = False
        # Instance-exact counters (the global REGISTRY aggregates across
        # every scheduler in the process; these back /cache/info).
        self.submitted = 0
        self.dedup_joins = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self._threads = [
            threading.Thread(target=self._worker, args=(executor,),
                             name="repro-miss-%d" % index, daemon=True)
            for index, executor in enumerate(executors)]
        for thread in self._threads:
            thread.start()

    @property
    def workers(self):
        return len(self._threads)

    # -- intake ---------------------------------------------------------------

    def submit(self, point, priority=PRIORITY_NORMAL, deadline=None,
               provenance=None):
        """Queue *point* (or join its in-flight task); returns the
        :class:`~repro.harness.task.Task` to :meth:`result` on.

        *priority* is an int class (lower runs first), *deadline* an
        absolute ``time.monotonic()`` timestamp or None. A submission
        whose deadline has already passed is shed immediately — the
        returned task is already resolved to a ``DeadlineExceededError``
        :class:`~repro.harness.sweep.PointFailure` and never queues, nor
        joins an in-flight task (one caller's spent budget must not fail
        other waiters on the same key).

        Raises :class:`~repro.errors.QueueFullError` when *max_pending*
        tasks are already queued and
        :class:`~repro.errors.QueueClosedError` once the scheduler is
        draining — both well-formed-but-unservable (HTTP 503).
        """
        key = point_key(point)
        with self._cond:
            if self._closed:
                self.rejected += 1
                _REJECTED.inc(reason="closed")
                raise QueueClosedError(
                    "the miss scheduler is shutting down")
            # Expiry is checked before the dedup join: an already-spent
            # deadline is shed individually and must never tighten a
            # shared task's deadline into the past (which would fail
            # every earlier waiter on the same key).
            if deadline is not None and time.monotonic() >= deadline:
                return self._shed_new_locked(key, point, priority, deadline,
                                             provenance,
                                             reason="expired-on-submit")
            task = self._by_key.get(key)
            if task is not None:
                self._join_locked(task, priority, deadline)
                return task
            if self._queued >= self.max_pending:
                self.rejected += 1
                _REJECTED.inc(reason="full")
                raise QueueFullError(
                    "miss queue full (%d tasks pending; retry later)"
                    % self._queued)
            task = self._enqueue_locked(key, point, priority, deadline,
                                        provenance)
            self._cond.notify()
            return task

    def submit_all(self, points, priority=PRIORITY_NORMAL, deadline=None,
                   provenance=None):
        """Atomically queue a batch in order (one lock hold, so another
        request cannot interleave into the middle of this one); returns
        one task per point, deduplicated like :meth:`submit`. The whole
        batch shares one priority/deadline/provenance; an expired
        deadline sheds every point individually without queueing any —
        and without joining in-flight tasks, whose waiters must not
        inherit the spent deadline."""
        with self._cond:
            if self._closed:
                self.rejected += 1
                _REJECTED.inc(reason="closed")
                raise QueueClosedError(
                    "the miss scheduler is shutting down")
            expired = deadline is not None \
                and time.monotonic() >= deadline
            # Plan first, mutate nothing: a rejected batch must leave
            # every counter (and other requests' live tasks) untouched.
            plan = []                   # (key, point, existing-or-None)
            fresh_keys = []
            seen = set()
            for point in points:
                key = point_key(point)
                existing = self._by_key.get(key)
                plan.append((key, point, existing))
                if existing is None and key not in seen:
                    seen.add(key)
                    fresh_keys.append(key)
            if not expired and self._queued + len(fresh_keys) \
                    > self.max_pending:
                self.rejected += 1
                _REJECTED.inc(reason="full")
                raise QueueFullError(
                    "miss queue full (%d pending + %d new > %d; retry "
                    "later)" % (self._queued, len(fresh_keys),
                                self.max_pending))
            tasks = []
            fresh = {}                  # key -> task created in this batch
            for key, point, existing in plan:
                if existing is not None and not expired:
                    self._join_locked(existing, priority, deadline)
                    tasks.append(existing)
                    continue
                task = fresh.get(key)
                if task is not None:
                    task.joins += 1
                    self.dedup_joins += 1
                    _DEDUP_JOINS.inc()
                elif expired:
                    task = self._shed_new_locked(
                        key, point, priority, deadline, provenance,
                        reason="expired-on-submit")
                    fresh[key] = task
                else:
                    task = self._enqueue_locked(key, point, priority,
                                                deadline, provenance)
                    fresh[key] = task
                tasks.append(task)
            self._cond.notify(len(fresh))
        return tasks

    def _enqueue_locked(self, key, point, priority, deadline, provenance):
        self._seq += 1
        task = Task(key, point, priority=priority, deadline=deadline,
                    provenance=provenance, seq=self._seq)
        task.entry = [priority, task.seq, task]
        heapq.heappush(self._heap, task.entry)
        self._queued += 1
        self._by_key[key] = task
        self.submitted += 1
        _SUBMITTED.inc()
        _DEPTH.inc(priority=metric_priority_label(priority))
        return task

    def _join_locked(self, task, priority, deadline):
        """Join *task*, adopting the tightest deadline / highest priority.

        A deadline that has already passed is never adopted (the submit
        paths shed expired work before joining, so this is a local
        restatement of the same invariant): tightening a shared task's
        deadline into the past would spuriously fail every other waiter.
        """
        task.joins += 1
        self.dedup_joins += 1
        _DEDUP_JOINS.inc()
        if deadline is not None and (task.deadline is None
                                     or deadline < task.deadline) \
                and deadline > time.monotonic():
            task.deadline = deadline
        if priority < task.priority and not task.started:
            # Upgrade in place: lazily invalidate the old heap entry and
            # push a replacement that keeps the original seq, preserving
            # FIFO arrival order within the new class.
            old = task.priority
            if task.entry is not None:
                task.entry[2] = None
            task.priority = priority
            task.entry = [priority, task.seq, task]
            heapq.heappush(self._heap, task.entry)
            _DEPTH.dec(priority=metric_priority_label(old))
            _DEPTH.inc(priority=metric_priority_label(priority))
            self._cond.notify()

    def _shed_new_locked(self, key, point, priority, deadline, provenance,
                         reason):
        """Resolve a never-queued task as an expired-deadline failure."""
        self._seq += 1
        task = Task(key, point, priority=priority, deadline=deadline,
                    provenance=provenance, seq=self._seq)
        self._resolve_shed_locked(task, reason)
        return task

    def _resolve_shed_locked(self, task, reason):
        self.shed += 1
        _SHED.inc(reason=reason)
        task.result = PointFailure(
            task.point, "DeadlineExceededError",
            "deadline expired before this point ran (%s)" % reason)
        task.event.set()
        self._cond.notify_all()

    def result(self, task, timeout=None):
        """Block until *task* completes; returns its
        :class:`~repro.harness.runner.RunResult` or
        :class:`~repro.harness.sweep.PointFailure`. Raises ``TimeoutError``
        past *timeout* seconds (the task keeps running)."""
        if not task.event.wait(timeout):
            raise TimeoutError("miss task %s not done after %ss"
                               % (task.point.describe(), timeout))
        return task.result

    # -- execution ------------------------------------------------------------

    def _worker(self, executor):
        while True:
            with self._cond:
                task = None
                while task is None:
                    while not self._heap and not self._closed:
                        self._cond.wait()
                    if not self._heap:   # closed and drained
                        return
                    entry = heapq.heappop(self._heap)
                    task = entry[2]      # None == stale (upgraded) entry
                self._queued -= 1
                task.entry = None
                _DEPTH.dec(priority=metric_priority_label(task.priority))
                if task.expired():
                    self._by_key.pop(task.key, None)
                    self._resolve_shed_locked(task, "expired-in-queue")
                    continue
                task.started = True
                self._running += 1
                _INFLIGHT.inc()
            _WAIT.observe(time.perf_counter() - task.submitted_at)
            try:
                result = executor.run_one(task.point, on_error="continue")
            except Exception as exc:        # noqa: BLE001 — keep draining
                result = PointFailure(task.point, type(exc).__name__,
                                      str(exc))
            self._finish(task, result)

    def _finish(self, task, result):
        failed = isinstance(result, PointFailure)
        with self._cond:
            self._by_key.pop(task.key, None)
            self._running -= 1
            self.completed += 1
            self.failed += failed
            _INFLIGHT.dec()
            _COMPLETED.inc(outcome="failed" if failed else "ok")
            task.result = result
            task.event.set()
            self._cond.notify_all()

    # -- introspection --------------------------------------------------------

    def stats_dict(self):
        """JSON-able scheduler counters (the ``queue`` block of
        ``GET /cache/info``). ``by_priority`` maps priority-class labels
        to queued-task counts (empty when the queue is empty); ``shed``
        counts deadline-expired tasks resolved without simulating."""
        with self._cond:
            by_priority = {}
            for entry in self._heap:
                if entry[2] is not None:
                    label = priority_label(entry[0])
                    by_priority[label] = by_priority.get(label, 0) + 1
            return {"workers": self.workers,
                    "max_pending": self.max_pending,
                    "depth": self._queued,
                    "by_priority": by_priority,
                    "inflight": self._running,
                    "submitted": self.submitted,
                    "dedup_joins": self.dedup_joins,
                    "rejected": self.rejected,
                    "completed": self.completed,
                    "failed": self.failed,
                    "shed": self.shed,
                    "draining": self._closed}

    # -- shutdown -------------------------------------------------------------

    def close(self, drain=True, timeout=None):
        """Stop intake and shut the workers down.

        ``drain=True`` (default): queued and in-flight tasks finish
        first — the graceful path ``repro serve`` takes on SIGTERM /
        Ctrl-C / ``POST /shutdown``. ``drain=False``: pending tasks are
        resolved immediately as ``QueueClosedError``
        :class:`~repro.harness.sweep.PointFailure`\\ s (in-flight tasks
        still run to completion; a worker thread cannot be interrupted
        mid-simulation). *timeout* bounds the whole wait; returns True
        when every worker exited. Idempotent.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._closed = True
            if not drain:
                while self._heap:
                    entry = heapq.heappop(self._heap)
                    task = entry[2]
                    if task is None:
                        continue
                    self._queued -= 1
                    task.entry = None
                    self._by_key.pop(task.key, None)
                    self.completed += 1
                    self.failed += 1
                    _COMPLETED.inc(outcome="failed")
                    _DEPTH.dec(priority=metric_priority_label(task.priority))
                    task.result = PointFailure(
                        task.point, "QueueClosedError",
                        "service shut down before this point ran")
                    task.event.set()
            self._cond.notify_all()
        done = True
        for thread in self._threads:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
            done = done and not thread.is_alive()
        return done
