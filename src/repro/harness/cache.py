"""Persistent, content-addressed cache of sweep results and figure artifacts.

Every figure/autotune invocation re-simulates the same dense
(benchmark × dataset × variant × params) grids from scratch; this cache
makes repeated runs cheap. Layout: one JSON file per point plus one pickle
per finished figure, plus a SQLite metadata index beside the blobs,

    <cache_dir>/<key>.json              -- RunResult (ResultCache)
    <cache_dir>/figures/<key>.pkl       -- figure object (FigureArtifactCache)
    <cache_dir>/index.sqlite            -- CacheIndex (harness.index)

where ``key`` is the SHA-256 of the canonical point (or figure) spec plus
the code version (``repro.__version__`` and :data:`CACHE_VERSION`). Any
change to a tuning parameter, the device model, or the code version
therefore lands on a different key — stale entries are never returned,
only orphaned.

Each blob carries a ``meta`` block (hit count, measured simulation cost
in seconds, creation time, cache version) written at store time. The
:class:`~repro.harness.index.CacheIndex` is a write-through mirror of
that metadata, queryable by SQL (``repro cache top|stats``, cost-aware
prune) and rebuildable from the blobs via :meth:`ResultCache.reindex`
(``repro cache reindex``). The warm **hit path stays read-only on the
blob**: a hit refreshes the blob's mtime (LRU order) and bumps the hit
count only in the index — an atomic SQL increment, so concurrent hits
across threads and processes are never lost and a figure artifact is
never re-pickled just to count a hit. :meth:`ResultCache.sync_hits`
folds the accumulated counts back into the blobs' ``meta`` blocks
lazily (``prune`` and ``reindex`` run it first), so deleting
``index.sqlite`` loses at most the hits taken since the last fold.

Orphans are why the cache has a lifecycle: :meth:`ResultCache.info` counts
entries and bytes, :meth:`ResultCache.prune` bounds both by evicting
entries — least-recently-used (``--policy lru``, default; hits refresh
mtime, so mtime order is LRU order) or cheapest-to-recompute first
(``--policy cost``, ranked by the index's measured sim costs) — and
:meth:`ResultCache.clear`/:meth:`ResultCache.prune` also sweep ``.tmp``
files stranded by a run killed between ``mkstemp`` and ``os.replace``.
The ``repro cache`` CLI (``info``/``clear``/``prune``/``reindex``/
``top``/``stats``) fronts all of it.

Result entries store :class:`~repro.harness.runner.RunResult` fields except
the raw ``outputs`` arrays (results carrying outputs are simply not
cached). Corrupted or truncated entries are dropped and treated as misses,
so a killed run can never poison later ones.
"""

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass

from .. import __version__
from .index import CacheIndex
from .metrics import REGISTRY
from .runner import RunResult

#: Cache traffic across every cache instance in the process, labelled by
#: which cache (``result``/``figure``) and how the lookup resolved.
#: Uncounted optimistic pre-checks (``count_miss=False`` misses) are not
#: recorded, mirroring the instance counters (see :meth:`ResultCache.get`).
_LOOKUPS = REGISTRY.counter(
    "repro_cache_lookups_total",
    "Cache lookups by cache kind and outcome", ("cache", "outcome"))
_STORES = REGISTRY.counter(
    "repro_cache_stores_total",
    "Entries written (atomically) into a cache", ("cache",))
_EVICTIONS = REGISTRY.counter(
    "repro_cache_evictions_total",
    "Entries dropped by prune/clear/corruption sweeps", ("reason",))

#: Bump when the cached representation or the simulator semantics change.
#: 2: sweep_grid/figure11 canonicalize group_blocks via mask_params, so
#: pre-existing keys for non-multiblock points may alias stale entries.
#: 3: the engine's compiled-kernel cache (repro.engine.cache) keys on this
#: same constant — bumping it must invalidate cached results AND compiled
#: artifacts together, and the vectorized scheduler landed alongside it.
#: 4: blob payloads carry a "meta" block (hits, sim cost, created, cache
#: version) and figure pickles are wrapped with their name/spec so the
#: SQLite metadata index (harness.index) can be rebuilt from blobs alone.
CACHE_VERSION = 4

#: Default age (seconds) past which a stranded ``.tmp`` file is considered
#: stale — generous enough that a live writer is never swept.
TMP_MAX_AGE = 3600.0

#: ``repro cache prune --policy`` vocabulary.
PRUNE_POLICIES = ("lru", "cost")

#: Marker key identifying a figure pickle's metadata wrapper (figure
#: *artifacts* themselves may be plain dicts, so unwrapping keys on this).
_FIGURE_WRAPPER_MARK = "__repro_figure__"


def _hash_spec(spec):
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def encode_result(result):
    """JSON-able payload for one :class:`~repro.harness.runner.RunResult`
    — **the** result wire format.

    This is the single serialized encoding shared by every consumer of a
    finished point; there is no second schema anywhere in the system:

    * the on-disk cache stores it as the ``result`` field of
      ``<cache-dir>/<key>.json`` (:class:`ResultCache`,
      ``docs/sweep-engine.md``);
    * the remote backend ships it inside ``chunk_result`` TCP frames
      (:mod:`repro.harness.remote`, ``docs/sweep-engine.md``);
    * the HTTP query service returns it verbatim as the ``result`` field
      of ``GET /point`` and ``POST /sweep`` responses
      (:mod:`repro.harness.serve`, ``docs/serving.md``).

    Raw ``outputs`` arrays are dropped — disk, TCP, and HTTP all carry
    timings only. Invert with :func:`decode_result`; the payload
    round-trips through ``json`` unchanged:

    >>> import json
    >>> from repro.harness.runner import RunResult
    >>> from repro.harness.variants import TuningParams
    >>> result = RunResult("BFS", "KRON", "CDP+T",
    ...                    TuningParams(threshold=16), total_time=120,
    ...                    breakdown={"parent": 70, "child": 50},
    ...                    device_launches=4, host_agg_launches=0,
    ...                    launch_queue_wait=9)
    >>> payload = encode_result(result)
    >>> sorted(payload)          # doctest: +NORMALIZE_WHITESPACE
    ['benchmark', 'breakdown', 'dataset', 'device_launches',
     'host_agg_launches', 'label', 'launch_queue_wait', 'params',
     'total_time']
    >>> decode_result(json.loads(json.dumps(payload))) == result
    True
    """
    return result.to_dict()


def decode_result(payload):
    """Rebuild a :class:`~repro.harness.runner.RunResult` from
    :func:`encode_result`'s payload — the other half of the shared
    disk/TCP/HTTP result contract (see :func:`encode_result`).

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads — callers treat that as corruption (cache), protocol
    garbage (remote), or a schema mismatch (HTTP clients).
    """
    return RunResult.from_dict(payload)


def point_key(point):
    """Stable content hash for one sweep point (hex SHA-256).

    Covers the full point spec plus the code version, so any semantic
    change lands on a fresh key.

    >>> from repro.harness.sweep import SweepPoint
    >>> key = point_key(SweepPoint("BFS", "KRON"))
    >>> len(key), key == point_key(SweepPoint("BFS", "KRON"))
    (64, True)
    """
    spec = {"cache_version": CACHE_VERSION, "code_version": __version__}
    spec.update(point.spec())
    return _hash_spec(spec)


def figure_key(name, spec):
    """Stable content hash for one figure invocation (hex SHA-256)."""
    return _hash_spec({"cache_version": CACHE_VERSION,
                       "code_version": __version__,
                       "figure": name, "spec": spec})


def _fresh_meta(sim_cost=None, now=None):
    """A blob's initial ``meta`` block — the durable metadata the index
    mirrors (and reindex recovers)."""
    return {"hits": 0,
            "sim_cost_seconds": sim_cost,
            "created": time.time() if now is None else now,
            "cache_version": CACHE_VERSION}


def _touch(path):
    """Refresh mtime on a cache hit so prune's mtime order is LRU order."""
    try:
        os.utime(path)
    except OSError:
        pass


def _remove_quietly(path):
    try:
        os.remove(path)
        return True
    except OSError:
        return False


def _stat_size(path):
    try:
        return os.stat(path).st_size
    except OSError:
        return 0


def _atomic_rewrite(path, blob, binary=False):
    """Atomically replace *path* with *blob* (``mkstemp`` +
    ``os.replace``); losing a race with prune/clear is fine — fall back
    to a plain mtime touch."""
    try:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb" if binary else "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        finally:
            _remove_quietly(tmp)
    except OSError:
        _touch(path)


def _fold_blob_hits(path, kind, hits, last_access):
    """Rewrite one blob's ``meta.hits`` up to *hits* (the index's
    accumulated count) — the lazy half of the read-only hit path. The
    blob's mtime is restored to *last_access* afterwards so LRU/prune
    order still reflects access time, not fold time. Returns 1 when the
    blob was rewritten (0: already current, unreadable, or a pre-v4
    bare figure artifact with no ``meta`` block)."""
    try:
        if kind == "result":
            with open(path) as handle:
                payload = json.load(handle)
            meta = dict(payload.get("meta") or _fresh_meta())
            if int(meta.get("hits", 0) or 0) >= hits:
                return 0
            meta["hits"] = hits
            payload["meta"] = meta
            blob, binary = json.dumps(payload), False
        else:
            with open(path, "rb") as handle:
                wrapper = pickle.load(handle)
            if not (isinstance(wrapper, dict)
                    and wrapper.get(_FIGURE_WRAPPER_MARK)):
                return 0
            meta = dict(wrapper.get("meta") or _fresh_meta())
            if int(meta.get("hits", 0) or 0) >= hits:
                return 0
            meta["hits"] = hits
            wrapper["meta"] = meta
            blob, binary = pickle.dumps(wrapper), True
    except Exception:       # missing/corrupt blob: get()'s sweep owns it
        return 0
    _atomic_rewrite(path, blob, binary=binary)
    if last_access is not None:
        try:
            os.utime(path, (last_access, last_access))
        except OSError:
            pass
    return 1


def _blob_key(path):
    """Cache key of a blob file (its basename minus the suffix)."""
    return os.path.basename(path).rsplit(".", 1)[0]


@dataclass
class CacheInfo:
    """Size accounting for one cache directory."""

    cache_dir: str
    result_entries: int = 0
    result_bytes: int = 0
    artifact_entries: int = 0
    artifact_bytes: int = 0
    tmp_files: int = 0
    tmp_bytes: int = 0

    @property
    def entries(self):
        return self.result_entries + self.artifact_entries

    @property
    def total_bytes(self):
        return self.result_bytes + self.artifact_bytes + self.tmp_bytes

    def to_dict(self):
        """JSON-able form (the ``GET /cache/info`` payload of the query
        service — see ``docs/serving.md``)."""
        return {
            "cache_dir": self.cache_dir,
            "result_entries": self.result_entries,
            "result_bytes": self.result_bytes,
            "artifact_entries": self.artifact_entries,
            "artifact_bytes": self.artifact_bytes,
            "tmp_files": self.tmp_files,
            "tmp_bytes": self.tmp_bytes,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
        }

    def format(self):
        return "\n".join([
            "cache %s" % self.cache_dir,
            "  result entries : %6d (%d bytes)"
            % (self.result_entries, self.result_bytes),
            "  figure artifacts: %5d (%d bytes)"
            % (self.artifact_entries, self.artifact_bytes),
            "  stale .tmp files: %5d (%d bytes)"
            % (self.tmp_files, self.tmp_bytes),
            "  total           : %5d entries, %d bytes"
            % (self.entries, self.total_bytes),
        ])


@dataclass
class PruneReport:
    """What one :meth:`ResultCache.prune` call removed (or, under
    ``dry_run``, *would* remove)."""

    removed_entries: int = 0
    removed_bytes: int = 0
    removed_tmp: int = 0
    policy: str = "lru"
    dry_run: bool = False

    def format(self):
        if self.dry_run:
            return ("would prune %d entries (%d bytes), would sweep %d "
                    "stale .tmp files [policy=%s, dry run]"
                    % (self.removed_entries, self.removed_bytes,
                       self.removed_tmp, self.policy))
        return ("pruned %d entries (%d bytes), swept %d stale .tmp files"
                % (self.removed_entries, self.removed_bytes,
                   self.removed_tmp))


class ResultCache:
    """On-disk result cache; safe to share across processes and runs.

    Also owns the lifecycle of the whole cache directory — including the
    ``figures/`` artifact subdirectory and the metadata index — so
    ``info``/``clear``/``prune``/``reindex`` account for and bound
    everything under ``cache_dir``.
    """

    def __init__(self, cache_dir, index=None):
        self.cache_dir = str(cache_dir)
        self.hits = 0
        self.misses = 0
        os.makedirs(self.cache_dir, exist_ok=True)
        self.index = CacheIndex(self.cache_dir) if index is None else index

    def _path(self, key):
        return os.path.join(self.cache_dir, key + ".json")

    def _figures_dir(self):
        return os.path.join(self.cache_dir, "figures")

    def get(self, point, count_miss=True):
        """Cached :class:`~repro.harness.runner.RunResult` for *point*,
        or None on miss or corruption (corrupted entries are dropped so
        the point re-simulates).

        A hit leaves the blob untouched except for an mtime refresh
        (prune's LRU order): the hit count is bumped atomically in the
        index (:meth:`~repro.harness.index.CacheIndex.bump_hit`) and
        folded back into the blob's ``meta`` block lazily by
        :meth:`sync_hits`.

        ``count_miss=False`` suits optimistic pre-checks whose miss path
        calls ``get`` again — the HTTP query service's lock-free hit path
        — so one logical miss is never double-counted in :attr:`misses`.
        """
        key = point_key(point)
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            result = decode_result(payload["result"])
        except FileNotFoundError:
            if count_miss:
                self.misses += 1
                _LOOKUPS.inc(cache="result", outcome="miss")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupted/truncated entry: drop it so the point re-simulates.
            _remove_quietly(path)
            self.index.remove([key])
            _EVICTIONS.inc(reason="corrupt")
            if count_miss:
                self.misses += 1
                _LOOKUPS.inc(cache="result", outcome="miss")
            return None
        self.hits += 1
        _LOOKUPS.inc(cache="result", outcome="hit")
        _touch(path)
        now = time.time()
        if not self.index.bump_hit(key, now):
            # The index lost this row (deleted, rebuilt, broken):
            # resurrect it from the blob's own meta block.
            meta = payload.get("meta") or {}
            self.index.record(key, "result", payload.get("spec"),
                              _stat_size(path), created=meta.get("created"),
                              last_access=now,
                              hits=int(meta.get("hits", 0) or 0) + 1,
                              sim_cost=meta.get("sim_cost_seconds"),
                              cache_version=meta.get("cache_version"),
                              op="hit")
        return result

    def put(self, point, result, sim_cost=None):
        """Store *result* for *point*; returns True when stored.

        Atomic (``mkstemp`` + ``os.replace``); results carrying raw
        output arrays are ignored (returns False) — see the module
        docstring. *sim_cost* is the measured simulation wall time in
        seconds (the sweep executor supplies it); it is persisted in the
        blob's ``meta`` block and mirrored into the index so eviction can
        weigh recompute cost.
        """
        if result.outputs is not None:
            return False
        key = point_key(point)
        meta = _fresh_meta(sim_cost=sim_cost)
        payload = {"spec": point.spec(), "result": encode_result(result),
                   "meta": meta}
        blob = json.dumps(payload)
        path = self._path(key)
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        finally:
            # Quiet, unconditional: a concurrent prune may sweep the .tmp
            # between any exists() check and the remove().
            _remove_quietly(tmp)
        _STORES.inc(cache="result")
        self.index.record(key, "result", payload["spec"], len(blob),
                          created=meta["created"],
                          last_access=meta["created"], hits=0,
                          sim_cost=sim_cost, cache_version=CACHE_VERSION)
        return True

    def sync_hits(self):
        """Fold the index's accumulated hit counts back into the blobs'
        ``meta`` blocks (results *and* figure artifacts — this cache
        owns the whole directory's lifecycle). The warm hit path bumps
        only the index, so this is the step that makes hit counts
        durable in the blobs; :meth:`prune` and :meth:`reindex` run it
        first. Best-effort and idempotent; returns the number of blobs
        rewritten."""
        synced = 0
        for row in self.index.entries():
            hits = int(row.get("hits") or 0)
            if hits <= 0:
                continue
            if row.get("kind") == "result":
                path = self._path(row["key"])
            else:
                path = os.path.join(self._figures_dir(),
                                    row["key"] + ".pkl")
            synced += _fold_blob_hits(path, row.get("kind"), hits,
                                      row.get("last_access"))
        return synced

    # -- lifecycle ------------------------------------------------------------

    def _scan(self):
        """(entries, tmp_files): (path, bytes, mtime) triples under the
        cache root and the figures subdirectory. ``index.sqlite`` (and
        its WAL/shm siblings) match neither suffix, so the index never
        counts toward entry/byte accounting and is never swept."""
        entries, tmp_files = [], []
        roots = [(self.cache_dir, ".json"), (self._figures_dir(), ".pkl")]
        for root, suffix in roots:
            try:
                names = os.listdir(root)
            except OSError:
                continue
            for name in names:
                path = os.path.join(root, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue            # raced with a concurrent prune
                if not os.path.isfile(path):
                    continue
                record = (path, stat.st_size, stat.st_mtime)
                if name.endswith(suffix):
                    entries.append(record)
                elif name.endswith(".tmp"):
                    tmp_files.append(record)
        return entries, tmp_files

    def info(self):
        """Entry/byte accounting for everything under ``cache_dir``."""
        entries, tmp_files = self._scan()
        info = CacheInfo(cache_dir=self.cache_dir)
        for path, size, _ in entries:
            if path.endswith(".pkl"):
                info.artifact_entries += 1
                info.artifact_bytes += size
            else:
                info.result_entries += 1
                info.result_bytes += size
        info.tmp_files = len(tmp_files)
        info.tmp_bytes = sum(size for _, size, _ in tmp_files)
        return info

    def __len__(self):
        return sum(1 for name in os.listdir(self.cache_dir)
                   if name.endswith(".json"))

    def clear(self):
        """Remove every entry, artifact, and stranded ``.tmp`` file
        (and empty the metadata index to match)."""
        entries, tmp_files = self._scan()
        removed = 0
        for path, _, _ in entries + tmp_files:
            removed += _remove_quietly(path)
        self.index.clear()
        _EVICTIONS.inc(removed, reason="clear")
        return removed

    def prune(self, max_entries=None, max_bytes=None,
              tmp_max_age=TMP_MAX_AGE, now=None, policy="lru",
              dry_run=False):
        """Bound the cache: sweep stale ``.tmp`` files, then evict
        entries (result + artifact) until at most *max_entries* entries
        totalling at most *max_bytes* bytes remain. Returns a
        :class:`PruneReport`.

        *policy* picks the eviction order: ``"lru"`` (default) evicts
        least-recently-used first (by mtime — hits refresh it);
        ``"cost"`` evicts cheapest-to-recompute first (by the index's
        measured ``sim_cost_seconds``; entries with unknown cost rank
        cheapest, ties break oldest-first), keeping the entries that
        were most expensive to simulate. *dry_run* computes the same
        report without removing (or rewriting) anything.

        A real prune first runs :meth:`sync_hits`, so hit counts taken
        since the last fold become durable in the surviving blobs.
        """
        if policy not in PRUNE_POLICIES:
            raise ValueError("unknown prune policy %r (expected %s)"
                             % (policy, "|".join(PRUNE_POLICIES)))
        if not dry_run:
            self.sync_hits()
        entries, tmp_files = self._scan()
        report = PruneReport(policy=policy, dry_run=dry_run)
        now = time.time() if now is None else now
        for path, size, mtime in tmp_files:
            if now - mtime >= tmp_max_age:
                if dry_run:
                    report.removed_tmp += 1
                else:
                    report.removed_tmp += _remove_quietly(path)
        if policy == "cost":
            costs = self.index.costs_by_key()
            entries.sort(key=lambda record:
                         (costs.get(_blob_key(record[0]), 0.0), record[2]))
        else:
            entries.sort(key=lambda record: record[2])  # oldest first
        total_bytes = sum(size for _, size, _ in entries)
        remaining = len(entries)
        evicted_keys = []
        for path, size, _ in entries:
            over_count = max_entries is not None and remaining > max_entries
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            if not (over_count or over_bytes):
                break
            if dry_run:
                report.removed_entries += 1
                report.removed_bytes += size
            elif _remove_quietly(path):
                report.removed_entries += 1
                report.removed_bytes += size
                evicted_keys.append(_blob_key(path))
            remaining -= 1
            total_bytes -= size
        if not dry_run:
            self.index.remove(evicted_keys)
            _EVICTIONS.inc(report.removed_entries + report.removed_tmp,
                           reason="prune")
        return report

    def reindex(self):
        """Rebuild ``index.sqlite`` from the blobs (``repro cache
        reindex``); returns the number of entries indexed.

        Any hit counts still accumulated only in a readable live index
        are folded into the blobs first (:meth:`sync_hits` — a no-op
        when the index is gone or garbage), then the blobs' ``meta``
        blocks (hit counts, sim costs, creation times) rebuild the
        index from scratch — so reindexing over a live index loses
        nothing, and deleting ``index.sqlite`` loses at most the hits
        taken since the last fold.
        """
        self.sync_hits()
        entries, _ = self._scan()
        rows = []
        for path, size, mtime in entries:
            key = _blob_key(path)
            if path.endswith(".json"):
                row = self._reindex_result(path, key, size, mtime)
            else:
                row = self._reindex_figure(path, key, size, mtime)
            if row is not None:
                rows.append(row)
        self.index.rebuild(rows)
        return len(rows)

    @staticmethod
    def _reindex_result(path, key, size, mtime):
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        meta = payload.get("meta") or {}
        return {"key": key, "kind": "result", "spec": payload.get("spec"),
                "bytes": size, "created": meta.get("created", mtime),
                "last_access": mtime, "hits": meta.get("hits", 0),
                "sim_cost_seconds": meta.get("sim_cost_seconds"),
                "cache_version": meta.get("cache_version")}

    @staticmethod
    def _reindex_figure(path, key, size, mtime):
        try:
            with open(path, "rb") as handle:
                wrapper = pickle.load(handle)
        except Exception:               # pickle can raise nearly anything
            return None
        if isinstance(wrapper, dict) and wrapper.get(_FIGURE_WRAPPER_MARK):
            meta = wrapper.get("meta") or {}
            spec = {"figure": wrapper.get("name"),
                    "spec": wrapper.get("spec")}
        else:                           # pre-v4 bare artifact
            meta, spec = {}, None
        return {"key": key, "kind": "figure", "spec": spec,
                "bytes": size, "created": meta.get("created", mtime),
                "last_access": mtime, "hits": meta.get("hits", 0),
                "sim_cost_seconds": meta.get("sim_cost_seconds"),
                "cache_version": meta.get("cache_version")}


class FigureArtifactCache:
    """Pickled figure-result objects, keyed by figure name + call spec.

    A warm :class:`~repro.harness.sweep.ResultCache` makes the *grid* free
    but a figure run still rebuilds datasets and re-runs the reference /
    verification points outside the executor; caching the finished figure
    object makes a fully-warm ``repro figure`` run near-instant. Shares
    ``cache_dir`` with :class:`ResultCache` (entries live in
    ``<cache_dir>/figures/``, metadata rows in the same ``index.sqlite``),
    so one ``repro cache`` lifecycle governs both. On disk each artifact
    is pickled inside a small wrapper dict (name, spec, ``meta``) so
    ``reindex`` can recover its metadata; :meth:`get` unwraps it.
    """

    def __init__(self, cache_dir, index=None):
        root = str(cache_dir)
        self.cache_dir = os.path.join(root, "figures")
        self.hits = 0
        self.misses = 0
        os.makedirs(self.cache_dir, exist_ok=True)
        self.index = CacheIndex(root) if index is None else index

    def _path(self, name, spec):
        return os.path.join(self.cache_dir, figure_key(name, spec) + ".pkl")

    def get(self, name, spec, count_miss=True):
        """Cached figure object, or None on miss/corruption.

        ``count_miss=False`` marks an optimistic pre-check whose miss
        path retries ``get`` (see :meth:`ResultCache.get`).
        """
        key = figure_key(name, spec)
        path = self._path(name, spec)
        try:
            with open(path, "rb") as handle:
                stored = pickle.load(handle)
        except FileNotFoundError:
            if count_miss:
                self.misses += 1
                _LOOKUPS.inc(cache="figure", outcome="miss")
            return None
        except Exception:
            # Corrupted/truncated artifact (pickle can raise nearly
            # anything): drop it and regenerate.
            _remove_quietly(path)
            self.index.remove([key])
            _EVICTIONS.inc(reason="corrupt")
            if count_miss:
                self.misses += 1
                _LOOKUPS.inc(cache="figure", outcome="miss")
            return None
        self.hits += 1
        _LOOKUPS.inc(cache="figure", outcome="hit")
        if isinstance(stored, dict) and stored.get(_FIGURE_WRAPPER_MARK):
            meta = stored.get("meta") or {}
            artifact = stored["artifact"]
        else:                           # pre-v4 bare artifact
            meta, artifact = {}, stored
        # Read-only hit path: never re-pickle the (potentially large)
        # artifact just to count a hit — mtime touch for LRU, atomic
        # hit bump in the index, lazy fold-back via sync_hits().
        _touch(path)
        now = time.time()
        if not self.index.bump_hit(key, now):
            self.index.record(key, "figure",
                              {"figure": name, "spec": spec},
                              _stat_size(path),
                              created=meta.get("created"),
                              last_access=now,
                              hits=int(meta.get("hits", 0) or 0) + 1,
                              sim_cost=meta.get("sim_cost_seconds"),
                              cache_version=meta.get("cache_version"),
                              op="hit")
        return artifact

    def put(self, name, spec, artifact):
        """Atomically store one figure object (wrapped with its metadata)."""
        key = figure_key(name, spec)
        path = self._path(name, spec)
        meta = _fresh_meta()
        wrapper = {_FIGURE_WRAPPER_MARK: 1, "name": name, "spec": spec,
                   "meta": meta, "artifact": artifact}
        blob = pickle.dumps(wrapper)
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        finally:
            # Quiet, unconditional: a concurrent prune may sweep the .tmp
            # between any exists() check and the remove().
            _remove_quietly(tmp)
        _STORES.inc(cache="figure")
        self.index.record(key, "figure", {"figure": name, "spec": spec},
                          len(blob), created=meta["created"],
                          last_access=meta["created"], hits=0,
                          cache_version=CACHE_VERSION)
        return True
