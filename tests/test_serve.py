"""The HTTP query service (repro serve / repro.harness.serve).

Covers the acceptance contract of the serving path: warm ``/point`` and
``/figure`` requests answer without a single executor submission, a cold
``/point`` populates the ResultCache so the second request is a hit,
``POST /sweep`` surfaces PointFailures as structured JSON under the
``on_error`` contract, and concurrent readers never observe torn cache
entries or leak ``.tmp`` files.
"""

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

import pytest

import repro.harness.figures as figures_mod
import repro.harness.sweep as sweep_mod
from repro.errors import ReproError
from repro.harness.serve import (ENDPOINTS, QueryService, ServeServer,
                                 point_from_query)

SCALE = "0.08"
POINT = ("/point?benchmark=BFS&dataset=KRON&label=CDP%%2BT"
         "&threshold=16&scale=%s" % SCALE)


def fetch(server, path, data=None):
    """(status, decoded JSON body) for one request against *server*."""
    url = "http://%s:%d%s" % (*server.address, path)
    payload = json.dumps(data).encode() if data is not None else None
    try:
        with urllib.request.urlopen(
                urllib.request.Request(url, data=payload),
                timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def banned(*args, **kwargs):
    raise AssertionError("executor submission on the warm hit path")


@pytest.fixture
def server(tmp_path):
    srv = ServeServer(cache_dir=str(tmp_path / "cache"))
    srv.start()
    yield srv
    srv.close()


class TestHealthAndRouting:
    def test_healthz(self, server):
        status, payload = fetch(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["endpoints"] == list(ENDPOINTS)
        assert payload["backend"] == "serial"
        assert isinstance(payload["cache_version"], int)

    def test_unknown_route_404_lists_endpoints(self, server):
        status, payload = fetch(server, "/nope")
        assert status == 404
        assert payload["endpoints"] == list(ENDPOINTS)

    def test_wrong_method_405(self, server):
        assert fetch(server, "/sweep")[0] == 405            # GET
        assert fetch(server, "/healthz", data={})[0] == 405  # POST

    def test_unknown_figure_404(self, server):
        status, payload = fetch(server, "/figure/nope")
        assert status == 404
        assert "fig9" in payload["figures"]

    def test_sweep_bad_json_body_400(self, server):
        url = "http://%s:%d/sweep" % server.address
        req = urllib.request.Request(url, data=b"not json")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=60)
        assert info.value.code == 400

    def test_server_survives_errors(self, server):
        fetch(server, "/point?benchmark=NOPE&dataset=KRON")
        assert fetch(server, "/healthz")[0] == 200


class TestPoint:
    def test_cold_then_warm_hit_without_executor(self, server, monkeypatch):
        status, cold = fetch(server, POINT)
        assert status == 200
        assert cold["cache"] == "miss"
        assert cold["result"]["total_time"] > 0
        assert cold["point"]["label"] == "CDP+T"
        # The cold miss populated the cache: the second identical request
        # must be a hit that never reaches the executor or the simulator.
        monkeypatch.setattr(server.service.executor.backend, "map", banned)
        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        status, warm = fetch(server, POINT)
        assert status == 200
        assert warm["cache"] == "hit"
        assert warm["result"] == cold["result"]
        assert warm["key"] == cold["key"]

    def test_unencoded_plus_label_normalized(self, server):
        assert fetch(server, POINT)[1]["cache"] == "miss"
        # "label=CDP+T" decodes to "CDP T"; the service canonicalizes it.
        spaced = POINT.replace("CDP%2BT", "CDP+T")
        status, payload = fetch(server, spaced)
        assert status == 200
        assert payload["point"]["label"] == "CDP+T"
        assert payload["cache"] == "hit"

    def test_mask_params_canonicalizes_url_specs(self, server, monkeypatch):
        base = "/point?benchmark=BFS&dataset=KRON&label=CDP&scale=" + SCALE
        status, cold = fetch(server, base)
        assert cold["cache"] == "miss"
        # CDP uses neither threshold nor coarsening: a URL carrying stray
        # values must land on the same (masked) cache key.
        monkeypatch.setattr(server.service.executor.backend, "map", banned)
        status, warm = fetch(server, base + "&threshold=999&coarsen=4")
        assert status == 200
        assert warm["cache"] == "hit"
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]

    def test_validation_errors_are_400(self, server):
        cases = (
            "/point?dataset=KRON",                            # no benchmark
            "/point?benchmark=NOPE&dataset=KRON",             # bad benchmark
            "/point?benchmark=BFS&dataset=NOPE",              # bad dataset
            "/point?benchmark=BFS&dataset=KRON&label=XX",     # bad label
            "/point?benchmark=BFS&dataset=KRON&scale=x",      # bad scale
            "/point?benchmark=BFS&dataset=KRON&threshold=x",  # bad int
            "/point?benchmark=BFS&dataset=KRON&aggregate=x",  # bad gran
            "/point?benchmark=BFS&dataset=KRON&bogus=1",      # unknown key
        )
        for path in cases:
            status, payload = fetch(server, path)
            assert status == 400, path
            assert payload["error"] == "ServeError", path

    def test_simulator_failure_is_structured_500(self, server, monkeypatch):
        def boom(point):
            raise ReproError("synthetic failure")

        monkeypatch.setattr(sweep_mod, "_simulate_point", boom)
        status, payload = fetch(server, POINT)
        assert status == 500
        assert payload["status"] == "error"
        assert payload["error"] == "ReproError"
        assert payload["message"] == "synthetic failure"
        assert payload["point"]["benchmark"] == "BFS"


class TestSweep:
    BODY = {"pairs": ["BFS:KRON"], "variants": ["CDP", "CDP+T"],
            "params": {"threshold": 16}, "scale": float(SCALE)}

    def test_grid_cold_then_warm(self, server):
        status, cold = fetch(server, "/sweep", data=self.BODY)
        assert status == 200
        assert [entry["status"] for entry in cold["results"]] == ["ok", "ok"]
        assert cold["stats"] == {"points": 2, "hits": 0, "simulated": 2,
                                 "failed": 0}
        status, warm = fetch(server, "/sweep", data=self.BODY)
        assert warm["stats"] == {"points": 2, "hits": 2, "simulated": 0,
                                 "failed": 0}
        assert [e["result"] for e in warm["results"]] == \
            [e["result"] for e in cold["results"]]

    def test_pairs_accept_lists_and_mask_shares_keys(self, server):
        body = dict(self.BODY, pairs=[["BFS", "KRON"]])
        status, payload = fetch(server, "/sweep", data=body)
        assert status == 200
        # /point for the same effective config must now be a cache hit.
        status, point = fetch(server, POINT)
        assert point["cache"] == "hit"

    def test_point_failures_surface_structured(self, server, monkeypatch):
        real = sweep_mod._simulate_point

        def fail_cdp(point):
            if point.label == "CDP":
                raise ReproError("CDP died")
            return real(point)

        monkeypatch.setattr(sweep_mod, "_simulate_point", fail_cdp)
        status, payload = fetch(server, "/sweep", data=self.BODY)
        assert status == 200
        first, second = payload["results"]
        assert first["status"] == "error"
        assert first["error"] == "ReproError"
        assert first["message"] == "CDP died"
        assert first["point"]["label"] == "CDP"
        assert "CDP" in first["describe"]
        assert second["status"] == "ok"
        assert payload["stats"]["failed"] == 1

    def test_on_error_raise_maps_to_500(self, server, monkeypatch):
        def fail_all(point):
            raise ReproError("nothing works")

        monkeypatch.setattr(sweep_mod, "_simulate_point", fail_all)
        status, payload = fetch(server, "/sweep",
                                data=dict(self.BODY, on_error="raise"))
        assert status == 500
        assert payload["status"] == "error"
        assert payload["message"] == "nothing works"

    def test_body_validation_400(self, server):
        cases = (
            {},                                              # no pairs
            dict(self.BODY, pairs=["BFSKRON"]),              # bad pair
            dict(self.BODY, pairs=[]),                       # empty pairs
            dict(self.BODY, variants=[]),                    # empty variants
            dict(self.BODY, variants=["XX"]),                # bad label
            dict(self.BODY, params={"bogus": 1}),            # bad param
            dict(self.BODY, on_error="explode"),             # bad on_error
            dict(self.BODY, bogus=1),                        # unknown key
        )
        for body in cases:
            status, payload = fetch(server, "/sweep", data=body)
            assert status == 400, body
            assert payload["error"] == "ServeError", body


class TestFigure:
    PATH = "/figure/fig11?benchmark=BFS&dataset=KRON&scale=" + SCALE

    def test_read_through_artifact_cache(self, server, monkeypatch):
        status, cold = fetch(server, self.PATH)
        assert status == 200
        assert cold["cache"] == "miss"
        assert "Figure 11" in cold["text"]
        # Warm fetch: neither the figure builder's direct runs nor the
        # executor may fire — the artifact cache answers alone.
        monkeypatch.setattr(figures_mod, "run_variant", banned)
        monkeypatch.setattr(server.service.executor.backend, "map", banned)
        monkeypatch.setattr(sweep_mod, "_simulate_point", banned)
        status, warm = fetch(server, self.PATH)
        assert status == 200
        assert warm["cache"] == "hit"
        assert warm["text"] == cold["text"]

    def test_unknown_param_400(self, server):
        status, payload = fetch(server, "/figure/table1?strategy=guided")
        assert status == 400
        status, payload = fetch(server, self.PATH + "&strategy=guided")
        assert status == 400

    def test_bad_strategy_400(self, server):
        assert fetch(server, "/figure/fig12?strategy=nope")[0] == 400

    def test_warm_requests_bypass_the_miss_lock(self, server):
        """Warm /point and /figure hits must stay interactive while a
        slow cold request holds the miss lock."""
        fetch(server, POINT)
        fetch(server, self.PATH)
        with server.service._miss_lock:     # a cold request in flight
            status, point = fetch(server, POINT)
            assert status == 200 and point["cache"] == "hit"
            status, figure = fetch(server, self.PATH)
            assert status == 200 and figure["cache"] == "hit"


class TestCacheInfo:
    def test_schema_and_counters(self, server):
        fetch(server, POINT)            # miss
        fetch(server, POINT)            # hit
        status, payload = fetch(server, "/cache/info")
        assert status == 200
        assert payload["info"]["result_entries"] == 1
        assert payload["info"]["result_bytes"] > 0
        # Exactly one logical miss and one hit: the optimistic pre-check
        # must not double-count the executor's authoritative miss.
        assert payload["results"] == {"hits": 1, "misses": 1}
        assert payload["figures"] == {"hits": 0, "misses": 0}
        assert payload["executor"]["simulated"] == 1
        assert payload["backend"] == "serial"

    def test_cacheless_service(self, tmp_path):
        srv = ServeServer(cache_dir=None)
        srv.start()
        try:
            status, info = fetch(srv, "/cache/info")
            assert status == 200
            assert info["cache_dir"] is None and info["info"] is None
            status, point = fetch(srv, POINT)
            assert status == 200
            assert point["cache"] == "miss"
            # No cache: the "second" request is a miss too.
            assert fetch(srv, POINT)[1]["cache"] == "miss"
        finally:
            srv.close()


class TestConcurrentReaders:
    """Satellite: readers hammering a warm cache see no torn reads, and
    the PR 2 stale-.tmp sweeping can run under that load without
    disturbing them or leaving droppings behind."""

    def test_concurrent_point_and_info_reads(self, server):
        warm = {"pairs": ["BFS:KRON", "SSSP:KRON"],
                "variants": ["CDP", "CDP+T"],
                "params": {"threshold": 16}, "scale": float(SCALE)}
        status, seeded = fetch(server, "/sweep", data=warm)
        assert status == 200 and seeded["stats"]["failed"] == 0
        paths, expected = [], {}
        for bench in ("BFS", "SSSP"):
            for label in ("CDP", "CDP%2BT"):
                path = ("/point?benchmark=%s&dataset=KRON&label=%s"
                        "&threshold=16&scale=%s" % (bench, label, SCALE))
                status, payload = fetch(server, path)
                assert status == 200 and payload["cache"] == "hit"
                paths.append(path)
                expected[path] = payload["result"]

        cache = server.service.cache
        cache_dir = Path(cache.cache_dir)
        (cache_dir / "stranded.tmp").write_text("x")     # PR 2 sweep bait
        errors = []

        def reader(path):
            try:
                for _ in range(5):
                    status, payload = fetch(server, path)
                    if status != 200:
                        errors.append((path, status, payload))
                    elif payload["cache"] != "hit" \
                            or payload["result"] != expected[path]:
                        errors.append((path, "torn", payload))
                    status, info = fetch(server, "/cache/info")
                    if status != 200 or info["info"]["result_entries"] < 4:
                        errors.append(("/cache/info", status, info))
            except Exception as exc:             # noqa: BLE001
                errors.append((path, "exception", repr(exc)))

        def sweeper():
            try:
                for _ in range(5):
                    cache.prune(tmp_max_age=0)
            except Exception as exc:             # noqa: BLE001
                errors.append(("prune", "exception", repr(exc)))

        threads = [threading.Thread(target=reader, args=(path,))
                   for path in paths * 2] + \
                  [threading.Thread(target=sweeper)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[:3]
        assert not list(cache_dir.glob("*.tmp")), "stale .tmp survived"
        assert not list((cache_dir / "figures").glob("*.tmp"))
        # The four warm entries themselves must have survived the sweeps.
        assert len(list(cache_dir.glob("*.json"))) == 4


class TestPointFromQuery:
    def test_canonical_point_roundtrip(self):
        point = point_from_query({"benchmark": "BFS", "dataset": "KRON",
                                  "label": "CDP+T", "threshold": "16",
                                  "scale": SCALE})
        assert point.describe() == "BFS/KRON CDP+T [T=16] @0.08"

    def test_masking_applied(self):
        bare = point_from_query({"benchmark": "BFS", "dataset": "KRON"})
        noisy = point_from_query({"benchmark": "BFS", "dataset": "KRON",
                                  "threshold": "64", "coarsen": "8",
                                  "group_blocks": "4"})
        assert bare == noisy                 # CDP masks all of them

    def test_service_close_is_idempotent(self, tmp_path):
        service = QueryService(cache_dir=str(tmp_path / "c"))
        service.close()
        service.close()
