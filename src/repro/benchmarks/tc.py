"""TC — triangle counting (collaborative CPU+GPU algorithm of Table I,
GPU phase).

For every forward edge (u, v) with v > u, a child thread intersects the
sorted adjacency lists of u and v counting common neighbors beyond v.
The paper notes TC's original CDP version already applies *manual*
thresholding; here the plain CDP version is provided and thresholding is
left to the compiler. The paper also evaluates TC on subsampled graphs due
to memory limits — we likewise use smaller graphs for TC.
"""

import numpy as np

from ..datasets import kron_graph, road_graph, web_graph
from ..runtime.host import blocks
from .common import Benchmark, scaled

_CHILD = """
__global__ void tc_child(int *row, int *col, int *count, int u, int start,
                         int degree) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < degree) {
        int v = col[start + tid];
        if (v > u) {
            int i = row[u];
            int j = row[v];
            int endu = row[u + 1];
            int endv = row[v + 1];
            int found = 0;
            while (i < endu && j < endv) {
                int a = col[i];
                int b = col[j];
                if (a == b) {
                    if (a > v) {
                        found = found + 1;
                    }
                    i = i + 1;
                    j = j + 1;
                } else if (a < b) {
                    i = i + 1;
                } else {
                    j = j + 1;
                }
            }
            if (found > 0) {
                atomicAdd(count, found);
            }
        }
    }
}
"""

_CDP_PARENT = """
__global__ void tc_kernel(int *row, int *col, int *count, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int start = row[u];
        int degree = row[u + 1] - start;
        if (degree > 0) {
            tc_child<<<(degree + %(cb)d - 1) / %(cb)d, %(cb)d>>>(
                row, col, count, u, start, degree);
        }
    }
}
"""

_NOCDP = """
__global__ void tc_kernel(int *row, int *col, int *count, int n) {
    int u = blockIdx.x * blockDim.x + threadIdx.x;
    if (u < n) {
        int start = row[u];
        int end_deg = row[u + 1];
        for (int e = start; e < end_deg; ++e) {
            int v = col[e];
            if (v > u) {
                int i = row[u];
                int j = row[v];
                int endu = row[u + 1];
                int endv = row[v + 1];
                int found = 0;
                while (i < endu && j < endv) {
                    int a = col[i];
                    int b = col[j];
                    if (a == b) {
                        if (a > v) {
                            found = found + 1;
                        }
                        i = i + 1;
                        j = j + 1;
                    } else if (a < b) {
                        i = i + 1;
                    } else {
                        j = j + 1;
                    }
                }
                if (found > 0) {
                    atomicAdd(count, found);
                }
            }
        }
    }
}
"""


class TCBenchmark(Benchmark):
    name = "TC"
    dataset_names = ("KRON", "CNR", "ROAD-NY")
    child_block = 32

    def cdp_source(self):
        return _CHILD + _CDP_PARENT % {"cb": self.child_block}

    def nocdp_source(self):
        return _NOCDP

    def build_dataset(self, dataset_name, scale=1.0):
        if dataset_name == "KRON":
            return kron_graph(scale=max(6, 9 + int(np.log2(max(scale, 1e-6)))),
                              edge_factor=6)
        if dataset_name == "CNR":
            return web_graph(n=scaled(1200, scale, 150), avg_degree=8)
        if dataset_name == "ROAD-NY":
            side = scaled(35, scale ** 0.5, 10)
            return road_graph(width=side, height=side)
        raise KeyError(dataset_name)

    def drive(self, device, graph):
        n = graph.num_vertices
        row = device.upload(graph.row)
        col = device.upload(graph.col)
        count = device.alloc("int", 1)
        device.launch("tc_kernel", blocks(n, 256), 256, row, col, count, n)
        device.sync()
        return {"triangles": count.to_numpy()}
